"""TraceWorkload replay: determinism, conservation, evaluation."""

import json

import pytest

from repro.api.adapters import ClusterSimulator, ServeSimulator
from repro.api.configs import ClusterConfig, ServeConfig
from repro.obs.export import TelemetrySession
from repro.serve.cluster import ClusterSimulation
from repro.serve.simulation import ServingSimulation
from repro.twin import (TraceRecorder, TraceWorkload, evaluate_candidates,
                        parse_candidate, rank_candidates, render_table)


def _serve_workload(steps=160, seed=3, **config_kwargs):
    recorder = TraceRecorder(source="test")
    with TelemetrySession() as session:
        recorder.attach(session.bus)
        sim = ServingSimulation(
            ServeConfig(steps=steps, seed=seed, **config_kwargs))
        sim.run()
        recorder.detach()
    return TraceWorkload.from_recorder(recorder), sim


class TestServeReplay:
    def test_same_trace_same_seed_is_byte_identical(self):
        workload, _ = _serve_workload()
        config = ServeConfig(steps=160, seed=11)
        first = ServingSimulation(config, workload=workload).run()
        second = ServingSimulation(config, workload=workload).run()
        assert json.dumps(first) == json.dumps(second)

    def test_replay_offers_exactly_the_recorded_arrivals(self):
        workload, live = _serve_workload()
        replay = ServingSimulation(ServeConfig(steps=160, seed=0),
                                   workload=workload).run()
        assert sum(r["offered"] for r in replay) == workload.total_offered
        assert [r["offered"] for r in replay] \
            == [r["offered"] for r in live.records]

    def test_replay_tracks_live_goodput_for_the_recorded_arm(self):
        """Replaying the recording arm's own trace stays close to its
        live score: same arrivals, same control plane, only the service
        rng stream differs."""
        workload, live = _serve_workload(steps=300)
        warmup = min(80, 300 // 5)
        results = evaluate_candidates(workload, ["self_aware"], seed=3,
                                      warmup=warmup)
        live_goodput = live.metrics()["goodput"]
        assert results[0].goodput == pytest.approx(live_goodput, rel=0.25)

    def test_different_seeds_differ_but_arrivals_do_not(self):
        workload, _ = _serve_workload()
        a = ServingSimulation(ServeConfig(steps=160, seed=1),
                              workload=workload).run()
        b = ServingSimulation(ServeConfig(steps=160, seed=2),
                              workload=workload).run()
        assert [r["offered"] for r in a] == [r["offered"] for r in b]
        assert json.dumps(a) != json.dumps(b)

    def test_adapter_passes_the_workload_through(self):
        workload, _ = _serve_workload(steps=60)
        sim = ServeSimulator(ServeConfig(steps=60, seed=0),
                             workload=workload)
        records = sim.run()
        assert sum(r["offered"] for r in records) == workload.total_offered


class TestClusterReplay:
    def _workload(self, steps=100, seed=1):
        recorder = TraceRecorder(source="test")
        with TelemetrySession() as session:
            recorder.attach(session.bus)
            ClusterSimulation(ClusterConfig(steps=steps, seed=seed)).run()
            recorder.detach()
        return TraceWorkload.from_recorder(recorder)

    def test_replay_is_byte_identical(self):
        workload = self._workload()
        config = ClusterConfig(steps=100, seed=9)
        first = ClusterSimulation(config, workload=workload).run()
        second = ClusterSimulation(config, workload=workload).run()
        assert json.dumps(first) == json.dumps(second)

    def test_replay_conserves_offered(self):
        workload = self._workload()
        replay = ClusterSimulation(ClusterConfig(steps=100, seed=4),
                                   workload=workload).run()
        assert sum(r["offered"] for r in replay) == workload.total_offered

    def test_adapter_passes_the_workload_through(self):
        workload = self._workload(steps=40)
        sim = ClusterSimulator(ClusterConfig(steps=40, seed=0),
                               workload=workload)
        records = sim.run()
        assert sum(r["offered"] for r in records) == workload.total_offered


class TestEvaluate:
    def test_results_cover_candidates_with_regret(self):
        workload, _ = _serve_workload()
        results = evaluate_candidates(
            workload, ["self_aware", "static:2"], seed=0)
        assert [r.candidate for r in results] == ["self_aware", "static:2"]
        best = min(results, key=lambda r: r.regret)
        assert best.regret == 0.0
        assert all(r.regret >= 0.0 for r in results)

    def test_default_candidates_by_substrate(self):
        workload, _ = _serve_workload(steps=60)
        results = evaluate_candidates(workload, seed=0)
        assert [r.candidate for r in results] \
            == ["self_aware", "static:2", "static:4"]

    def test_rank_candidates_orders_by_goodput(self):
        workload, _ = _serve_workload()
        results = evaluate_candidates(
            workload, ["self_aware", "static:2"], seed=0)
        ranking = rank_candidates(results)
        by_goodput = sorted(results, key=lambda r: -r.goodput)
        assert ranking[0] == by_goodput[0].candidate

    def test_render_table_mentions_every_candidate(self):
        workload, _ = _serve_workload(steps=60)
        table = render_table(evaluate_candidates(
            workload, ["self_aware", "static:2"], seed=0))
        assert "self_aware" in table and "static:2" in table

    def test_short_traces_still_score_a_window(self):
        workload, _ = _serve_workload(steps=20)
        results = evaluate_candidates(workload, ["static:2"], seed=0)
        assert results[0].offered > 0.0

    def test_parse_candidate_rejects_nonsense(self):
        with pytest.raises(ValueError, match="unknown serve candidate"):
            parse_candidate("turbo", "serve")
        with pytest.raises(ValueError, match="integer N"):
            parse_candidate("static:lots", "serve")
        with pytest.raises(ValueError, match=">= 1"):
            parse_candidate("static:0", "serve")
        with pytest.raises(ValueError, match="unknown cluster candidate"):
            parse_candidate("self_aware:2", "cluster")

    def test_parse_candidate_static_n(self):
        assert parse_candidate("static:6", "serve") \
            == {"governor": "static", "static_workers": 6}
        assert parse_candidate("collective", "cluster") \
            == {"governor": "collective"}

    def test_empty_trace_is_rejected(self):
        workload = TraceWorkload({"schema": "repro.twin/v1",
                                  "substrate": "serve", "ticks": 0}, [])
        with pytest.raises(ValueError, match="empty"):
            evaluate_candidates(workload, ["static:2"])
