"""TraceRecorder + trace schema: ingestion, round-trip, validation."""

import json

import pytest

from repro.api.configs import ClusterConfig, ServeConfig
from repro.obs.export import TelemetrySession
from repro.serve.cluster import ClusterSimulation
from repro.serve.simulation import ServingSimulation
from repro.twin import (SCHEMA, TraceRecorder, TraceSchemaError,
                        TraceWorkload)


class _Event:
    """A minimal stand-in for repro.obs.events.Event."""

    def __init__(self, name, **fields):
        self.name = name
        self.fields = fields


def _record_serve(steps=120, seed=2, **config_kwargs):
    recorder = TraceRecorder(source="test")
    with TelemetrySession() as session:
        recorder.attach(session.bus)
        sim = ServingSimulation(
            ServeConfig(steps=steps, seed=seed, **config_kwargs))
        sim.run()
        recorder.detach()
    return recorder, sim


class TestRecorderIngestion:
    def test_records_simulated_serve_run(self):
        recorder, sim = _record_serve()
        assert recorder.substrate == "serve"
        assert recorder.ticks == 120
        assert recorder.total_offered == sum(
            int(r["offered"]) for r in sim.records)

    def test_records_cluster_run_with_sessions(self):
        recorder = TraceRecorder(source="test")
        with TelemetrySession() as session:
            recorder.attach(session.bus)
            ClusterSimulation(ClusterConfig(steps=80, seed=1)).run()
            recorder.detach()
        assert recorder.substrate == "cluster"
        assert recorder.ticks == 80
        assert len(recorder.sessions()) > 0

    def test_live_server_events_bucket_by_wall_clock(self):
        recorder = TraceRecorder(tick_seconds=0.5)
        recorder(_Event("serve.request", op="step", t=10.0, ok=True,
                        session="s1"))
        recorder(_Event("serve.request", op="step", t=10.4, ok=True,
                        session="s1"))
        recorder(_Event("serve.request", op="run", t=11.1, ok=False,
                        session="s2"))
        assert recorder.ticks == 3  # buckets 0 and 2 of width 0.5s
        assert recorder.total_offered == 3
        assert recorder.total_ok == 2
        assert recorder.sessions() == ["s1", "s2"]

    def test_control_plane_ops_are_not_load(self):
        recorder = TraceRecorder()
        recorder(_Event("serve.request", op="stats", t=1.0, ok=True))
        recorder(_Event("serve.request", op="create", t=1.1, ok=True))
        assert recorder.total_offered == 0

    def test_detach_stops_ingestion(self):
        recorder = TraceRecorder()
        with TelemetrySession() as session:
            recorder.attach(session.bus)
            recorder.detach()
            ServingSimulation(ServeConfig(steps=10, seed=0)).run()
        assert recorder.total_offered == 0

    def test_tick_seconds_must_be_positive(self):
        with pytest.raises(ValueError, match="tick_seconds"):
            TraceRecorder(tick_seconds=0.0)


class TestRoundTrip:
    def test_write_then_load_preserves_everything(self, tmp_path):
        recorder, _ = _record_serve(steps=60)
        path = str(tmp_path / "trace.jsonl")
        written = recorder.write(path)
        assert written == 60
        workload = TraceWorkload.load(path)
        assert workload.ticks == recorder.ticks
        assert workload.total_offered == recorder.total_offered
        assert workload.header["schema"] == SCHEMA

    def test_from_recorder_equals_file_round_trip(self, tmp_path):
        recorder, _ = _record_serve(steps=40)
        path = str(tmp_path / "trace.jsonl")
        recorder.write(path)
        direct = TraceWorkload.from_recorder(recorder)
        loaded = TraceWorkload.load(path)
        for t in range(45):
            assert direct.offered(t) == loaded.offered(t)

    def test_header_is_the_first_line_and_sorted(self, tmp_path):
        recorder, _ = _record_serve(steps=10)
        path = str(tmp_path / "trace.jsonl")
        recorder.write(path)
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == SCHEMA
        assert header["ticks"] == 10


class TestSchemaValidation:
    def _load(self, tmp_path, content):
        path = tmp_path / "bad.jsonl"
        path.write_text(content)
        return TraceWorkload.load(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceSchemaError, match="cannot read"):
            TraceWorkload.load(str(tmp_path / "nope.jsonl"))

    def test_empty_file(self, tmp_path):
        with pytest.raises(TraceSchemaError, match="is empty"):
            self._load(tmp_path, "")

    def test_non_json_header(self, tmp_path):
        with pytest.raises(TraceSchemaError, match="line 1 is not JSON"):
            self._load(tmp_path, "not json at all\n")

    def test_foreign_file_names_the_telemetry_alternative(self, tmp_path):
        with pytest.raises(TraceSchemaError, match="repro.explain"):
            self._load(tmp_path, json.dumps({"event": "x"}) + "\n")

    def test_wrong_schema_version(self, tmp_path):
        content = json.dumps({"schema": "repro.twin/v9"}) + "\n"
        with pytest.raises(TraceSchemaError,
                           match="schema 'repro.twin/v9'"):
            self._load(tmp_path, content)

    def test_corrupt_record_names_the_line(self, tmp_path):
        content = (json.dumps({"schema": SCHEMA}) + "\n"
                   + json.dumps({"t": 0, "offered": 1}) + "\n{oops\n")
        with pytest.raises(TraceSchemaError, match="line 3: corrupt"):
            self._load(tmp_path, content)

    def test_record_missing_fields(self, tmp_path):
        content = (json.dumps({"schema": SCHEMA}) + "\n"
                   + json.dumps({"x": 1}) + "\n")
        with pytest.raises(TraceSchemaError, match="needs 't' and"):
            self._load(tmp_path, content)


class TestWorkloadReplayApi:
    def _workload(self):
        header = {"schema": SCHEMA, "substrate": "cluster",
                  "sessions": ["a", "b", "c"], "ticks": 3}
        records = [{"t": 0, "offered": 6,
                    "by_session": {"a": 1, "b": 2, "c": 3}},
                   {"t": 1, "offered": 4, "by_session": {"b": 3}},
                   {"t": 2, "offered": 0}]
        return TraceWorkload(header, records)

    def test_offered_is_zero_out_of_range(self):
        workload = self._workload()
        assert workload.offered(-1) == 0
        assert workload.offered(2) == 0
        assert workload.offered(99) == 0
        assert workload.offered(1) == 4

    def test_session_counts_map_by_sorted_rank(self):
        counts = self._workload().session_counts(0, 3)
        assert counts.tolist() == [1, 2, 3]

    def test_extra_sessions_wrap_modulo_n(self):
        counts = self._workload().session_counts(0, 2)
        assert counts.tolist() == [1 + 3, 2]  # "c" wraps onto slot 0

    def test_unattributed_arrivals_land_on_slot_zero(self):
        counts = self._workload().session_counts(1, 3)
        assert counts.tolist() == [1, 3, 0]  # 4 offered, only 3 attributed

    def test_counts_conserve_offered(self):
        workload = self._workload()
        for t in range(3):
            assert workload.session_counts(t, 3).sum() \
                == workload.offered(t)
