"""Gossiped self-models: staleness gating and the collective budget split."""

import pytest

from repro.serve.gossip import (GossipBoard, NodeSelfView, budget_shares,
                                cluster_load)


def view(node, time=0.0, arrival=10.0, service=4.0, pool=2, **kw):
    return NodeSelfView(node=node, time=time, arrival_rate=arrival,
                        service_rate=service, pool=pool,
                        queue_depth=kw.get("queue_depth", 0.0),
                        utilisation=kw.get("utilisation", 0.5),
                        confidence=kw.get("confidence", 0.9),
                        degraded=kw.get("degraded", False),
                        sessions=kw.get("sessions", 0))


class TestBoard:
    def test_latest_view_wins_and_staleness_gates(self):
        board = GossipBoard(ttl=5.0)
        board.publish(view("a", time=0.0, arrival=1.0))
        board.publish(view("a", time=3.0, arrival=7.0))
        board.publish(view("b", time=0.0))
        assert board.view_of("a").arrival_rate == 7.0
        fresh = board.fresh(now=6.0)
        assert list(fresh) == ["a"]  # b aged out, order by node name
        assert board.fresh(now=100.0) == {}
        assert len(board) == 2  # staleness filters reads, not storage

    def test_capacity_is_pool_times_learned_rate(self):
        assert view("a", service=4.0, pool=3).capacity == pytest.approx(12.0)

    def test_cluster_load_ignores_negative_estimates(self):
        views = {"a": view("a", arrival=10.0), "b": view("b", arrival=-3.0)}
        assert cluster_load(views) == pytest.approx(10.0)


class TestBudgetShares:
    def test_split_follows_load_and_sums_to_budget(self):
        views = {"a": view("a", arrival=30.0), "b": view("b", arrival=10.0),
                 "c": view("c", arrival=0.0)}
        shares = budget_shares(views, budget=12, min_workers=1)
        assert sum(shares.values()) == 12
        assert shares["a"] > shares["b"] > shares["c"] >= 1

    def test_every_node_computes_the_same_split(self):
        # The decentralisation property: the split is a pure function of
        # the views, so no coordinator is needed.
        views = {"a": view("a", arrival=13.0), "b": view("b", arrival=29.0)}
        assert budget_shares(views, budget=7) == \
            budget_shares(dict(reversed(list(views.items()))), budget=7)

    def test_min_workers_floor_respected(self):
        views = {n: view(n, arrival=100.0 if n == "a" else 0.0)
                 for n in "abcd"}
        shares = budget_shares(views, budget=10, min_workers=2)
        assert all(s >= 2 for s in shares.values())
        # Floor takes 8 of 10; the whole flexible remainder goes to a.
        assert shares["a"] == 4

    def test_budget_below_floor_splits_evenly(self):
        views = {n: view(n) for n in "abcd"}
        shares = budget_shares(views, budget=3, min_workers=1)
        assert sum(shares.values()) == 3
        assert max(shares.values()) - min(shares.values()) <= 1

    def test_zero_load_splits_evenly(self):
        views = {n: view(n, arrival=0.0) for n in "ab"}
        assert budget_shares(views, budget=8) == {"a": 4, "b": 4}

    def test_single_view_takes_the_whole_budget(self):
        assert budget_shares({"a": view("a")}, budget=9) == {"a": 9}

    def test_empty_views_and_bad_budget(self):
        assert budget_shares({}, budget=4) == {}
        with pytest.raises(ValueError, match="budget"):
            budget_shares({"a": view("a")}, budget=0)
