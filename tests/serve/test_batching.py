"""Batching: byte-identical to sequential stepping at any worker count."""

import json
import threading

import pytest

from repro.api import SensornetConfig, SwarmConfig
from repro.serve import BatchDispatcher, StepRequest, run_step_batch
from repro.serve import batching


def _requests(n=4, base=0, steps=3):
    return [StepRequest(session_id=f"sess{i}", substrate="sensornet",
                        config=SensornetConfig(steps=200, n_channels=4,
                                               seed=i),
                        base_steps=base, n_steps=steps)
            for i in range(n)]


def _fresh_cache():
    """Start each comparison from a cold worker cache so the from-scratch
    and incremental paths are exercised deliberately, not by accident."""
    batching._WORKER_CACHE.clear()


def _canon(results):
    return json.dumps(results, sort_keys=True)


class TestByteIdentity:
    def test_batched_equals_one_at_a_time(self):
        _fresh_cache()
        batched = run_step_batch(_requests(4))
        _fresh_cache()
        sequential = [run_step_batch([r])[0] for r in _requests(4)]
        assert _canon(batched) == _canon(sequential)

    def test_pool_equals_in_process_fresh_and_incremental(self):
        """The acceptance claim: worker count is invisible in the output,
        both from step zero and when resuming mid-run."""
        reference = BatchDispatcher(workers=0, max_batch=2)
        _fresh_cache()
        ref_fresh = reference.submit(_requests(4, base=0, steps=5))
        ref_more = reference.submit(_requests(4, base=5, steps=5))

        with BatchDispatcher(workers=2, max_batch=2) as pooled:
            got_fresh = pooled.submit(_requests(4, base=0, steps=5))
            got_more = pooled.submit(_requests(4, base=5, steps=5))

        assert _canon(got_fresh) == _canon(ref_fresh)
        assert _canon(got_more) == _canon(ref_more)

    def test_cache_hit_equals_replay_from_scratch(self):
        _fresh_cache()
        warm = run_step_batch(_requests(1, base=0, steps=6))
        warm_more = run_step_batch(_requests(1, base=6, steps=4))  # cached
        _fresh_cache()
        cold = run_step_batch(_requests(1, base=6, steps=4))       # replayed
        assert _canon(warm_more) == _canon(cold)
        assert warm[0]["steps_taken"] == 6
        assert cold[0]["steps_taken"] == 10

    def test_results_are_json_safe(self):
        _fresh_cache()
        for result in run_step_batch(_requests(2)):
            assert set(result) == {"session", "steps_taken", "metrics",
                                   "snapshot"}
            json.dumps(result)


class TestPlanning:
    def test_batches_group_by_substrate_and_cap_at_max_batch(self):
        mixed = _requests(5) + [
            StepRequest("sw0", "swarm", SwarmConfig(steps=30, n_robots=4),
                        0, 1)]
        dispatcher = BatchDispatcher(workers=0, max_batch=2)
        plan = dispatcher._plan(mixed)
        assert [len(batch) for batch in plan] == [2, 2, 1, 1]
        for batch in plan:
            assert len({r.substrate for _, r in batch}) == 1

    def test_results_align_with_input_order_across_substrates(self):
        _fresh_cache()
        mixed = [
            StepRequest("sw0", "swarm", SwarmConfig(steps=30, n_robots=4,
                                                    seed=1), 0, 1),
            _requests(1)[0],
        ]
        dispatcher = BatchDispatcher(workers=0, max_batch=8)
        results = dispatcher.submit(mixed)
        assert [r["session"] for r in results] == ["sw0", "sess0"]
        assert dispatcher.batches_run == 2  # one per substrate
        assert dispatcher.requests_run == 2

    def test_empty_submit_is_a_noop(self):
        dispatcher = BatchDispatcher(workers=0)
        assert dispatcher.submit([]) == []
        assert dispatcher.batches_run == 0

    def test_resize_changes_worker_count(self):
        dispatcher = BatchDispatcher(workers=0)
        dispatcher.resize(3)
        assert dispatcher.workers == 3
        dispatcher.resize(0)
        assert dispatcher.workers == 0

    def test_resize_during_submit_never_breaks_a_batch(self):
        """The server calls submit() (batch loop) and resize() (governor
        loop) from different executor threads; a resize shutting the
        pool down under an in-flight submit must block, not raise
        'cannot schedule new futures after shutdown'."""
        dispatcher = BatchDispatcher(workers=1, max_batch=2)
        failures = []

        def stepper():
            try:
                for base in range(0, 8, 2):
                    results = dispatcher.submit(
                        _requests(2, base=base, steps=2))
                    assert [r["steps_taken"] for r in results] == \
                        [base + 2, base + 2]
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                failures.append(exc)

        thread = threading.Thread(target=stepper)
        thread.start()
        for workers in (2, 1, 2):
            dispatcher.resize(workers)
        thread.join()
        dispatcher.close()
        assert not failures, f"submit raced resize: {failures[0]!r}"

    @pytest.mark.parametrize("kwargs", [dict(workers=-1), dict(max_batch=0)])
    def test_rejects_degenerate_parameters(self, kwargs):
        with pytest.raises(ValueError):
            BatchDispatcher(**kwargs)
