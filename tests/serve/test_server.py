"""The asyncio server: protocol ops, error codes, shedding, eviction."""

import asyncio
import json

import pytest

from repro.serve import (Client, InProcessClient, ServerConfig,
                         SimulationServer)


def run(coro):
    return asyncio.run(coro)


def make_server(**kwargs):
    defaults = dict(workers=0, governor="none", admission_rate=1000.0,
                    admission_burst=1000.0)
    defaults.update(kwargs)
    return SimulationServer(ServerConfig(**defaults))


async def with_server(body, **kwargs):
    """Start an in-process (no socket) server, run ``body``, stop."""
    server = make_server(**kwargs)
    await server.start(listen=False)
    try:
        return await body(server, InProcessClient(server))
    finally:
        await server.stop()


class TestOps:
    def test_create_step_run_metrics_snapshot_close(self):
        async def body(server, client):
            created = await client.create("sensornet", steps=30,
                                          n_channels=4, seed=1)
            assert created["ok"] and created["substrate"] == "sensornet"
            assert created["v"] == 1
            session = created["session"]

            stepped = await client.step(session, n=5)
            assert stepped["ok"] and stepped["steps_taken"] == 5
            assert stepped["snapshot"]["steps_taken"] == 5

            snap = await client.snapshot(session)
            assert snap["ok"] and not snap["stale"]
            assert snap["snapshot"] == stepped["snapshot"]  # cache hit

            finished = await client.run(session)
            assert finished["steps_taken"] == 30  # to the config budget

            metrics = await client.metrics(session)
            assert metrics["ok"] and metrics["metrics"]

            closed = await client.close_session(session)
            assert closed["ok"]
            missing = await client.step(session)
            assert missing["error"]["code"] == "unknown_session"
            assert missing["error"]["retryable"] is False
            assert missing["code"] == "unknown_session"  # v0 mirror

        run(with_server(body))

    def test_hello_reports_capabilities(self):
        async def body(server, client):
            hello = await client.hello()
            assert hello["ok"] and hello["protocol"] == 1
            assert hello["node"] == "n0"
            assert "create" in hello["ops"]
            assert "migrate_in" in hello["ops"]
            assert "sensornet" in hello["substrates"]

        run(with_server(body))

    def test_step_results_match_direct_simulation(self):
        """What the server returns is exactly what the simulator does."""
        async def body(server, client):
            created = await client.create("sensornet", steps=30,
                                          n_channels=4, seed=7)
            return await client.step(created["session"], n=12)

        from repro.api import SensornetConfig, make_simulator
        response = run(with_server(body))
        sim = make_simulator("sensornet",
                             SensornetConfig(steps=30, n_channels=4, seed=7))
        for _ in range(12):
            sim.step()
        direct = json.loads(json.dumps(
            {"metrics": sim.metrics(), "snapshot": sim.snapshot()}))
        assert response["metrics"] == direct["metrics"]
        assert response["snapshot"] == direct["snapshot"]


class TestConcurrency:
    def test_concurrent_steps_on_one_session_all_land(self):
        """Two connections stepping the same session must serialise:
        without the per-session lock both capture the same base position
        and one request's steps are silently lost."""
        async def body(server, client):
            created = await client.create("sensornet", steps=1000,
                                          n_channels=4, seed=3)
            session = created["session"]
            responses = await asyncio.gather(
                *(client.step(session, n=1) for _ in range(8)))
            assert all(r["ok"] for r in responses)
            assert sorted(r["steps_taken"] for r in responses) == \
                list(range(1, 9))
            assert server.sessions.get(session).steps_taken == 8
            snap = await client.snapshot(session)
            assert not snap["stale"]
            return snap

        from repro.api import SensornetConfig, make_simulator
        snap = run(with_server(body))
        sim = make_simulator("sensornet",
                             SensornetConfig(steps=1000, n_channels=4,
                                             seed=3))
        for _ in range(8):
            sim.step()
        assert snap["snapshot"] == json.loads(json.dumps(sim.snapshot()))

    def test_concurrent_run_and_step_respect_the_budget(self):
        async def body(server, client):
            created = await client.create("sensornet", steps=20,
                                          n_channels=4, seed=5)
            session = created["session"]
            await asyncio.gather(client.step(session, n=6),
                                 client.run(session))
            assert server.sessions.get(session).steps_taken <= 20 + 6
            finished = await client.run(session)
            # run() computes the remaining budget under the session lock,
            # so the final position is exactly the budget, never past it
            # by a stale remainder.
            assert finished["steps_taken"] in (20, 26)
            again = await client.run(session)
            assert again["steps_taken"] == finished["steps_taken"]

        run(with_server(body))


class TestErrors:
    def test_unknown_op_unknown_substrate_bad_config(self):
        async def body(server, client):
            unknown_op = await client.request({"op": "launch"})
            assert unknown_op["error"]["code"] == "bad_request"
            assert "create" in unknown_op["error"]["message"]

            bad_substrate = await client.request(
                {"op": "create", "substrate": "mainframe"})
            assert bad_substrate["error"]["code"] == "bad_request"
            assert "sensornet" in bad_substrate["error"]["message"]

            bad_config = await client.request(
                {"op": "create", "substrate": "sensornet",
                 "config": {"no_such_field": 1}})
            assert bad_config["error"]["code"] == "bad_request"

            negative = await client.request(
                {"op": "create", "substrate": "sensornet",
                 "config": {"steps": 10}})
            bad_n = await client.request(
                {"op": "step", "session": negative["session"], "n": -1})
            assert bad_n["error"]["code"] == "bad_request"

        run(with_server(body))

    def test_error_envelope_shape(self):
        """Every error is the one structured object: code, message,
        retryable, plus the versioned envelope and the v0 mirror."""
        async def body(server, client):
            response = await client.request({"op": "step", "session": "sX"})
            assert response["ok"] is False
            assert response["v"] == 1
            error = response["error"]
            assert set(error) >= {"code", "message", "retryable"}
            assert response["code"] == error["code"]  # deprecated mirror

        run(with_server(body))


class TestShedding:
    def test_overload_sheds_with_a_shed_code(self):
        async def body(server, client):
            created = await client.create("sensornet", steps=1000,
                                          n_channels=4)
            session = created["session"]
            verdicts = [await client.step(session) for _ in range(20)]
            ok = [v for v in verdicts if v.get("ok")]
            shed = [v for v in verdicts
                    if str(v.get("error", {}).get("code", "")).startswith(
                        "shed")]
            assert ok, "everything shed: admission burst too tight"
            assert shed, "nothing shed despite a ~zero admission rate"
            assert all(v["error"]["retryable"] for v in shed)
            assert len(ok) + len(shed) == 20
            stats = (await client.stats())["stats"]
            assert stats["admission"]["shed_rate"] == len(shed)

        # ~3 tokens then a trickle: most of the burst must shed.
        run(with_server(body, admission_rate=0.001, admission_burst=3.0))


class TestBackgroundLoops:
    def test_ttl_loop_evicts_idle_sessions(self):
        async def body(server, client):
            created = await client.create("sensornet", steps=30,
                                          n_channels=4)
            assert len(server.sessions) == 1
            await asyncio.sleep(0.6)  # > ttl + sweep interval
            assert len(server.sessions) == 0
            gone = await client.snapshot(created["session"])
            assert gone["error"]["code"] == "unknown_session"

        run(with_server(body, ttl=0.2))

    def test_governor_loop_ticks_and_explains(self):
        async def body(server, client):
            created = await client.create("sensornet", steps=200,
                                          n_channels=4)
            for _ in range(10):
                await client.step(created["session"])
            await asyncio.sleep(0.25)  # two governor intervals
            explained = await client.request({"op": "explain"})
            assert explained["ok"]
            assert "Governor state" in explained["explanation"]
            stats = (await client.stats())["stats"]
            assert stats["requests_completed"] >= 11

        run(with_server(body, governor="self_aware", govern_interval=0.1))

    def test_default_units_do_not_trip_degradation_under_light_load(self):
        """The wall-clock governor with the server's default SLO and
        service-rate units (seconds, requests/second) must judge a
        lightly loaded server healthy: predicted latency lives in the
        same unit as the measured p95, so confidence stays high and the
        degradation monitor never trips."""
        async def body(server, client):
            created = await client.create("sensornet", steps=5000,
                                          n_channels=4)
            session = created["session"]
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 0.7
            while loop.time() < deadline:
                response = await client.step(session)
                assert response["ok"]
                await asyncio.sleep(0.01)
            assert server.governor.monitor.last_confidence is not None, \
                "governor loop never ticked"
            stats = (await client.stats())["stats"]
            assert not stats["degraded"]
            assert not stats["serve_stale"]

        # Default slo_p95/service_rate_guess; only the cadence is sped
        # up so a dozen governance cycles fit in the test budget.
        run(with_server(body, governor="self_aware", govern_interval=0.05))


class TestSocket:
    def test_round_trip_over_a_real_socket(self):
        async def body():
            server = make_server(port=0)
            await server.start()
            try:
                client = await Client.connect(server.host, server.port)
                try:
                    created = await client.create("sensornet", steps=30,
                                                  n_channels=4, seed=1)
                    assert created["ok"] and created["v"] == 1
                    stepped = await client.step(created["session"], n=3)
                    assert stepped["steps_taken"] == 3
                    stats = await client.stats()
                    assert stats["stats"]["requests_completed"] >= 2
                finally:
                    await client.close()
            finally:
                await server.stop()

        run(body())

    def test_unparseable_line_gets_a_bad_request(self):
        async def body():
            server = make_server(port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {"ok": False, "v": 1,
                                    "code": "bad_request",
                                    "error": response["error"]}
                assert response["error"]["code"] == "bad_request"
                assert "unparseable" in response["error"]["message"]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(body())


class TestConstruction:
    def test_unknown_governor_rejected(self):
        with pytest.raises(ValueError, match="governor"):
            SimulationServer(ServerConfig(governor="vibes"))

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="ServerConfig"):
            server = SimulationServer(workers=0, governor="static", ttl=7.0)
        assert server.config.ttl == 7.0
        assert server.config.governor == "static"

    def test_config_and_legacy_kwargs_cannot_mix(self):
        with pytest.raises(TypeError, match="not both"):
            SimulationServer(ServerConfig(), ttl=7.0)

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="unknown server option"):
                SimulationServer(threads=3)
