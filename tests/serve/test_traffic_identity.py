"""The Scenario re-wire left cluster traffic byte-identical.

PR 10 replaced :class:`ClusterSimulation`'s inline Zipf/flash/uniform
weight expressions with :mod:`repro.envgen.scenario` session mixes.
Two guards prove nothing moved:

* weight-level equality -- every tier's weight vector equals the legacy
  inline expression, element for element, across the tick range (robust
  to numpy version drift);
* a pinned golden hash of an E16 shard captured on the pre-refactor
  code -- the full pipeline (weights -> multinomial -> admission ->
  metrics) reproduced bit for bit.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.api.configs import ClusterConfig
from repro.serve.cluster import ClusterSimulation

#: sha256 of ``json.dumps(run_shard(0, steps=120, tiers=(skewed, flash,
#: uniform)), sort_keys=True)`` captured on the pre-refactor generators.
GOLDEN_E16_SHARD_HASH = \
    "b3685b51b79050fcc36a29637e3942f446ece68b8ef0c742dd0ed68ffa336dd8"


def _legacy_weights(cfg: ClusterConfig, t: float) -> np.ndarray:
    """The inline expression ClusterSimulation shipped before PR 10."""
    n = cfg.sessions
    if cfg.traffic == "skewed":
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float),
                                 cfg.zipf_s)
    else:
        weights = np.ones(n, dtype=float)
        if (cfg.traffic == "flash"
                and cfg.flash_at <= t < cfg.flash_at + cfg.flash_len):
            weights[:cfg.flash_sessions] *= cfg.flash_factor
    return weights / weights.sum()


class TestWeightEquality:
    @pytest.mark.parametrize("tier", ("skewed", "flash", "uniform"))
    def test_every_tier_matches_the_legacy_expression(self, tier):
        cfg = ClusterConfig(traffic=tier)
        sim = ClusterSimulation(cfg)
        for t in (0.0, 100.0, 159.0, 160.0, 200.0, 279.0, 280.0, 399.0):
            np.testing.assert_array_equal(
                sim._weights(t), _legacy_weights(cfg, t),
                err_msg=f"tier {tier!r} diverged at t={t}")

    def test_nondefault_zipf_and_flash_parameters(self):
        skew = ClusterConfig(traffic="skewed", zipf_s=0.8, sessions=32)
        np.testing.assert_array_equal(
            ClusterSimulation(skew)._weights(0.0),
            _legacy_weights(skew, 0.0))
        flash = ClusterConfig(traffic="flash", flash_at=10, flash_len=5,
                              flash_factor=3.0, flash_sessions=4)
        for t in (9.0, 10.0, 12.0, 15.0):
            np.testing.assert_array_equal(
                ClusterSimulation(flash)._weights(t),
                _legacy_weights(flash, t))


class TestGoldenShard:
    def test_e16_shard_hash_is_unchanged(self):
        from repro.experiments import e16_cluster
        shard = e16_cluster.run_shard(
            0, steps=120, tiers=("skewed", "flash", "uniform"))
        digest = hashlib.sha256(
            json.dumps(shard, sort_keys=True).encode()).hexdigest()
        assert digest == GOLDEN_E16_SHARD_HASH, (
            "E16 tables moved: the Scenario re-wire (or a later change) "
            "altered cluster traffic byte-for-byte")


class TestScenarioFieldIsInert:
    def test_unset_scenario_changes_nothing(self):
        plain = ClusterSimulation(ClusterConfig(steps=60, seed=0)).run()
        again = ClusterSimulation(ClusterConfig(steps=60, seed=0,
                                                scenario="")).run()
        assert json.dumps(plain) == json.dumps(again)

    def test_scenario_modulates_the_cluster_load(self):
        base = ClusterSimulation(ClusterConfig(steps=60, seed=0)).run()
        spiked = ClusterSimulation(ClusterConfig(
            steps=60, seed=0,
            scenario="flash_crowd")).run()
        assert sum(r["offered"] for r in spiked) \
            != sum(r["offered"] for r in base)
