"""Sessions: TTL eviction, the LRU snapshot cache, and rehydration."""

import pytest

from repro.api import SensornetConfig
from repro.serve import SessionTable, SnapshotCache, UnknownSession

CONFIG = SensornetConfig(steps=60, n_channels=4, seed=3)


class TestLifecycle:
    def test_ids_are_sequential_and_stable(self):
        table = SessionTable()
        a = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        b = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        assert (a.session_id, b.session_id) == ("s000001", "s000002")
        assert table.ids() == ["s000001", "s000002"]

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownSession):
            SessionTable().get("s000404")

    def test_close_removes_session_and_snapshots(self):
        table = SessionTable()
        session = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        table.snapshots.put(session.session_id, 0, {"x": 1})
        table.close(session.session_id)
        assert len(table) == 0
        assert table.snapshots.latest(session.session_id) is None
        with pytest.raises(UnknownSession):
            table.close(session.session_id)

    def test_max_sessions_is_a_hard_bound(self):
        table = SessionTable(max_sessions=2)
        table.create(0.0, "sensornet", CONFIG, hydrate=False)
        table.create(0.0, "sensornet", CONFIG, hydrate=False)
        with pytest.raises(RuntimeError, match="full"):
            table.create(0.0, "sensornet", CONFIG, hydrate=False)


class TestTTLEviction:
    def test_idle_sessions_expire_active_ones_survive(self):
        table = SessionTable(ttl=10.0)
        idle = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        busy = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        table.get(busy.session_id, now=9.0)   # a touch resets the clock
        evicted = table.evict_expired(15.0)
        assert evicted == [idle.session_id]
        assert table.ids() == [busy.session_id]
        assert table.evicted == 1

    def test_exactly_at_ttl_is_not_yet_expired(self):
        table = SessionTable(ttl=10.0)
        session = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        assert table.evict_expired(10.0) == []
        assert table.evict_expired(10.0001) == [session.session_id]

    def test_eviction_drops_cached_snapshots_too(self):
        table = SessionTable(ttl=1.0)
        session = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        table.snapshots.put(session.session_id, 3, {"t": 3})
        table.evict_expired(5.0)
        assert table.snapshots.latest(session.session_id) is None


class TestSnapshotCache:
    def test_lru_evicts_the_coldest_entry(self):
        cache = SnapshotCache(max_entries=2)
        cache.put("a", 1, {"s": 1})
        cache.put("b", 1, {"s": 2})
        cache.get("a", 1)            # refresh a; b is now coldest
        cache.put("c", 1, {"s": 3})
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == {"s": 1}
        assert cache.get("c", 1) == {"s": 3}

    def test_hit_and_miss_counters(self):
        cache = SnapshotCache()
        cache.put("a", 1, {})
        cache.get("a", 1)
        cache.get("a", 2)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_latest_returns_highest_step(self):
        cache = SnapshotCache()
        cache.put("a", 5, {"t": 5})
        cache.put("a", 9, {"t": 9})
        cache.put("b", 99, {"t": 99})
        assert cache.latest("a") == (9, {"t": 9})
        assert cache.latest("nope") is None


class TestRehydration:
    def test_hibernate_then_rehydrate_reproduces_exact_state(self):
        """The replay guarantee doing production work: dropping the live
        simulator and rebuilding from (config, seed, steps_taken) must
        land on a byte-identical snapshot."""
        table = SessionTable()
        session = table.create(0.0, "sensornet", CONFIG)
        sim = table.simulator(session)
        for _ in range(17):
            sim.step()
        session.steps_taken = 17
        before = (dict(sim.snapshot()), dict(sim.metrics()))

        table.hibernate(session.session_id)
        assert session.simulator is None

        rehydrated = table.simulator(session)
        assert rehydrated is not sim
        assert dict(rehydrated.snapshot()) == before[0]
        assert dict(rehydrated.metrics()) == before[1]

    def test_table_snapshot_uses_cache_then_stale_then_simulator(self):
        table = SessionTable()
        session = table.create(0.0, "sensornet", CONFIG, hydrate=False)
        # Miss everywhere: falls through to the simulator, then caches.
        snap, stale = table.snapshot(session)
        assert not stale and snap["steps_taken"] == 0
        assert table.snapshot(session) == (snap, False)  # exact-cache hit
        # Advance the declarative position; the exact entry is now missing
        # but the stale path may serve the old one.
        session.steps_taken = 5
        old, stale = table.snapshot(session, stale_ok=True)
        assert stale and old == snap
