"""The discrete-time serving model: determinism, shapes, and the claim."""

import json

from repro.api import ServeConfig, make_simulator
from repro.serve import ServingSimulation


def small(**overrides):
    base = dict(steps=240, seed=3, offered_load=16.0, warmup=60)
    base.update(overrides)
    return ServeConfig(**base)


class TestDeterminism:
    def test_same_config_replays_byte_identically(self):
        a = ServingSimulation(small())
        b = ServingSimulation(small())
        a.run()
        b.run()
        assert json.dumps(a.records) == json.dumps(b.records)
        assert json.dumps(a.metrics()) == json.dumps(b.metrics())

    def test_reset_replays_in_place(self):
        sim = ServingSimulation(small())
        first = (json.dumps(sim.run()), json.dumps(sim.metrics()))
        sim.reset(3)
        second = (json.dumps(sim.run()), json.dumps(sim.metrics()))
        assert first == second

    def test_seeds_differ(self):
        a = ServingSimulation(small(seed=1))
        b = ServingSimulation(small(seed=2))
        a.run()
        b.run()
        assert a.records != b.records


class TestShapes:
    def test_snapshot_shape(self):
        sim = make_simulator("serve", small())
        for _ in range(5):
            sim.step()
        snap = sim.snapshot()
        assert snap["substrate"] == "serve"
        assert snap["steps_taken"] == 5
        assert {"queue_depth", "pool", "degraded"} <= set(snap)

    def test_metrics_keys_and_bounds(self):
        sim = ServingSimulation(small())
        sim.run()
        metrics = sim.metrics()
        assert set(metrics) == {"goodput", "p95_latency", "shed_fraction",
                                "mean_pool", "slo_attainment", "offered"}
        assert 0.0 <= metrics["shed_fraction"] <= 1.0
        assert 0.0 <= metrics["slo_attainment"] <= 1.0
        assert metrics["goodput"] >= 0.0
        assert metrics["mean_pool"] >= 1.0

    def test_record_accounting_balances(self):
        sim = ServingSimulation(small())
        for record in sim.run():
            assert record["offered"] == record["admitted"] + record["shed"]
            assert record["good"] <= record["completions"]
            assert record["effective"] <= record["pool"]


class TestControl:
    def test_governor_outserves_static_under_overload(self):
        """The E14 direction at smoke size: at an offered load well above
        the static pool's capacity, the self-aware arm completes more
        SLO-met work per tick."""
        results = {}
        for arm in ("static", "self_aware"):
            sim = ServingSimulation(small(governor=arm))
            sim.run()
            results[arm] = sim.metrics()
        assert (results["self_aware"]["goodput"]
                > 1.2 * results["static"]["goodput"])

    def test_static_arm_never_scales(self):
        sim = ServingSimulation(small(governor="static", static_workers=2))
        assert all(r["pool"] == 2.0 for r in sim.run())

    def test_boot_delay_defers_scale_up(self):
        """Pool growth can only land ``boot_delay`` ticks after a
        governor decision tick."""
        cfg = small(boot_delay=5, govern_every=4)
        sim = ServingSimulation(cfg)
        grow_ticks = [r["time"] for i, r in enumerate(sim.run())
                      if i and sim.records[i]["pool"]
                      > sim.records[i - 1]["pool"]]
        assert grow_ticks, "never scaled up under overload"
        # A decision at tick t books capacity for t + boot_delay; growth
        # therefore lands at least boot_delay after *some* decision tick.
        for t in grow_ticks:
            decision_ticks = [d for d in range(int(t) + 1)
                              if d % cfg.govern_every == 0]
            assert any(t >= d + cfg.boot_delay for d in decision_ticks)
