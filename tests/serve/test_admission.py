"""Admission control: token-bucket edges and the two shed verdicts."""

import pytest

from repro.serve import (ADMIT, SHED_QUEUE, SHED_RATE, AdmissionController,
                         TokenBucket)


class TestTokenBucketRefill:
    def test_starts_full(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0)
        assert bucket.tokens == 4.0

    def test_refill_accrues_at_rate(self):
        bucket = TokenBucket(rate=2.0, capacity=10.0, initial=0.0)
        bucket.refill(0.0)   # establish the origin
        bucket.refill(1.5)
        assert bucket.tokens == pytest.approx(3.0)

    def test_burst_clamps_at_capacity_however_long_idle(self):
        """Idle time buys at most ``capacity`` tokens -- never more."""
        bucket = TokenBucket(rate=5.0, capacity=3.0, initial=0.0)
        bucket.refill(0.0)
        bucket.refill(10_000.0)
        assert bucket.tokens == 3.0

    def test_request_above_capacity_never_succeeds(self):
        bucket = TokenBucket(rate=5.0, capacity=3.0)
        assert not bucket.try_acquire(1e9, cost=3.5)

    def test_backwards_time_refills_nothing(self):
        """Clock skew must neither mint tokens nor corrupt the origin."""
        bucket = TokenBucket(rate=1.0, capacity=10.0, initial=0.0)
        bucket.refill(10.0)
        bucket.refill(4.0)       # skew: earlier than the origin
        assert bucket.tokens == 0.0
        bucket.refill(11.0)      # one second after the *original* origin
        assert bucket.tokens == pytest.approx(1.0)

    def test_exact_spend_and_throttle(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # empty now
        assert bucket.try_acquire(1.0)      # one second buys one token

    def test_configure_credits_accrual_at_the_old_rate(self):
        bucket = TokenBucket(rate=10.0, capacity=100.0, initial=0.0)
        bucket.refill(0.0)
        bucket.configure(2.0, rate=1.0)   # 2s at the OLD rate -> 20 tokens
        assert bucket.tokens == pytest.approx(20.0)
        bucket.refill(3.0)                # 1s at the new rate
        assert bucket.tokens == pytest.approx(21.0)

    def test_configure_capacity_clips_tokens(self):
        bucket = TokenBucket(rate=1.0, capacity=10.0)
        bucket.configure(0.0, capacity=4.0)
        assert bucket.tokens == 4.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_degenerate_parameters(self, bad):
        with pytest.raises(ValueError):
            TokenBucket(rate=bad, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=bad)


class TestAdmissionController:
    def test_admits_until_bucket_empty(self):
        ctl = AdmissionController(rate=1.0, burst=2.0)
        assert ctl.admit(0.0) is ADMIT
        assert ctl.admit(0.0) is ADMIT
        assert ctl.admit(0.0) is SHED_RATE

    def test_queue_bound_sheds_before_the_bucket_is_consulted(self):
        """A drowning system must shed regardless of token balance."""
        ctl = AdmissionController(rate=100.0, burst=100.0, max_queue=4.0)
        assert ctl.admit(0.0, queue_depth=4.0) is SHED_QUEUE
        assert ctl.bucket.tokens == 100.0  # untouched

    def test_counters_and_shed_fraction(self):
        ctl = AdmissionController(rate=1.0, burst=1.0, max_queue=2.0)
        verdicts = [ctl.admit(0.0),                    # admit
                    ctl.admit(0.0),                    # shed_rate
                    ctl.admit(0.0, queue_depth=5.0)]   # shed_queue
        assert verdicts == [ADMIT, SHED_RATE, SHED_QUEUE]
        assert ctl.admitted == 1
        assert ctl.shed == {SHED_RATE: 1, SHED_QUEUE: 1}
        assert ctl.total_shed() == 2
        assert ctl.shed_fraction() == pytest.approx(2.0 / 3.0)

    def test_shed_fraction_with_no_traffic_is_zero(self):
        assert AdmissionController(rate=1.0).shed_fraction() == 0.0

    def test_configure_retunes_all_three_knobs(self):
        ctl = AdmissionController(rate=1.0, burst=1.0, max_queue=2.0)
        ctl.configure(0.0, rate=50.0, burst=10.0, max_queue=99.0)
        assert ctl.rate == 50.0
        assert ctl.bucket.capacity == 10.0
        assert ctl.max_queue == 99.0

    def test_snapshot_is_json_safe_and_complete(self):
        import json
        ctl = AdmissionController(rate=3.0, burst=6.0, max_queue=9.0)
        ctl.admit(0.0)
        snap = ctl.snapshot()
        json.dumps(snap)
        assert set(snap) == {"admitted", "shed_rate", "shed_queue",
                             "shed_fraction", "rate", "burst", "max_queue",
                             "tokens"}
