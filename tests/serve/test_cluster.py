"""The sharded cluster: routing, migration edges, collective governance.

The migration tests all assert the same contract from different angles:
a migrated session's state is *byte-identical* to a never-migrated
replay, because the declarative handle plus the facade's replay
guarantee is the entire transport.
"""

import asyncio
import json

import pytest

from repro.api import SensornetConfig, make_simulator
from repro.serve import (ClusterSimulation, ServeCluster, ServerConfig)
from repro.serve.cluster import ClusterClient
from repro.serve.protocol import error_code
from repro.api.configs import ClusterConfig


def run(coro):
    return asyncio.run(coro)


def make_cluster(**kwargs):
    defaults = dict(nodes=3,
                    base=ServerConfig(governor="none",
                                      admission_rate=1000.0,
                                      admission_burst=1000.0),
                    governor="none")
    defaults.update(kwargs)
    return ServeCluster(**defaults)


async def with_cluster(body, **kwargs):
    cluster = await make_cluster(**kwargs).start(listen=False)
    try:
        return await body(cluster, cluster.cluster_client())
    finally:
        await cluster.stop()


def replay_snapshot(n_steps, **config):
    """The never-migrated reference: fresh build, reset, step."""
    cfg = SensornetConfig(**config)
    sim = make_simulator("sensornet", cfg)
    sim.reset(cfg.seed)
    for _ in range(n_steps):
        sim.step()
    return json.loads(json.dumps(sim.snapshot()))


class TestRouting:
    def test_cluster_ids_carry_their_birth_node(self):
        async def body(cluster, client):
            created = await client.create("sensornet", steps=30,
                                          n_channels=4, seed=1)
            assert created["ok"]
            assert created["session"].startswith(created["node"] + "-")
            assert cluster.placements[created["session"]] == created["node"]

        run(with_cluster(body))

    def test_creates_spread_over_nodes(self):
        async def body(cluster, client):
            nodes = set()
            for _ in range(12):
                created = await client.create("sensornet", steps=10,
                                              n_channels=4)
                nodes.add(created["node"])
            assert len(nodes) >= 2

        run(with_cluster(body))

    def test_moved_redirects_are_followed_and_cached(self):
        async def body(cluster, client):
            created = await client.create("sensornet", steps=50,
                                          n_channels=4, seed=2)
            sid = created["session"]
            src = cluster.placements[sid]
            dst = next(n for n in cluster.node_ids if n != src)
            await cluster.migrate(sid, dst)
            # The direct client at the old owner bounces with "moved"...
            direct = cluster.client(src)
            bounced = await direct.step(sid)
            assert error_code(bounced) == "moved"
            assert bounced["error"]["node"] == dst
            assert bounced["error"]["retryable"] is True
            # ...the cluster client follows the redirect transparently.
            stepped = await client.step(sid, n=3)
            assert stepped["ok"] and stepped["steps_taken"] == 3
            assert client.redirects_followed >= 1
            # Cached: the next request goes straight to the new owner.
            before = client.redirects_followed
            await client.step(sid)
            assert client.redirects_followed == before

        run(with_cluster(body))

    def test_redirect_storm_raises(self):
        class Bouncer:
            async def request(self, payload):
                from repro.serve.protocol import ErrorCode, error_response
                return error_response(ErrorCode.MOVED, "ping", node="a")

        async def body():
            client = ClusterClient({"a": Bouncer()}, max_redirects=2)
            with pytest.raises(RuntimeError, match="redirect"):
                await client.request({"op": "step", "session": "s1"})

        run(body())


class TestMigration:
    def test_post_migration_snapshot_byte_identical(self):
        async def body(cluster, client):
            created = await client.create("sensornet", steps=40,
                                          n_channels=4, seed=9)
            sid = created["session"]
            await client.step(sid, n=7)
            src = cluster.placements[sid]
            dst = next(n for n in cluster.node_ids if n != src)
            moved = await cluster.migrate(sid, dst)
            assert moved["moved"] and moved["steps_taken"] == 7
            # The session left the old node entirely.
            assert sid not in cluster.servers[src].sessions.ids()
            snap = await client.snapshot(sid)
            return snap["snapshot"]

        snapshot = run(with_cluster(body))
        assert snapshot == replay_snapshot(7, steps=40, n_channels=4, seed=9)

    def test_migrate_during_run_commits_the_budget_first(self):
        """Migration mid-``run``: the handle is exported under the
        session lock, so the in-flight run commits its full budget and
        the migrated replay lands exactly at the budget."""
        async def body(cluster, client):
            created = await client.create("sensornet", steps=25,
                                          n_channels=4, seed=4)
            sid = created["session"]
            src = cluster.placements[sid]
            dst = next(n for n in cluster.node_ids if n != src)
            run_task = asyncio.create_task(client.run(sid))
            await asyncio.sleep(0)  # let the run take the session lock
            moved = await cluster.migrate(sid, dst)
            finished = await run_task
            assert finished["ok"] and finished["steps_taken"] == 25
            assert moved["steps_taken"] == 25
            snap = await client.snapshot(sid)
            return snap["snapshot"]

        snapshot = run(with_cluster(body))
        assert snapshot == replay_snapshot(25, steps=25, n_channels=4, seed=4)

    def test_migrate_with_warm_snapshot_cache(self):
        """A warm SnapshotCache entry on the source must neither leak to
        the destination nor poison the post-migration state: the new
        node rebuilds by replay and serves the identical snapshot."""
        async def body(cluster, client):
            created = await client.create("sensornet", steps=40,
                                          n_channels=4, seed=6)
            sid = created["session"]
            await client.step(sid, n=5)
            src = cluster.placements[sid]
            warm = await client.snapshot(sid)  # cache hit on the source
            assert not warm["stale"]
            assert cluster.servers[src].sessions.snapshots.latest(sid)
            dst = next(n for n in cluster.node_ids if n != src)
            await cluster.migrate(sid, dst)
            # Source cache dropped with the session; destination cold.
            assert cluster.servers[src].sessions.snapshots.latest(sid) is None
            assert cluster.servers[dst].sessions.snapshots.latest(sid) is None
            again = await client.snapshot(sid)
            assert again["snapshot"] == warm["snapshot"]
            return again["snapshot"]

        snapshot = run(with_cluster(body))
        assert snapshot == replay_snapshot(5, steps=40, n_channels=4, seed=6)

    def test_rehydrate_on_wrong_node_rejected(self):
        """A handle imported on a node the placement map does not route
        the session to is refused with ``wrong_node``."""
        async def body(cluster, client):
            created = await client.create("sensornet", steps=30,
                                          n_channels=4, seed=3)
            sid = created["session"]
            src = cluster.placements[sid]
            out = await cluster.servers[src].dispatch(
                {"op": "migrate_out", "session": sid})
            assert out["ok"]
            wrong = next(n for n in cluster.node_ids if n != src)
            # Placement still says src, so `wrong` must refuse the
            # handle rather than fork the session.
            rejected = await cluster.servers[wrong].dispatch(
                {"op": "migrate_in", "handle": out["handle"]})
            assert error_code(rejected) == "wrong_node"
            assert rejected["error"]["retryable"] is False
            assert sid not in cluster.servers[wrong].sessions.ids()
            # The intended node still accepts it.
            back = await cluster.servers[src].dispatch(
                {"op": "migrate_in", "handle": out["handle"]})
            assert back["ok"]

        run(with_cluster(body))

    def test_migrate_unknown_placement_and_unknown_node(self):
        async def body(cluster, client):
            with pytest.raises(KeyError, match="placement"):
                await cluster.migrate("ghost", cluster.node_ids[0])
            created = await client.create("sensornet", steps=10,
                                          n_channels=4)
            with pytest.raises(ValueError, match="unknown node"):
                await cluster.migrate(created["session"], "n99")

        run(with_cluster(body))


class TestCollectiveCluster:
    def test_collective_governors_share_one_board(self):
        async def body(cluster, client):
            governors = [s.governor for s in cluster.servers.values()]
            boards = {id(g.board) for g in governors}
            assert len(boards) == 1
            budgets = {g.worker_budget for g in governors}
            assert budgets == {6}

        run(with_cluster(body,
                         base=ServerConfig(governor="self_aware",
                                           admission_rate=1000.0,
                                           admission_burst=1000.0),
                         governor="collective", worker_budget=6))


class TestClusterSimulation:
    def test_byte_identical_replay(self):
        config = ClusterConfig(steps=120, warmup=20, seed=11)
        a = ClusterSimulation(config)
        a.run()
        b = ClusterSimulation(config)
        b.run()
        assert a.records == b.records
        assert a.metrics() == b.metrics()

    def test_reset_restores_the_initial_state(self):
        sim = ClusterSimulation(ClusterConfig(steps=60, warmup=10, seed=5))
        first = sim.run()
        sim.reset(5)
        assert sim.records == []
        assert sim.run() == first

    def test_ring_places_sessions_unevenly_under_skew(self):
        sim = ClusterSimulation(ClusterConfig(seed=0))
        counts = sim.snapshot()["placements"]
        assert sum(counts.values()) == sim.config.sessions

    def test_collective_arm_gossips_and_rebalances(self):
        sim = ClusterSimulation(ClusterConfig(
            governor="collective", traffic="flash", steps=250, seed=1))
        sim.run()
        m = sim.metrics()
        # The very first govern tick may fall back (a node that gossips
        # before its peers sees a one-view board); after that the board
        # stays fresh and every decision is collective.
        assert m["collective_fraction"] >= 0.9
        assert sim.board.published > 0
        assert sim.migrations >= 1  # flash co-location forces a move

    def test_per_node_and_static_arms_never_gossip(self):
        for arm in ("per_node", "static"):
            sim = ClusterSimulation(ClusterConfig(
                governor=arm, steps=80, warmup=10, seed=2))
            sim.run()
            assert sim.board.published == 0
            assert sim.migrations == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="governor"):
            ClusterSimulation(ClusterConfig(governor="vibes"))
        with pytest.raises(ValueError, match="traffic"):
            ClusterSimulation(ClusterConfig(traffic="tsunami"))
        with pytest.raises(ValueError, match="worker_budget"):
            ClusterSimulation(ClusterConfig(nodes=8, worker_budget=4))
