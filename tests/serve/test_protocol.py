"""The versioned wire protocol: envelopes, codes, capability negotiation."""

import asyncio

import pytest

from repro.serve import (CapabilityError, ErrorCode, InProcessClient,
                         ServerConfig, SimulationServer)
from repro.serve.protocol import (PROTOCOL_VERSION, RETRYABLE, check_version,
                                  error_code, error_response, ok_response)


def run(coro):
    return asyncio.run(coro)


class TestEnvelopes:
    def test_error_response_shape(self):
        response = error_response(ErrorCode.MOVED, "it moved", node="n3")
        assert response["ok"] is False
        assert response["v"] == PROTOCOL_VERSION
        assert response["error"] == {"code": "moved", "message": "it moved",
                                     "retryable": True, "node": "n3"}
        assert response["code"] == "moved"  # deprecated v0 mirror

    def test_retryability_is_a_property_of_the_code(self):
        assert ErrorCode.SHED_RATE in RETRYABLE
        assert ErrorCode.MOVED in RETRYABLE
        assert ErrorCode.BAD_REQUEST not in RETRYABLE
        assert ErrorCode.WRONG_NODE not in RETRYABLE
        assert ErrorCode.UNSUPPORTED_VERSION not in RETRYABLE

    def test_ok_response_stamps_envelope(self):
        assert ok_response({"x": 1}) == {"x": 1, "ok": True,
                                         "v": PROTOCOL_VERSION}

    def test_error_code_reads_v1_then_v0(self):
        assert error_code(error_response(ErrorCode.MOVED, "m")) == "moved"
        assert error_code({"ok": False, "code": "shed_rate",
                           "error": "old style"}) == "shed_rate"
        assert error_code({"ok": True, "x": 1}) is None


class TestCheckVersion:
    def test_missing_v_means_one(self):
        assert check_version({"op": "stats"}) is None

    def test_current_version_accepted(self):
        assert check_version({"v": PROTOCOL_VERSION}) is None

    @pytest.mark.parametrize("v", [0, -1, 99, "1", 1.0, True, None])
    def test_bad_versions_rejected_with_supported(self, v):
        response = check_version({"v": v})
        assert response["error"]["code"] == "unsupported_version"
        assert response["error"]["supported"] == PROTOCOL_VERSION


class TestClientCapability:
    def test_future_version_request_raises_capability_error(self):
        async def body():
            server = SimulationServer(ServerConfig(governor="none"))
            await server.start(listen=False)
            try:
                client = InProcessClient(server)
                with pytest.raises(CapabilityError) as excinfo:
                    await client.request({"op": "stats", "v": 99})
                assert excinfo.value.server_version == PROTOCOL_VERSION
            finally:
                await server.stop()

        run(body())

    def test_newer_server_reply_raises_capability_error(self):
        class FutureServer:
            async def dispatch(self, request):
                return {"ok": True, "v": PROTOCOL_VERSION + 1}

        async def body():
            client = InProcessClient(FutureServer())
            with pytest.raises(CapabilityError) as excinfo:
                await client.request({"op": "stats"})
            assert excinfo.value.server_version == PROTOCOL_VERSION + 1

        run(body())

    def test_requests_are_version_stamped(self):
        seen = {}

        class Recorder:
            async def dispatch(self, request):
                seen.update(request)
                return {"ok": True, "v": 1}

        run(InProcessClient(Recorder()).request({"op": "stats"}))
        assert seen["v"] == PROTOCOL_VERSION
