"""The governor: scaling, the SLO, degradation and self-explanation."""

import pytest

from repro.serve import (GovernorDecision, ServeGovernor, ServeSelfModel,
                         StaticGovernor)

SLO = 8.0


def make_governor(**kwargs):
    defaults = dict(slo_p95=SLO, min_workers=1, max_workers=8,
                    service_rate_guess=4.0, epsilon=0.0, seed=0)
    defaults.update(kwargs)
    return ServeGovernor(**defaults)


def stats(*, queue=0.0, arrival=0.0, p95=1.0, util=0.2, shed=0.0,
          pool=1.0, completions=0.0):
    return {"queue_depth": queue, "arrival_rate": arrival,
            "p95_latency": p95, "utilisation": util,
            "shed_fraction": shed, "pool_size": pool,
            "completion_rate": completions}


class TestScaling:
    def test_scales_up_under_sustained_pressure(self):
        """Offered 24 req/tick at 4 req/worker: telemetry responds to the
        pool the governor picks, and the pool must grow to match."""
        governor = make_governor()
        decision = None
        for t in range(12):
            pool = governor.pool_target
            saturated = pool < 6
            decision = governor.tick(float(t), stats(
                queue=40.0 if saturated else 4.0, arrival=24.0,
                p95=SLO * 1.5 if saturated else 2.0,
                util=1.0 if saturated else 0.8,
                pool=float(pool),
                completions=min(24.0, pool * 4.0)))
        assert decision.pool_target >= 6  # needs ~6 workers for 24 req/tick
        assert not decision.degraded

    def test_scales_down_when_idle(self):
        governor = make_governor()
        for t in range(8):  # first learn what pressure looks like
            governor.tick(float(t), stats(
                queue=30.0, arrival=24.0, p95=SLO, util=1.0,
                pool=float(governor.pool_target),
                completions=governor.pool_target * 4.0))
        high = governor.pool_target
        for t in range(8, 24):
            decision = governor.tick(float(t), stats(
                arrival=2.0, p95=1.0, util=0.3,
                pool=float(governor.pool_target),
                completions=2.0))
        assert decision.pool_target < high
        assert decision.pool_target <= 2  # 2 req/tick needs one worker

    def test_admission_tracks_chosen_capacity(self):
        governor = make_governor()
        decision = governor.tick(0.0, stats(arrival=4.0, util=0.5,
                                            pool=1.0, completions=4.0))
        capacity = decision.pool_target * governor.model.service_estimate
        assert decision.admission_rate == pytest.approx(
            capacity * governor.admit_headroom)
        assert decision.max_queue >= capacity  # >= one tick of drain


class TestDegradation:
    def _pressure(self, governor, t, lying=False):
        """Healthy telemetry, or telemetry whose outcomes keep
        contradicting the model's predictions (a lying p95)."""
        pool = governor.pool_target
        p95 = (SLO * 40.0 if lying and t % 2 else 0.0) if lying else 2.0
        return governor.tick(float(t), stats(
            queue=8.0, arrival=8.0, p95=p95, util=1.0,
            pool=float(pool), completions=pool * 4.0))

    def test_contradictory_telemetry_trips_the_monitor(self):
        governor = make_governor()
        for t in range(10):
            healthy = self._pressure(governor, t)
        assert not healthy.degraded
        healthy_rate = healthy.admission_rate

        tripped = None
        for t in range(10, 60):
            decision = self._pressure(governor, t, lying=True)
            if decision.degraded:
                tripped = decision
                break
        assert tripped is not None, "monitor never tripped on garbage"
        # Degraded mode: stale snapshots on, admission tightened well
        # below the healthy setting for the same capacity belief.
        assert tripped.serve_stale
        assert tripped.admission_rate < healthy_rate
        assert governor.degraded

    def test_healthy_run_never_degrades(self):
        governor = make_governor()
        for t in range(30):
            decision = self._pressure(governor, t)
        assert not decision.degraded and not decision.serve_stale

    def test_wall_clock_units_never_degrade_a_lightly_loaded_server(self):
        """The server's default configuration: SLO and p95 in *seconds*,
        service rate in requests/second.  The model's latency prediction
        must live in the same unit, or the SLO is infeasible for every
        pool size, prediction error explodes and the governor parks
        itself in degraded mode on an otherwise healthy server."""
        governor = ServeGovernor(slo_p95=0.25, min_workers=1, max_workers=4,
                                 service_rate_guess=200.0, epsilon=0.0,
                                 seed=0)
        decision = None
        for t in range(40):
            decision = governor.tick(float(t), stats(
                queue=0.0, arrival=20.0, p95=0.004, util=0.1,
                pool=float(governor.pool_target), completions=20.0))
        assert not decision.degraded and not decision.serve_stale
        assert governor.monitor.last_confidence > governor.monitor.threshold
        # The SLO constraint is satisfiable: a single worker's predicted
        # sojourn at this load sits well inside a 250 ms budget.
        predicted = governor.model.predict(
            {"arrival_rate": 20.0, "queue_depth": 0.0}, 1)
        assert predicted["latency"] < 0.25


class TestSelfModel:
    def test_service_rate_is_learned_only_from_saturated_ticks(self):
        model = ServeSelfModel(service_rate_guess=4.0, slo_p95=SLO)
        model.observe(arrival_rate=5.0, utilisation=0.2,
                      completion_rate=100.0, pool_size=2.0)
        assert model.service_estimate == 4.0  # idle ticks teach nothing
        model.observe(arrival_rate=5.0, utilisation=1.0,
                      completion_rate=12.0, pool_size=2.0)
        assert model.service_estimate > 4.0  # 6/worker observed, moves up

    def test_latency_prediction_is_monotone_in_pool_size(self):
        model = ServeSelfModel(service_rate_guess=4.0, slo_p95=SLO)
        context = {"arrival_rate": 10.0, "queue_depth": 20.0}
        latencies = [model.predict(context, n)["latency"]
                     for n in (1, 2, 4, 8)]
        assert latencies == sorted(latencies, reverse=True)

    def test_confidence_needs_maturity_and_accuracy(self):
        model = ServeSelfModel(service_rate_guess=4.0, slo_p95=SLO,
                               warmup_observations=4)
        assert model.confidence({}, 1) == 0.0  # no observations yet
        for _ in range(4):
            model.observe(arrival_rate=4.0, utilisation=1.0,
                          completion_rate=4.0, pool_size=1.0)
        mature = model.confidence({}, 1)
        assert mature == pytest.approx(1.0)
        context = {"arrival_rate": 4.0, "queue_depth": 0.0}
        for _ in range(10):  # wildly wrong outcomes erode confidence
            model.update(context, 1, {"goodput": 400.0, "latency": SLO * 50})
        assert model.confidence(context, 1) < 0.5 * mature


class TestExplainAndStatic:
    def test_explain_reports_governor_state(self):
        governor = make_governor()
        governor.tick(0.0, stats(arrival=4.0, pool=1.0, completions=4.0))
        text = governor.explain()
        assert "Governor state" in text
        assert "pool target" in text
        assert "service rate" in text

    def test_static_governor_never_moves(self):
        static = StaticGovernor(pool_size=3, service_rate_guess=4.0,
                                slo_p95=SLO)
        first = static.tick(0.0, stats(arrival=100.0, queue=500.0,
                                       p95=SLO * 10))
        second = static.tick(99.0, stats())
        assert first == second
        assert isinstance(first, GovernorDecision)
        assert first.pool_target == 3
        assert not static.degraded
        assert "design time" in static.explain()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_governor(min_workers=5, max_workers=2)
        with pytest.raises(ValueError):
            make_governor(admit_headroom=0.5)
        with pytest.raises(ValueError):
            StaticGovernor(pool_size=0)
