"""Consistent-hash ring: stability, spread, membership change."""

import pytest

from repro.serve.ring import HashRing, stable_hash


class TestStableHash:
    def test_process_independent_values_pinned(self):
        # blake2b, not salted hash(): these values must never change, or
        # every deployed placement decision silently moves.
        assert stable_hash("n0#0") == stable_hash("n0#0")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 2 ** 64


class TestOwnership:
    def test_owner_is_deterministic_and_membership_order_free(self):
        a = HashRing(["n0", "n1", "n2"])
        b = HashRing(["n2", "n0", "n1"])
        keys = [f"s{i:04d}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_empty_ring_refuses(self):
        with pytest.raises(ValueError, match="no nodes"):
            HashRing().owner("x")

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = HashRing(["n0"])
        with pytest.raises(ValueError, match="already"):
            ring.add_node("n0")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove_node("n7")

    def test_preference_lists_distinct_nodes_owner_first(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        for key in ("sess000", "sess007", "weird-key"):
            pref = ring.preference(key, n=3)
            assert pref[0] == ring.owner(key)
            assert len(pref) == len(set(pref)) == 3


class TestSpreadAndStability:
    def test_virtual_nodes_keep_the_split_reasonable(self):
        ring = HashRing([f"n{i}" for i in range(4)], replicas=64)
        keys = [f"sess{i:05d}" for i in range(2000)]
        counts = ring.spread(keys)
        mean = len(keys) / 4
        assert max(counts.values()) <= 1.5 * mean
        assert min(counts.values()) >= 0.5 * mean

    def test_membership_change_moves_only_a_slice(self):
        ring = HashRing([f"n{i}" for i in range(4)])
        keys = [f"sess{i:05d}" for i in range(1000)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("n4")
        moved = sum(1 for k in keys if ring.owner(k) != before[k])
        # The classic consistent-hash guarantee: ~1/N keys move, never
        # a wholesale reshuffle.
        assert moved <= 0.4 * len(keys)
        # Keys that moved all moved TO the new node.
        assert all(ring.owner(k) == "n4"
                   for k in keys if ring.owner(k) != before[k])

    def test_version_bumps_on_membership_change_only(self):
        ring = HashRing(["n0", "n1"])
        v = ring.version
        ring.owner("a")
        ring.spread(["a", "b"])
        assert ring.version == v
        ring.add_node("n2")
        assert ring.version == v + 1
        ring.remove_node("n2")
        assert ring.version == v + 2

    def test_describe_is_json_safe(self):
        import json
        ring = HashRing(["n0", "n1"])
        assert json.loads(json.dumps(ring.describe())) == {
            "nodes": ["n0", "n1"], "replicas": 64, "version": ring.version}
