"""Tests for the elastic service cluster."""

import pytest

from repro.cloud.cluster import ServiceCluster


class TestScaling:
    def test_boot_delay_defers_capacity(self):
        cluster = ServiceCluster(capacity_per_server=10.0, boot_delay=3,
                                 initial_servers=1)
        cluster.request_scale(5)
        assert cluster.n_active == 1
        assert cluster.n_booting == 4
        for t in range(3):
            cluster.step(float(t), demand=0.0)
        assert cluster.n_active == 5
        assert cluster.n_booting == 0

    def test_zero_boot_delay_is_immediate_next_step(self):
        cluster = ServiceCluster(boot_delay=0, initial_servers=1)
        cluster.request_scale(3)
        cluster.step(0.0, 0.0)
        assert cluster.n_active == 3

    def test_scale_down_removes_booting_first(self):
        cluster = ServiceCluster(boot_delay=5, initial_servers=2)
        cluster.request_scale(6)  # 4 booting
        cluster.request_scale(4)  # remove 2 booting
        assert cluster.n_active == 2 and cluster.n_booting == 2
        cluster.request_scale(1)  # remove 2 booting + 1 active
        assert cluster.n_active == 1 and cluster.n_booting == 0

    def test_bounds_clamped(self):
        cluster = ServiceCluster(min_servers=2, max_servers=6, initial_servers=3)
        assert cluster.request_scale(100) == 6
        assert cluster.request_scale(0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceCluster(capacity_per_server=0.0)
        with pytest.raises(ValueError):
            ServiceCluster(min_servers=5, max_servers=3)
        with pytest.raises(ValueError):
            ServiceCluster(initial_servers=100, max_servers=10)


class TestServing:
    def test_underload_full_qos(self):
        cluster = ServiceCluster(capacity_per_server=10.0, initial_servers=2)
        m = cluster.step(0.0, demand=15.0)
        assert m.served == 15.0
        assert m.qos == 1.0
        assert m.backlog == 0.0
        assert m.utilisation == pytest.approx(0.75)

    def test_overload_builds_backlog(self):
        cluster = ServiceCluster(capacity_per_server=10.0, initial_servers=1)
        m = cluster.step(0.0, demand=25.0)
        assert m.served == 10.0
        assert m.backlog == 15.0
        assert m.qos == pytest.approx(0.4)

    def test_backlog_drains_when_capacity_returns(self):
        cluster = ServiceCluster(capacity_per_server=10.0, initial_servers=1,
                                 boot_delay=0)
        cluster.step(0.0, demand=30.0)  # backlog 20
        cluster.request_scale(4)
        m = cluster.step(1.0, demand=10.0)
        assert m.served == 30.0
        assert m.backlog == 0.0

    def test_backlog_limit_drops_overflow(self):
        cluster = ServiceCluster(capacity_per_server=10.0, initial_servers=1,
                                 backlog_limit=5.0)
        m = cluster.step(0.0, demand=100.0)
        assert m.backlog == 5.0
        assert m.dropped == pytest.approx(85.0)
        assert cluster.total_dropped == pytest.approx(85.0)

    def test_cost_includes_booting_servers(self):
        cluster = ServiceCluster(initial_servers=2, boot_delay=10,
                                 cost_per_server=1.0)
        cluster.request_scale(5)
        m = cluster.step(0.0, demand=0.0)
        assert m.cost == pytest.approx(5.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ServiceCluster().step(0.0, demand=-1.0)

    def test_metrics_as_dict_complete(self):
        m = ServiceCluster().step(0.0, 5.0)
        d = m.as_dict()
        assert {"qos", "cost", "demand", "served", "backlog"} <= set(d)
