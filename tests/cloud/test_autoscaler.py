"""Tests for the autoscaler family."""

import math

import pytest

from repro.cloud.autoscaler import (OracleScaler, ReactiveScaler,
                                    SelfAwareScaler, StaticScaler,
                                    make_cloud_goal, run_autoscaling)
from repro.cloud.cluster import ClusterMetrics


def metrics_with(utilisation=0.5, demand=50.0, backlog=0.0, n_active=5,
                 served=None):
    served = served if served is not None else demand
    return ClusterMetrics(time=0.0, demand=demand, served=served, dropped=0.0,
                          backlog=backlog, n_active=n_active, n_booting=0,
                          utilisation=utilisation, qos=1.0, cost=float(n_active))


class TestStaticScaler:
    def test_constant(self):
        s = StaticScaler(7)
        assert s.decide(0.0, None) == 7
        assert s.decide(5.0, metrics_with()) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticScaler(0)


class TestReactiveScaler:
    def test_scales_up_on_high_utilisation(self):
        s = ReactiveScaler(high=0.8, low=0.3, step=2, cooldown=0, initial=4)
        assert s.decide(0.0, metrics_with(utilisation=0.95)) == 6

    def test_scales_down_on_low_utilisation(self):
        s = ReactiveScaler(high=0.8, low=0.3, step=2, cooldown=0, initial=4)
        assert s.decide(0.0, metrics_with(utilisation=0.1)) == 2

    def test_holds_in_band(self):
        s = ReactiveScaler(high=0.8, low=0.3, step=2, cooldown=0, initial=4)
        assert s.decide(0.0, metrics_with(utilisation=0.5)) == 4

    def test_cooldown_blocks_consecutive_actions(self):
        s = ReactiveScaler(high=0.8, low=0.3, step=2, cooldown=5, initial=4)
        s.decide(0.0, metrics_with(utilisation=0.95))
        # Within the cooldown the target is frozen.
        assert s.decide(1.0, metrics_with(utilisation=0.95)) == \
            s.decide(2.0, metrics_with(utilisation=0.95))

    def test_backlog_triggers_scale_up(self):
        s = ReactiveScaler(cooldown=0, initial=4, step=2)
        assert s.decide(0.0, metrics_with(utilisation=0.5, backlog=10.0)) == 6

    def test_never_below_one(self):
        s = ReactiveScaler(cooldown=0, initial=1, step=5)
        assert s.decide(0.0, metrics_with(utilisation=0.0)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveScaler(high=0.3, low=0.8)


class TestSelfAwareScaler:
    def test_scales_with_demand_level(self):
        goal = make_cloud_goal()
        s = SelfAwareScaler(goal, boot_delay=0, capacity_guess=10.0)
        for _ in range(20):
            n_low = s.decide(0.0, metrics_with(demand=20.0))
        s2 = SelfAwareScaler(goal, boot_delay=0, capacity_guess=10.0)
        for _ in range(20):
            n_high = s2.decide(0.0, metrics_with(demand=200.0))
        assert n_high > n_low

    def test_goal_reweighting_shifts_choice_immediately(self):
        goal = make_cloud_goal(qos_weight=0.9, cost_weight=0.1)
        s = SelfAwareScaler(goal, boot_delay=0, capacity_guess=10.0)
        for _ in range(10):
            n_qos_heavy = s.decide(0.0, metrics_with(demand=100.0))
        goal.set_weights({"qos": 0.1, "cost": 0.9})
        n_cost_heavy = s.decide(1.0, metrics_with(demand=100.0))
        assert n_cost_heavy < n_qos_heavy

    def test_learns_true_capacity_from_saturated_steps(self):
        goal = make_cloud_goal()
        s = SelfAwareScaler(goal, boot_delay=0, capacity_guess=10.0)
        # Saturated telemetry reveals true capacity of 5 per server.
        for _ in range(30):
            s.decide(0.0, metrics_with(demand=100.0, served=25.0, n_active=5,
                                       utilisation=1.0))
        assert s.capacity_estimate == pytest.approx(5.0, abs=0.5)

    def test_unsaturated_steps_do_not_mislead_capacity(self):
        goal = make_cloud_goal()
        s = SelfAwareScaler(goal, boot_delay=0, capacity_guess=10.0)
        for _ in range(30):
            s.decide(0.0, metrics_with(demand=10.0, served=10.0, n_active=5,
                                       utilisation=0.2))
        assert s.capacity_estimate == pytest.approx(10.0)

    def test_handles_no_telemetry(self):
        goal = make_cloud_goal()
        s = SelfAwareScaler(goal, boot_delay=3)
        assert s.decide(0.0, None) >= 1

    def test_validation(self):
        goal = make_cloud_goal()
        with pytest.raises(ValueError):
            SelfAwareScaler(goal, capacity_guess=0.0)
        with pytest.raises(ValueError):
            SelfAwareScaler(goal, headroom=0.5)


class TestEndToEnd:
    def _demand(self, t):
        return 60.0 + 40.0 * math.sin(2 * math.pi * t / 150.0)

    def _run(self, scaler, steps=400):
        goal = make_cloud_goal()
        history = run_autoscaling(
            scaler, self._demand, goal, steps=steps,
            cluster_kwargs=dict(capacity_per_server=10.0, boot_delay=5,
                                max_servers=40))
        utilities = [goal.utility(m.as_dict()) for m in history]
        return sum(utilities) / len(utilities), history

    def test_self_aware_beats_underprovisioned_static(self):
        goal = make_cloud_goal()
        u_static, _ = self._run(StaticScaler(3))
        u_aware, _ = self._run(SelfAwareScaler(goal, boot_delay=5))
        assert u_aware > u_static + 0.2

    def test_self_aware_cheaper_than_overprovisioned_static(self):
        goal = make_cloud_goal()
        _, h_static = self._run(StaticScaler(20))
        _, h_aware = self._run(SelfAwareScaler(goal, boot_delay=5))
        cost_static = sum(m.cost for m in h_static)
        cost_aware = sum(m.cost for m in h_aware)
        assert cost_aware < 0.8 * cost_static

    def test_self_aware_close_to_oracle(self):
        goal = make_cloud_goal()
        u_oracle, _ = self._run(OracleScaler(self._demand, 10.0, 5, goal))
        u_aware, _ = self._run(SelfAwareScaler(goal, boot_delay=5))
        assert u_aware > 0.93 * u_oracle

    def test_history_length(self):
        _, h = self._run(StaticScaler(5), steps=123)
        assert len(h) == 123
