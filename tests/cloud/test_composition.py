"""Tests for volunteer service composition."""

import numpy as np
import pytest

from repro.cloud.composition import (Heartbeat, RandomSelector,
                                     SelfAwareSelector, StaticRankSelector,
                                     StimulusAwareSelector, VolunteerPool,
                                     VolunteerProvider, run_composition)


class TestVolunteerProvider:
    def test_availability_flips_eventually(self):
        p = VolunteerProvider(0, availability_stay=0.5,
                              rng=np.random.default_rng(0))
        states = set()
        for _ in range(50):
            p.step()
            states.add(p.up)
        assert states == {True, False}

    def test_down_provider_never_serves(self):
        p = VolunteerProvider(0, rng=np.random.default_rng(1))
        p.up = False
        assert not any(p.serve() for _ in range(20))

    def test_reliability_drifts_within_bounds(self):
        p = VolunteerProvider(0, reliability=0.5, reliability_sigma=0.1,
                              rng=np.random.default_rng(2))
        for _ in range(500):
            p.step()
            assert 0.05 <= p.reliability <= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            VolunteerProvider(0, availability_stay=1.0)
        with pytest.raises(ValueError):
            VolunteerProvider(0, reliability=1.5)


class TestVolunteerPool:
    def test_heartbeats_are_stale(self):
        pool = VolunteerPool(n_providers=4, heartbeat_lag=3,
                             rng=np.random.default_rng(3))
        initial_states = [p.up for p in pool.providers]
        for _ in range(3):
            pool.step()
        beats = pool.heartbeats()
        # After exactly `lag` steps, heartbeats report the initial states.
        assert [b.up for b in beats] == initial_states
        assert all(b.age == 3 for b in beats)

    def test_zero_lag_is_fresh(self):
        pool = VolunteerPool(n_providers=3, heartbeat_lag=0,
                             rng=np.random.default_rng(4))
        pool.step()
        beats = pool.heartbeats()
        assert [b.up for b in beats] == [p.up for p in pool.providers]

    def test_validation(self):
        with pytest.raises(ValueError):
            VolunteerPool(n_providers=1)


class TestSelectors:
    def _beats(self, ups):
        return [Heartbeat(provider_id=i, up=u, age=1) for i, u in enumerate(ups)]

    def test_static_rank_picks_design_time_best(self):
        s = StaticRankSelector([0.5, 0.9, 0.7])
        assert s.select(self._beats([True, True, True])) == 1

    def test_stimulus_prefers_up_providers(self):
        s = StimulusAwareSelector(rng=np.random.default_rng(5))
        choices = {s.select(self._beats([False, True, False]))
                   for _ in range(20)}
        assert choices == {1}

    def test_stimulus_falls_back_when_all_down(self):
        s = StimulusAwareSelector(rng=np.random.default_rng(6))
        choice = s.select(self._beats([False, False, False]))
        assert choice in (0, 1, 2)

    def test_self_aware_learns_reliable_provider(self):
        s = SelfAwareSelector(3, epsilon=0.0, rng=np.random.default_rng(7))
        for _ in range(30):
            s.feedback(2, True)
            s.feedback(0, False)
            s.feedback(1, False)
        assert s.select(self._beats([True, True, True])) == 2

    def test_self_aware_respects_stimulus_gate(self):
        s = SelfAwareSelector(3, epsilon=0.0, rng=np.random.default_rng(8))
        for _ in range(30):
            s.feedback(2, True)
        # Provider 2 is best but reported down: choose among up ones.
        assert s.select(self._beats([True, True, False])) != 2

    def test_self_aware_forgets_with_discount(self):
        s = SelfAwareSelector(2, epsilon=0.0, discount=0.9,
                              rng=np.random.default_rng(9))
        for _ in range(50):
            s.feedback(0, True)
        for _ in range(50):
            s.feedback(0, False)
            s.feedback(1, True)
        assert s.select(self._beats([True, True])) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfAwareSelector(3, epsilon=2.0)
        with pytest.raises(ValueError):
            StaticRankSelector([])


class TestRunComposition:
    def test_awareness_ordering(self):
        def pool(seed):
            return VolunteerPool(n_providers=10, heartbeat_lag=5,
                                 rng=np.random.default_rng(seed))
        rates = {}
        for name, selector in [
            ("random", RandomSelector(np.random.default_rng(0))),
            ("stimulus", StimulusAwareSelector(np.random.default_rng(1))),
            ("self_aware", SelfAwareSelector(10, rng=np.random.default_rng(2))),
        ]:
            total = 0.0
            for seed in range(3):
                total += run_composition(selector, pool(seed), steps=1500).success_rate
            rates[name] = total / 3
        assert rates["self_aware"] > rates["stimulus"] > rates["random"]

    def test_windows_reported(self):
        pool = VolunteerPool(n_providers=5, rng=np.random.default_rng(10))
        res = run_composition(RandomSelector(np.random.default_rng(11)), pool,
                              steps=600, window=200)
        assert len(res.success_by_window) == 3
        assert all(0.0 <= w <= 1.0 for w in res.success_by_window)
