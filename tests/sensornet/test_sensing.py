"""Tests for the energy-budgeted sensing substrate."""


import numpy as np
import pytest

from repro.core.attention import (FullAttention, RandomAttention,
                                  SalienceAttention)
from repro.sensornet.field import ChannelField, ChannelSpec, mixed_channel_specs
from repro.sensornet.node import SensingNode, run_sensing


class TestChannelSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelSpec("x", volatility=-0.1)
        with pytest.raises(ValueError):
            ChannelSpec("x", volatility=0.1, importance=0.0)
        with pytest.raises(ValueError):
            ChannelSpec("x", volatility=0.1, sample_cost=0.0)

    def test_mixed_specs_heterogeneous(self):
        specs = mixed_channel_specs(8, seed=0)
        assert len(specs) == 8
        vols = {s.volatility for s in specs}
        assert len(vols) >= 2  # quiet and volatile bands present
        assert any(s.importance > 1.0 for s in specs)


class TestChannelField:
    def test_truth_evolves(self):
        field = ChannelField(mixed_channel_specs(4, seed=1),
                             rng=np.random.default_rng(1))
        name = field.names()[3]  # the volatile band
        before = field.truth(name)
        for _ in range(50):
            field.step()
        assert field.truth(name) != before

    def test_unique_names_required(self):
        specs = [ChannelSpec("a", 0.01), ChannelSpec("a", 0.02)]
        with pytest.raises(ValueError):
            ChannelField(specs)

    def test_weighted_error_charges_ignorance(self):
        field = ChannelField([ChannelSpec("a", 0.01)],
                             rng=np.random.default_rng(2))
        assert field.weighted_error({}) == pytest.approx(0.5)

    def test_weighted_error_zero_for_perfect_beliefs(self):
        field = ChannelField([ChannelSpec("a", 0.01)],
                             rng=np.random.default_rng(3))
        beliefs = {"a": field.truth("a")}
        assert field.weighted_error(beliefs) == pytest.approx(0.0)

    def test_importance_weights_errors(self):
        field = ChannelField([ChannelSpec("a", 0.01, importance=3.0),
                              ChannelSpec("b", 0.01, importance=1.0)],
                             rng=np.random.default_rng(4))
        only_a = {"a": field.truth("a")}
        only_b = {"b": field.truth("b")}
        # Knowing the important channel reduces error more.
        assert field.weighted_error(only_a) < field.weighted_error(only_b)


class TestSensingNode:
    def _field(self, seed=0):
        return ChannelField(mixed_channel_specs(6, seed=seed),
                            rng=np.random.default_rng(seed))

    def test_budget_respected(self):
        field = self._field()
        node = SensingNode(field, FullAttention(), budget=1.0,
                           rng=np.random.default_rng(10))
        for t in range(20):
            record = node.step(float(t))
            assert record.energy_spent <= 1.0 + 1e-9

    def test_beliefs_populate_over_time(self):
        field = self._field()
        node = SensingNode(field, RandomAttention(np.random.default_rng(0)),
                           budget=2.0, rng=np.random.default_rng(11))
        for t in range(50):
            node.step(float(t))
        assert len(node.beliefs()) >= 4

    def test_error_decreases_with_budget(self):
        tight = run_sensing(self._field(1), FullAttention(), budget=1.0,
                            steps=300, rng=np.random.default_rng(12))
        loose = run_sensing(self._field(1), FullAttention(), budget=10.0,
                            steps=300, rng=np.random.default_rng(12))
        assert loose.mean_error(skip=20) < tight.mean_error(skip=20)

    def test_salience_relevance_seeded_from_importance(self):
        field = self._field()
        attention = SalienceAttention()
        SensingNode(field, attention, budget=2.0,
                    rng=np.random.default_rng(13))
        assert len(attention.relevance) == len(field.names())

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SensingNode(self._field(), FullAttention(), budget=0.0)


class TestAttentionComparison:
    def test_salience_beats_unaware_truncation(self):
        errs = {}
        for name, make in [("full", FullAttention),
                           ("salience",
                            lambda: SalienceAttention(staleness_scale=1.0))]:
            vals = []
            for seed in range(3):
                field = ChannelField(mixed_channel_specs(8, seed=seed),
                                     rng=np.random.default_rng(seed))
                res = run_sensing(field, make(), budget=2.0, steps=400,
                                  rng=np.random.default_rng(100 + seed))
                vals.append(res.mean_error(skip=50))
            errs[name] = np.mean(vals)
        assert errs["salience"] < 0.5 * errs["full"]

    def test_salience_no_worse_than_random(self):
        errs = {}
        for name, make in [("random",
                            lambda: RandomAttention(np.random.default_rng(7))),
                           ("salience",
                            lambda: SalienceAttention(staleness_scale=1.0))]:
            vals = []
            for seed in range(3):
                field = ChannelField(mixed_channel_specs(8, seed=seed),
                                     rng=np.random.default_rng(seed))
                res = run_sensing(field, make(), budget=4.0, steps=400,
                                  rng=np.random.default_rng(200 + seed))
                vals.append(res.mean_error(skip=50))
            errs[name] = np.mean(vals)
        assert errs["salience"] <= errs["random"] * 1.05
