"""Tests for the transient-event detection mission."""

import math

import numpy as np
import pytest

from repro.core.attention import RoundRobinAttention, SalienceAttention
from repro.core.knowledge import KnowledgeBase
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import public
from repro.sensornet.events import (DeadlineAttention, SpikeChannelSpec,
                                    SpikeField, mixed_spike_specs,
                                    run_detection)


class TestSpikeChannelSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeChannelSpec("x", spike_rate=-0.1)
        with pytest.raises(ValueError):
            SpikeChannelSpec("x", spike_rate=0.1, spike_duration=0)
        with pytest.raises(ValueError):
            SpikeChannelSpec("x", spike_rate=0.1, importance=0.0)

    def test_mixed_specs_have_hot_band(self):
        specs = mixed_spike_specs(8, seed=0)
        assert len(specs) == 8
        assert any(s.importance > 1.0 for s in specs)
        rates = {s.spike_rate for s in specs}
        assert len(rates) >= 2


class TestSpikeField:
    def _single(self, rate=1.0, duration=3, seed=0):
        return SpikeField([SpikeChannelSpec("a", spike_rate=rate,
                                            spike_duration=duration)],
                          rng=np.random.default_rng(seed))

    def test_signal_reflects_active_spike(self):
        field = self._single(rate=100.0)  # a spike starts immediately
        field.step(0.0)
        assert field.signal("a") == 1.0

    def test_signal_zero_without_spikes(self):
        field = self._single(rate=0.0)
        for t in range(20):
            field.step(float(t))
            assert field.signal("a") == 0.0

    def test_spike_expires_after_duration(self):
        field = SpikeField([SpikeChannelSpec("a", spike_rate=0.0,
                                             spike_duration=3)],
                           rng=np.random.default_rng(1))
        field._spikes["a"].append(
            __import__("repro.sensornet.events",
                       fromlist=["_Spike"])._Spike(start=0.0, end=3.0))
        field.step(1.0)
        assert field.signal("a") == 1.0
        field.step(3.0)
        assert field.signal("a") == 0.0

    def test_detection_requires_sampling_in_window(self):
        field = self._single(rate=0.0, duration=3)
        from repro.sensornet.events import _Spike
        field._spikes["a"].append(_Spike(start=0.0, end=3.0))
        field.step(1.0)
        field.mark_sampled("a")
        field.step(10.0)  # close the window
        stats = field.detection_stats()
        assert stats["events"] == 1.0
        assert stats["detection_rate"] == 1.0

    def test_missed_spike_counts_against(self):
        field = self._single(rate=0.0, duration=3)
        from repro.sensornet.events import _Spike
        field._spikes["a"].append(_Spike(start=0.0, end=3.0))
        field.step(10.0)
        assert field.detection_stats()["detection_rate"] == 0.0

    def test_open_spikes_not_scored(self):
        field = self._single(rate=0.0, duration=100)
        from repro.sensornet.events import _Spike
        field._spikes["a"].append(_Spike(start=0.0, end=100.0))
        field.step(1.0)
        assert math.isnan(field.detection_stats()["detection_rate"])


class TestDeadlineAttention:
    def _suite(self):
        return SensorSuite([Sensor(public("a"), lambda: 0.0, cost=1.0),
                            Sensor(public("b"), lambda: 0.0, cost=1.0)])

    def test_prefers_high_rate_channel(self):
        policy = DeadlineAttention(windows={public("a"): 4.0,
                                            public("b"): 4.0})
        for _ in range(200):
            policy.observe(public("a"), True)
            policy.observe(public("b"), False)
        kb = KnowledgeBase()
        # Equal staleness: both unobserved.
        chosen = policy.select(self._suite(), kb, now=10.0, budget=1.0)
        assert chosen == [public("a")]

    def test_staleness_saturates_at_window(self):
        policy = DeadlineAttention(windows={public("a"): 4.0,
                                            public("b"): 4.0})
        kb = KnowledgeBase()
        kb.observe(public("a"), 0.0, 0.0)
        kb.observe(public("b"), 90.0, 0.0)
        # Both are older than the window: equal value; order falls back
        # to sort stability rather than runaway staleness.
        suite = self._suite()
        chosen = policy.select(suite, kb, now=100.0, budget=2.0)
        assert set(chosen) == {public("a"), public("b")}

    def test_rate_learning_moves_estimate(self):
        policy = DeadlineAttention(windows={}, novelty_rate=0.5,
                                   rate_alpha=0.5)
        policy.observe(public("a"), True)
        assert policy._rates[public("a")] > 0.5
        policy.observe(public("a"), False)
        policy.observe(public("a"), False)
        assert policy._rates[public("a")] < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineAttention(windows={}, rate_alpha=0.0)


class TestRunDetection:
    def test_detection_improves_with_budget(self):
        rates = []
        for budget in (1.0, 6.0):
            field = SpikeField(mixed_spike_specs(8, seed=3),
                               rng=np.random.default_rng(3))
            stats = run_detection(field, RoundRobinAttention(), budget,
                                  steps=800, rng=np.random.default_rng(4))
            rates.append(stats["detection_rate"])
        assert rates[1] > rates[0]

    def test_deadline_beats_tracking_salience_at_moderate_budget(self):
        scores = {}
        for name in ("salience", "deadline"):
            vals = []
            for seed in range(3):
                specs = mixed_spike_specs(8, seed=seed)
                field = SpikeField(specs, rng=np.random.default_rng(seed))
                if name == "deadline":
                    policy = DeadlineAttention(
                        windows={public(s.name): float(s.spike_duration)
                                 for s in specs},
                        importance={public(s.name): s.importance
                                    for s in specs})
                else:
                    policy = SalienceAttention(staleness_scale=1.0)
                stats = run_detection(field, policy, budget=2.0, steps=1200,
                                      rng=np.random.default_rng(100 + seed))
                vals.append(stats["weighted_detection_rate"])
            scores[name] = float(np.mean(vals))
        assert scores["deadline"] > scores["salience"] + 0.08

    def test_invalid_budget(self):
        field = SpikeField(mixed_spike_specs(4, seed=0),
                           rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_detection(field, RoundRobinAttention(), budget=0.0)
