"""The column-resolved sensing step against the scalar reference.

Byte-identity means *all* visible state: the step records, the node's
beliefs and knowledge-base histories, every sensor's sample counter and
RNG stream position, and the field generator's state.  The fast step is
taken only for a plain :class:`SalienceAttention`; other policies (and
salience subclasses) must fall back to the naive step and still benefit
from the batched field without a single float moving.
"""

import numpy as np
import pytest

from repro.core.attention import (FullAttention, RandomAttention,
                                  RoundRobinAttention, SalienceAttention)
from repro.sensornet.field import ChannelField, mixed_channel_specs
from repro.sensornet.node import SensingNode


def _policy(name, seed):
    return {
        "salience": lambda: SalienceAttention(staleness_scale=1.0),
        "full": lambda: FullAttention(),
        "rr": lambda: RoundRobinAttention(),
        "random": lambda: RandomAttention(
            rng=np.random.default_rng(seed + 500)),
    }[name]()


def _run(name, fast, n_channels=8, seed=5, budget=3.0, steps=200):
    field = ChannelField(mixed_channel_specs(n_channels, seed=seed),
                         rng=np.random.default_rng(seed), fast=fast)
    node = SensingNode(field, _policy(name, seed), budget=budget,
                       rng=np.random.default_rng(seed + 10), fast=fast)
    records = [node.step(float(t)) for t in range(steps)]
    return field, node, records


def _visible_state(field, node, records):
    return (
        [(r.time, r.error, r.energy_spent, r.channels_sampled)
         for r in records],
        node.beliefs(),
        node.total_energy,
        {s.scope.name: (s.samples_taken, s._rng.bit_generator.state)
         for s in (node.suite.sensor(sc) for sc in node.suite.scopes())},
        field._rng.bit_generator.state,
        {name: field.truth(name) for name in field.names()},
    )


class TestSensingStepEquivalence:
    @pytest.mark.parametrize("shape", [(8, 5, 3.0), (8, 0, 3.0),
                                       (64, 3, 24.0), (5, 11, 2.0)])
    def test_salience_fast_matches_naive(self, shape):
        n_channels, seed, budget = shape
        fast = _visible_state(*_run("salience", True, n_channels=n_channels,
                                    seed=seed, budget=budget))
        naive = _visible_state(*_run("salience", False,
                                     n_channels=n_channels, seed=seed,
                                     budget=budget))
        assert fast == naive

    @pytest.mark.parametrize("name", ["full", "rr", "random"])
    def test_other_policies_fall_back_and_still_match(self, name):
        fast_field, fast_node, fast_records = _run(name, True)
        assert not fast_node._fast  # columns model salience only
        fast = _visible_state(fast_field, fast_node, fast_records)
        naive = _visible_state(*_run(name, False))
        assert fast == naive

    def test_salience_subclass_keeps_the_naive_path(self):
        class Tweaked(SalienceAttention):
            def salience(self, scope, knowledge, t):
                return 1.0

        field = ChannelField(mixed_channel_specs(4, seed=1),
                             rng=np.random.default_rng(1))
        node = SensingNode(field, Tweaked(), budget=2.0,
                           rng=np.random.default_rng(2), fast=True)
        assert not node._fast


class TestBatchedFieldEquivalence:
    @pytest.mark.parametrize("n_channels", [1, 8, 64])
    def test_walk_values_and_rng_state_match(self, n_channels):
        fast = ChannelField(mixed_channel_specs(n_channels, seed=3),
                            rng=np.random.default_rng(3), fast=True)
        naive = ChannelField(mixed_channel_specs(n_channels, seed=3),
                             rng=np.random.default_rng(3), fast=False)
        for _ in range(300):
            fast.step()
            naive.step()
        assert [fast.truth(n) for n in fast.names()] \
            == [naive.truth(n) for n in naive.names()]
        assert fast._rng.bit_generator.state == naive._rng.bit_generator.state

    def test_retarget_stays_visible_to_the_batch(self):
        """Parameter columns are re-read per call, so run-time changes
        to a walk's dynamics take effect immediately."""
        fast = ChannelField(mixed_channel_specs(4, seed=9),
                            rng=np.random.default_rng(9), fast=True)
        naive = ChannelField(mixed_channel_specs(4, seed=9),
                             rng=np.random.default_rng(9), fast=False)
        for f in (fast, naive):
            f.step()
            walk = f._signals[f.names()[2]]
            walk.sigma = 0.5
            walk.mean = 0.9
            f.step()
            f.step()
        assert [fast.truth(n) for n in fast.names()] \
            == [naive.truth(n) for n in naive.names()]
