"""Tests for environment processes."""

import numpy as np
import pytest

from repro.envgen.processes import (BoundedRandomWalk, MarkovModulatedProcess,
                                    RegimeSequence, SeasonalProcess, Shock,
                                    ShockSchedule)


class TestBoundedRandomWalk:
    def test_stays_in_bounds(self):
        walk = BoundedRandomWalk(sigma=0.5, lo=0.0, hi=1.0,
                                 rng=np.random.default_rng(0))
        values = [walk.step() for _ in range(1000)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_mean_reversion(self):
        walk = BoundedRandomWalk(mean=0.5, reversion=0.3, sigma=0.02,
                                 start=0.99, rng=np.random.default_rng(1))
        for _ in range(200):
            walk.step()
        assert abs(walk.current - 0.5) < 0.2

    def test_retarget_moves_attractor(self):
        walk = BoundedRandomWalk(mean=0.2, reversion=0.3, sigma=0.01,
                                 rng=np.random.default_rng(2))
        for _ in range(100):
            walk.step()
        walk.retarget(0.8)
        for _ in range(200):
            walk.step()
        assert walk.current > 0.6

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoundedRandomWalk(lo=1.0, hi=0.0)


class TestSeasonalProcess:
    def test_period_repeats(self):
        p = SeasonalProcess(base=1.0, amplitude=0.5, period=50.0, noise_std=0.0)
        assert p.value(10.0) == pytest.approx(p.value(60.0))

    def test_amplitude_bounds_cleanly(self):
        p = SeasonalProcess(base=1.0, amplitude=0.5, period=50.0, noise_std=0.0)
        values = [p.value(t) for t in np.linspace(0, 50, 200)]
        assert max(values) == pytest.approx(1.5, abs=0.01)
        assert min(values) == pytest.approx(0.5, abs=0.01)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SeasonalProcess(period=0.0)


class TestShockSchedule:
    def test_shock_window(self):
        s = Shock(start=10.0, duration=5.0, magnitude=2.0)
        assert not s.active(9.9)
        assert s.active(10.0)
        assert s.active(14.9)
        assert not s.active(15.0)

    def test_offset_sums_overlapping(self):
        sched = ShockSchedule([Shock(0.0, 10.0, 1.0), Shock(5.0, 10.0, 2.0)])
        assert sched.offset(7.0) == pytest.approx(3.0)
        assert sched.offset(12.0) == pytest.approx(2.0)
        assert sched.offset(20.0) == 0.0

    def test_random_schedule_alternates_sign(self):
        sched = ShockSchedule.random(horizon=1000.0, n_shocks=4,
                                     magnitude=0.5,
                                     rng=np.random.default_rng(0))
        mags = [s.magnitude for s in sched.shocks]
        assert mags == [0.5, -0.5, 0.5, -0.5]

    def test_any_active(self):
        sched = ShockSchedule([Shock(10.0, 5.0, 1.0)])
        assert sched.any_active(12.0)
        assert not sched.any_active(2.0)


class TestMarkovModulatedProcess:
    def test_two_state_emits_both_levels(self):
        p = MarkovModulatedProcess.two_state(low=0.0, high=1.0, stay=0.8,
                                             rng=np.random.default_rng(0))
        values = {round(p.step(), 6) for _ in range(500)}
        assert values == {0.0, 1.0}

    def test_sticky_chain_dwells(self):
        p = MarkovModulatedProcess.two_state(low=0.0, high=1.0, stay=0.99,
                                             rng=np.random.default_rng(1))
        values = [p.step() for _ in range(1000)]
        switches = sum(1 for a, b in zip(values, values[1:]) if a != b)
        assert switches < 50

    def test_transition_matrix_validated(self):
        with pytest.raises(ValueError):
            MarkovModulatedProcess([0.0, 1.0], [[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovModulatedProcess([0.0, 1.0], [[1.0, 0.0]])

    def test_stationary_distribution_respected(self):
        p = MarkovModulatedProcess(
            levels=[0.0, 1.0],
            transition=[[0.9, 0.1], [0.3, 0.7]],
            rng=np.random.default_rng(2))
        values = [p.step() for _ in range(20000)]
        # Stationary P(high) = 0.1 / (0.1 + 0.3) = 0.25.
        assert np.mean(values) == pytest.approx(0.25, abs=0.03)


class TestRegimeSequence:
    def test_piecewise_lookup(self):
        seq = RegimeSequence([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
        assert seq.value(5.0) == 1.0
        assert seq.value(10.0) == 2.0
        assert seq.value(25.0) == 3.0

    def test_before_first_breakpoint_uses_first_value(self):
        seq = RegimeSequence([(10.0, 5.0)])
        assert seq.value(0.0) == 5.0

    def test_change_times(self):
        seq = RegimeSequence([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
        assert seq.change_times() == [10.0, 20.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RegimeSequence([])
