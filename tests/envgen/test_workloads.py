"""Tests for workload generators."""

import numpy as np
import pytest

from repro.envgen.processes import Shock, ShockSchedule
from repro.envgen.workloads import (RequestRateWorkload, Task, TaskClass,
                                    TaskStreamWorkload)


class TestRequestRateWorkload:
    def test_rate_nonnegative_under_negative_shock(self):
        shocks = ShockSchedule([Shock(0.0, 100.0, -10.0)])
        wl = RequestRateWorkload(base_rate=50.0, shocks=shocks,
                                 rng=np.random.default_rng(0))
        assert wl.rate(10.0) == 0.0

    def test_shock_raises_rate(self):
        shocks = ShockSchedule([Shock(100.0, 50.0, 1.0)])
        wl = RequestRateWorkload(base_rate=50.0, seasonal_amplitude=0.0,
                                 noise_std=0.0, shocks=shocks,
                                 rng=np.random.default_rng(1))
        assert wl.rate(120.0) == pytest.approx(100.0)
        assert wl.rate(10.0) == pytest.approx(50.0)

    def test_arrivals_scale_with_rate(self):
        wl = RequestRateWorkload(base_rate=100.0, seasonal_amplitude=0.0,
                                 noise_std=0.0, rng=np.random.default_rng(2))
        counts = [wl.arrivals(float(t)) for t in range(500)]
        assert np.mean(counts) == pytest.approx(100.0, rel=0.05)

    def test_invalid_base_rate(self):
        with pytest.raises(ValueError):
            RequestRateWorkload(base_rate=0.0)


class TestTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            Task(0, 0.0, "x", work=0.0)
        with pytest.raises(ValueError):
            Task(0, 0.0, "x", work=1.0, parallelism=0)


class TestTaskStreamWorkload:
    def _stream(self, seed=0, **kwargs):
        classes = [TaskClass("cpu", mean_work=5.0),
                   TaskClass("gpu", mean_work=10.0, parallelism=4)]
        return TaskStreamWorkload(classes, rng=np.random.default_rng(seed),
                                  **kwargs)

    def test_ids_unique_and_monotone(self):
        stream = self._stream()
        tasks = []
        for t in range(50):
            tasks.extend(stream.arrivals(float(t)))
        ids = [task.task_id for task in tasks]
        assert ids == sorted(set(ids))

    def test_arrival_rate_matches(self):
        stream = self._stream(rate=3.0)
        total = sum(len(stream.arrivals(float(t))) for t in range(500))
        assert total / 500 == pytest.approx(3.0, rel=0.1)

    def test_phase_changes_mix(self):
        stream = self._stream(phase_length=100)
        stream.arrivals(0.0)
        mix0 = stream.current_mix
        stream.arrivals(150.0)
        mix1 = stream.current_mix
        assert not np.allclose(mix0, mix1)

    def test_work_is_positive(self):
        stream = self._stream()
        for t in range(100):
            for task in stream.arrivals(float(t)):
                assert task.work > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskStreamWorkload([], rate=1.0)
        with pytest.raises(ValueError):
            self._stream(rate=0.0)
        with pytest.raises(ValueError):
            TaskClass("x", mean_work=0.0)


class TestDriftGenerators:
    def test_drifting_bandit_changes_best_arm(self):
        from repro.envgen.driftgen import DriftingBandit
        bandit = DriftingBandit(n_arms=4, drift_every=100,
                                rng=np.random.default_rng(0))
        arms_over_time = {bandit.best_arm()}
        for _ in range(500):
            bandit.pull(0)
            arms_over_time.add(bandit.best_arm())
        assert bandit.drifts == 5
        assert len(arms_over_time) > 1

    def test_drifting_bandit_gradual_interpolates(self):
        from repro.envgen.driftgen import DriftingBandit
        bandit = DriftingBandit(n_arms=3, drift_every=100, mode="gradual",
                                rng=np.random.default_rng(1))
        m0 = bandit.means()
        for _ in range(50):
            bandit.pull(0)
        m_half = bandit.means()
        assert not np.allclose(m0, m_half)

    def test_drifting_bandit_reward_near_mean(self):
        from repro.envgen.driftgen import DriftingBandit
        bandit = DriftingBandit(n_arms=2, drift_every=10**6, reward_std=0.01,
                                rng=np.random.default_rng(2))
        mean = bandit.means()[0]
        rewards = [bandit.pull(0) for _ in range(100)]
        assert np.mean(rewards) == pytest.approx(mean, abs=0.01)

    def test_drifting_regression_weights_change(self):
        from repro.envgen.driftgen import DriftingRegression
        gen = DriftingRegression(n_features=3, drift_every=50,
                                 rng=np.random.default_rng(3))
        w0 = gen.weights
        for _ in range(60):
            gen.sample()
        assert not np.allclose(w0, gen.weights)
        assert gen.drifts == 1

    def test_drifting_regression_sample_consistent(self):
        from repro.envgen.driftgen import DriftingRegression
        gen = DriftingRegression(n_features=2, drift_every=10**6,
                                 noise_std=0.0, rng=np.random.default_rng(4))
        w = gen.weights
        x, y = gen.sample()
        assert y == pytest.approx(float(w @ x))
