"""Scenario algebra: presets, determinism, composition, registry."""

import numpy as np
import pytest

from repro.envgen.scenario import (SCENARIOS, Concat, Constant,
                                   CorrelatedFailure, Diurnal, FlashCrowd,
                                   FlashMix, HeavyTail, MarkovChurn, Modulate,
                                   Superpose, UniformMix, ZipfMix,
                                   make_scenario)
from repro.faults.plan import CRASH, WORKLOAD_SPIKE


class TestRegistry:
    def test_every_preset_is_registered(self):
        assert set(SCENARIOS) == {"steady", "diurnal", "heavy_tail",
                                  "flash_crowd", "correlated_failure",
                                  "markov_churn"}

    def test_make_scenario_builds_each_preset(self):
        for name in SCENARIOS:
            scenario = make_scenario(name)
            track = scenario.render(50, seed=0)
            assert track.ticks == 50
            assert np.all(track.rates >= 0.0)

    def test_make_scenario_accepts_overrides(self):
        scenario = make_scenario("diurnal", amplitude=0.9, period=40.0)
        assert scenario.amplitude == 0.9
        assert scenario.period == 40.0

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            make_scenario("nope")
        with pytest.raises(ValueError, match="diurnal"):
            make_scenario("nope")


class TestSeedDeterminism:
    """Same spec + seed -> identical rate vectors, for every preset."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_preset_renders_identically(self, name):
        a = make_scenario(name).render(200, seed=7)
        b = make_scenario(name).render(200, seed=7)
        np.testing.assert_array_equal(a.rates, b.rates)

    @pytest.mark.parametrize("name", ("heavy_tail", "markov_churn"))
    def test_stochastic_presets_vary_with_seed(self, name):
        a = make_scenario(name).render(300, seed=0)
        b = make_scenario(name).render(300, seed=1)
        assert not np.array_equal(a.rates, b.rates)

    def test_composition_is_seed_deterministic(self):
        def build():
            return (HeavyTail() + Diurnal()) * MarkovChurn()
        np.testing.assert_array_equal(build().render(150, seed=3).rates,
                                      build().render(150, seed=3).rates)


class TestAlgebra:
    def test_superpose_adds_rates(self):
        track = (Constant(level=2.0) + Constant(level=3.0)).render(10, seed=0)
        np.testing.assert_allclose(track.rates, 5.0)

    def test_modulate_multiplies_rates(self):
        track = (Constant(level=2.0) * Constant(level=3.0)).render(10, seed=0)
        np.testing.assert_allclose(track.rates, 6.0)

    def test_operator_sugar_matches_explicit_combinators(self):
        sugar = (Diurnal() + Constant()) * Constant(level=0.5)
        explicit = Modulate(
            base=Superpose(parts=(Diurnal(), Constant())),
            envelope=Constant(level=0.5))
        np.testing.assert_array_equal(sugar.render(80, seed=1).rates,
                                      explicit.render(80, seed=1).rates)

    def test_then_switches_at_the_breakpoint(self):
        track = Constant(level=1.0).then(Constant(level=9.0),
                                         at=20).render(40, seed=0)
        assert isinstance(Constant().then(Constant(), at=5), Concat)
        np.testing.assert_allclose(track.rates[:20], 1.0)
        np.testing.assert_allclose(track.rates[20:], 9.0)

    def test_rate_at_clamps_to_the_last_tick(self):
        track = Constant(level=4.0).render(10, seed=0)
        assert track.rate_at(9.0) == 4.0
        assert track.rate_at(99.0) == 4.0


class TestPresets:
    def test_diurnal_oscillates_around_base(self):
        track = Diurnal(base=1.0, amplitude=0.5, period=100.0).render(
            200, seed=0)
        assert track.rates.max() > 1.3
        assert track.rates.min() < 0.7

    def test_flash_crowd_window_multiplies_the_rate(self):
        track = FlashCrowd(at=30.0, length=20.0, factor=8.0).render(
            100, seed=0)
        np.testing.assert_allclose(track.rates[:30], 1.0)
        np.testing.assert_allclose(track.rates[30:50], 8.0)
        np.testing.assert_allclose(track.rates[50:], 1.0)

    def test_flash_crowd_defines_a_session_mix(self):
        mix = FlashCrowd(at=10.0, length=5.0, sessions=2).session_mix()
        assert isinstance(mix, FlashMix)
        inside = mix.weights(12.0, 8)
        outside = mix.weights(50.0, 8)
        assert inside[0] > outside[0]

    def test_heavy_tail_bursts_above_base(self):
        track = HeavyTail().render(400, seed=2)
        assert track.rates.max() > 2.0

    def test_markov_churn_occupies_both_regimes(self):
        track = MarkovChurn(low=0.5, high=2.0, stay=0.9).render(500, seed=0)
        assert (np.isclose(track.rates, 0.5).any()
                and np.isclose(track.rates, 2.0).any())

    def test_correlated_failure_arms_a_fault_plan(self):
        scenario = CorrelatedFailure(at=50.0, length=30.0, intensity=0.4)
        track = scenario.render(200, seed=5)
        assert track.plan is not None
        kinds = sorted(spec.kind for spec in track.plan.specs)
        assert kinds == sorted((CRASH, WORKLOAD_SPIKE))
        for spec in track.plan.specs:
            assert spec.start == 50.0 and spec.end == 80.0
            assert spec.intensity == 0.4

    def test_fault_windows_clip_to_the_horizon(self):
        track = CorrelatedFailure(at=50.0, length=100.0).render(80, seed=0)
        assert all(spec.end == 80.0 for spec in track.plan.specs)

    def test_benign_presets_carry_no_plan(self):
        for name in ("steady", "diurnal", "flash_crowd"):
            assert make_scenario(name).render(50, seed=0).plan is None


class TestSessionMixes:
    def test_zipf_mix_matches_the_legacy_cluster_expression(self):
        n, s = 16, 1.6
        legacy = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        legacy = legacy / legacy.sum()
        np.testing.assert_array_equal(ZipfMix(s=s).weights(0.0, n), legacy)

    def test_uniform_mix_is_flat(self):
        np.testing.assert_allclose(UniformMix().weights(3.0, 8), 1.0 / 8)

    def test_mixes_render_alongside_rates(self):
        track = FlashCrowd(at=5.0, length=5.0).render(20, seed=0, sessions=4)
        assert track.mixes is not None
        assert track.mixes.shape == (20, 4)
        np.testing.assert_allclose(track.mixes.sum(axis=1), 1.0)
