"""Tests for the heterogeneous platform model."""

import pytest

from repro.envgen.workloads import Task
from repro.multicore.platform import (BIG, DVFS_LEVELS, LITTLE, Core,
                                      CoreType, Platform)


def task(work=10.0, kind="vector", task_id=0):
    return Task(task_id=task_id, arrival=0.0, kind=kind, work=work)


class TestCore:
    def test_executes_at_perf_times_freq(self):
        core = Core(0, BIG)
        core.set_frequency(1.0)
        core.assign(task(work=100.0))
        work, done = core.step()
        assert work == pytest.approx(BIG.perf)
        assert done is None

    def test_affinity_scales_rate(self):
        core = Core(0, BIG)
        core.set_frequency(1.0)
        core.assign(task(work=100.0), speedup=0.5)
        work, _ = core.step()
        assert work == pytest.approx(BIG.perf * 0.5)

    def test_completion_returns_task(self):
        core = Core(0, BIG)
        core.set_frequency(1.0)
        t = task(work=BIG.perf * 0.5)
        core.assign(t)
        work, done = core.step()
        assert done is t
        assert core.idle
        assert core.completed_tasks == 1

    def test_cannot_double_assign(self):
        core = Core(0, BIG)
        core.assign(task())
        with pytest.raises(RuntimeError):
            core.assign(task(task_id=1))

    def test_invalid_frequency_rejected(self):
        core = Core(0, BIG)
        with pytest.raises(ValueError):
            core.set_frequency(0.9)

    def test_busy_power_exceeds_idle_power(self):
        busy = Core(0, BIG)
        busy.set_frequency(1.0)
        busy.assign(task())
        idle = Core(1, BIG)
        idle.set_frequency(1.0)
        assert busy.power() > idle.power()

    def test_power_scales_cubically_with_frequency(self):
        low, high = Core(0, BIG), Core(1, BIG)
        low.set_frequency(0.5)
        high.set_frequency(1.0)
        low.assign(task())
        high.assign(task())
        dynamic_low = low.power() - BIG.p_static
        dynamic_high = high.power() - BIG.p_static
        assert dynamic_high / dynamic_low == pytest.approx(8.0)

    def test_temperature_approaches_steady_state(self):
        # LITTLE stays below critical, so no throttling interferes.
        core = Core(0, LITTLE, ambient=40.0, thermal_alpha=0.5)
        core.set_frequency(1.0)
        core.assign(task(work=1e9))
        for _ in range(200):
            core.step()
        steady = 40.0 + LITTLE.thermal_resistance * core.power()
        assert core.temperature == pytest.approx(steady, abs=1.0)

    def test_idle_core_cools_to_near_ambient(self):
        core = Core(0, LITTLE, ambient=40.0, thermal_alpha=0.5)
        for _ in range(100):
            core.step()
        assert core.temperature < 50.0

    def test_throttling_engages_and_releases_with_hysteresis(self):
        core = Core(0, BIG, ambient=40.0, thermal_alpha=0.9,
                    critical_temp=85.0)
        core.set_frequency(1.0)
        core.assign(task(work=1e9))
        # Drive to critical; capture the first throttled step (the core
        # duty-cycles afterwards, so sample at the moment it engages).
        engaged = False
        for _ in range(100):
            core.step()
            if core.throttled:
                engaged = True
                assert core.effective_frequency() == min(DVFS_LEVELS)
                break
        assert engaged
        assert core.throttle_events >= 1
        # Unload the core: idling cools it; hysteresis releases below 80.
        core.task = None
        for _ in range(200):
            core.step()
        assert not core.throttled

    def test_big_at_max_is_thermally_unsustainable(self):
        # The documented design point: big@1.0 steady state exceeds 85C.
        steady = 40.0 + BIG.thermal_resistance * (BIG.p_static + BIG.p_dynamic)
        assert steady > 85.0
        # ... but big@0.75 is safe.
        power_mid = BIG.p_static + BIG.p_dynamic * 0.75 ** 3
        assert 40.0 + BIG.thermal_resistance * power_mid < 85.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreType(name="x", perf=0.0, p_static=0.1, p_dynamic=0.1)
        with pytest.raises(ValueError):
            Core(0, BIG, thermal_alpha=0.0)
        with pytest.raises(ValueError):
            Core(0, BIG).assign(task(), speedup=0.0)


class TestPlatform:
    def test_core_layout(self):
        p = Platform(n_big=2, n_little=3)
        names = [c.core_type.name for c in p.cores]
        assert names == ["big", "big", "little", "little", "little"]

    def test_speedup_lookup(self):
        p = Platform(affinity={"vector": {"big": 1.2, "little": 0.4}})
        assert p.speedup("vector", BIG) == 1.2
        assert p.speedup("vector", LITTLE) == 0.4
        assert p.speedup("unknown", BIG) == 1.0

    def test_submit_and_assign(self):
        p = Platform(n_big=1, n_little=0)
        t = task()
        p.submit([t])
        assert len(p.queue) == 1
        p.assign(p.cores[0], t)
        assert not p.queue
        assert not p.cores[0].idle

    def test_step_metrics(self):
        p = Platform(n_big=1, n_little=1)
        for core in p.cores:
            core.set_frequency(1.0)
        t = task(work=100.0)
        p.submit([t])
        p.assign(p.cores[0], t)
        m = p.step(0.0)
        assert m.throughput == pytest.approx(BIG.perf)
        assert m.queue_length == 0
        assert m.energy > 0
        assert m.max_temperature >= 40.0

    def test_execution_trace_flags_completion(self):
        p = Platform(n_big=1, n_little=0)
        p.cores[0].set_frequency(1.0)
        t = task(work=BIG.perf * 1.5)
        p.submit([t])
        p.assign(p.cores[0], t)
        p.step(0.0)
        assert p.last_execution[0][5] is False  # first step: not completed
        p.step(1.0)
        assert p.last_execution[0][5] is True   # second step: completed

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            Platform(n_big=0, n_little=0)
