"""Tests for the governor family."""

import numpy as np
import pytest

from repro.multicore.governor import (OndemandGovernor, SelfAwareGovernor,
                                      StaticGovernor, make_multicore_goal)
from repro.multicore.platform import DVFS_LEVELS
from repro.multicore.sim import make_platform, make_workload, run_governor


class TestStaticGovernor:
    def test_sets_fixed_frequencies(self):
        p = make_platform()
        gov = StaticGovernor(freq_big=1.0, freq_little=0.5)
        gov.manage(0.0, p, None)
        for core in p.cores:
            expected = 1.0 if core.core_type.name == "big" else 0.5
            assert core.frequency == expected

    def test_dispatches_fifo(self):
        p = make_platform(n_big=1, n_little=1)
        from repro.envgen.workloads import Task
        tasks = [Task(i, 0.0, "vector", 10.0) for i in range(3)]
        p.submit(tasks)
        StaticGovernor().manage(0.0, p, None)
        assert len(p.queue) == 1  # two idle cores filled
        assert p.cores[0].task is tasks[0]


class TestOndemandGovernor:
    def test_raises_frequency_under_load(self):
        p = make_platform()
        gov = OndemandGovernor(high=1)
        from repro.envgen.workloads import Task
        p.submit([Task(i, 0.0, "vector", 50.0) for i in range(20)])
        gov.manage(0.0, p, None)
        assert all(c.frequency == max(DVFS_LEVELS) for c in p.cores)

    def test_lowers_frequency_when_idle(self):
        p = make_platform()
        gov = OndemandGovernor()
        for t in range(5):
            gov.manage(float(t), p, None)
        assert all(c.frequency == min(DVFS_LEVELS) for c in p.cores)

    def test_validation(self):
        with pytest.raises(ValueError):
            OndemandGovernor(high=0)


class TestSelfAwareGovernor:
    def test_learns_true_affinity_rates(self):
        gov = SelfAwareGovernor(make_multicore_goal(),
                                rng=np.random.default_rng(0))
        run_governor(gov, steps=300, workload=make_workload(seed=0),
                     platform=make_platform())
        # True rates: vector on big = 8 * 1.2 = 9.6; on little = 3 * 0.4 = 1.2.
        assert gov.learned_rate("vector", "big", 8.0) == pytest.approx(9.6, abs=0.5)
        assert gov.learned_rate("vector", "little", 3.0) == pytest.approx(1.2, abs=0.3)
        assert gov.learned_rate("background", "little", 3.0) == pytest.approx(3.9, abs=0.4)

    def test_capacity_monotone_in_frequency(self):
        gov = SelfAwareGovernor(make_multicore_goal(),
                                rng=np.random.default_rng(0))
        run_governor(gov, steps=100, workload=make_workload(seed=0),
                     platform=make_platform())
        assert gov.capacity((1.0, 1.0)) > gov.capacity((0.5, 0.5))

    def test_rarely_throttles_on_default_workload(self):
        # Exploration may occasionally probe max frequency in a warm
        # moment; sustained throttling must not occur.
        gov = SelfAwareGovernor(make_multicore_goal(),
                                rng=np.random.default_rng(1))
        result = run_governor(gov, steps=600, workload=make_workload(seed=1),
                              platform=make_platform())
        assert result.throttle_fraction() <= 0.01

    def test_beats_static_max_on_goal_utility(self):
        goal = make_multicore_goal()
        aware = run_governor(
            SelfAwareGovernor(make_multicore_goal(),
                              rng=np.random.default_rng(2)),
            steps=800, workload=make_workload(seed=2), platform=make_platform())
        static = run_governor(StaticGovernor(1.0, 1.0), steps=800,
                              workload=make_workload(seed=2),
                              platform=make_platform())
        assert aware.mean_utility(goal) > static.mean_utility(goal)

    def test_energy_weight_shift_lowers_consumption(self):
        goal = make_multicore_goal()
        gov = SelfAwareGovernor(goal, rng=np.random.default_rng(3))
        perf_run = run_governor(gov, steps=400, workload=make_workload(seed=3),
                                platform=make_platform())
        energy_before = perf_run.mean_energy()
        # Stakeholders now value energy heavily; the governor reads the
        # same live goal object.
        goal.set_weights({"throughput": 0.1, "energy": 0.8, "queue": 0.1})
        eco_run = run_governor(gov, steps=400, workload=make_workload(seed=3),
                               platform=make_platform())
        assert eco_run.mean_energy() < energy_before

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfAwareGovernor(make_multicore_goal(), horizon=0)


class TestRunGovernor:
    def test_history_length(self):
        r = run_governor(StaticGovernor(), steps=50,
                         workload=make_workload(seed=0),
                         platform=make_platform())
        assert len(r.history) == 50

    def test_on_step_callback(self):
        seen = []
        run_governor(StaticGovernor(), steps=10,
                     workload=make_workload(seed=0),
                     platform=make_platform(),
                     on_step=lambda t: seen.append(t))
        assert seen == [float(t) for t in range(10)]

    def test_metrics_sane(self):
        r = run_governor(OndemandGovernor(), steps=200,
                         workload=make_workload(seed=4),
                         platform=make_platform())
        goal = make_multicore_goal()
        assert 0.0 <= r.mean_utility(goal) <= 1.0
        assert r.mean_energy() > 0
        assert r.mean_throughput() > 0
