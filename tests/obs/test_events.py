"""Tests for the structured event bus."""

import pytest

from repro.obs.events import (ESCAPE_PREFIX, MAX_CAUSES, Event, EventBus,
                              causal_scope, emit, enabled, get_bus, set_bus,
                              subscribe, unescape_fields, unsubscribe)


class TestEventBus:
    def test_disabled_by_default_and_emit_is_noop(self):
        bus = EventBus()
        assert not bus.enabled
        assert bus.emit("x", a=1) is None
        assert len(bus) == 0

    def test_emit_when_enabled(self):
        bus = EventBus(enabled=True)
        event = bus.emit("decision", action="turbo", utility=0.5)
        assert event is not None
        assert event.name == "decision"
        assert event.get("action") == "turbo"
        assert event.get("missing", 7) == 7
        assert len(bus) == 1

    def test_sequence_numbers_monotonic(self):
        bus = EventBus(enabled=True)
        seqs = [bus.emit("e").seq for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_ring_buffer_retention_and_dropped(self):
        bus = EventBus(maxlen=3, enabled=True)
        for i in range(5):
            bus.emit("e", i=i)
        assert len(bus) == 3
        assert [e.get("i") for e in bus.events()] == [2, 3, 4]
        assert bus.dropped == 2

    def test_events_filter_by_name(self):
        bus = EventBus(enabled=True)
        bus.emit("a", v=1)
        bus.emit("b", v=2)
        bus.emit("a", v=3)
        assert [e.get("v") for e in bus.events("a")] == [1, 3]

    def test_subscribers_receive_events(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")
        assert [e.name for e in seen] == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit("a")
        assert seen == []
        bus.unsubscribe(seen.append)  # absent: no-op

    def test_subscribers_not_called_when_disabled(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.disable()
        bus.emit("a")
        assert seen == []

    def test_clear_keeps_subscribers(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.clear()
        assert len(bus) == 0
        bus.emit("b")
        assert len(seen) == 2

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            EventBus(maxlen=0)

    def test_as_dict_flattens_fields(self):
        event = Event(name="n", seq=3, fields={"x": 1})
        assert event.as_dict() == {"event": "n", "seq": 3, "x": 1}

    def test_as_dict_does_not_clobber_envelope_keys(self):
        # Regression: a caller field literally named "event"/"seq" used
        # to silently overwrite the envelope in the flat dict form.
        event = Event(name="n", seq=3,
                      fields={"event": "sneaky", "seq": 99, "causes": [7]})
        record = event.as_dict()
        assert record["event"] == "n"
        assert record["seq"] == 3
        assert "causes" not in record  # event has no real causes
        assert record[ESCAPE_PREFIX + "event"] == "sneaky"
        assert record[ESCAPE_PREFIX + "seq"] == 99
        assert record[ESCAPE_PREFIX + "causes"] == [7]

    def test_escaping_round_trips_through_unescape(self):
        fields = {"event": "sneaky", "seq": 99,
                  f"{ESCAPE_PREFIX}weird": 1, "plain": 2.0}
        record = Event(name="n", seq=5, fields=dict(fields)).as_dict()
        restored = dict(record)
        assert restored.pop("event") == "n"
        assert restored.pop("seq") == 5
        assert unescape_fields(restored) == fields

    def test_as_dict_includes_causes(self):
        event = Event(name="n", seq=9, fields={}, causes=(2, 5))
        assert event.as_dict() == {"event": "n", "seq": 9, "causes": [2, 5]}


class TestCausalProvenance:
    def test_explicit_causes_stamped_and_normalised(self):
        bus = EventBus(enabled=True)
        a = bus.emit("telemetry")
        b = bus.emit("decision", causes=(a, a.seq, None))
        assert b.causes == (a.seq,)  # events/ints/Nones dedup to seqs

    def test_causes_capped_at_max(self):
        bus = EventBus(enabled=True)
        for _ in range(MAX_CAUSES + 5):
            bus.emit("t")
        big = bus.emit("decision", causes=tuple(range(MAX_CAUSES + 5)))
        assert len(big.causes) == MAX_CAUSES

    def test_causal_scope_stamps_ambient_causes(self):
        bus = EventBus(enabled=True)
        a = bus.emit("telemetry")
        with bus.causal_scope(a):
            inner = bus.emit("decision")
            merged = bus.emit("decision", causes=(a.seq + 100,))
        outside = bus.emit("other")
        assert inner.causes == (a.seq,)
        assert merged.causes == (a.seq + 100, a.seq)
        assert outside.causes == ()

    def test_causal_scopes_nest_innermost_wins(self):
        bus = EventBus(enabled=True)
        a = bus.emit("outer")
        b = bus.emit("inner")
        with bus.causal_scope(a):
            with bus.causal_scope(b):
                assert bus.current_causes() == (b.seq,)
                assert bus.emit("e").causes == (b.seq,)
            assert bus.emit("e").causes == (a.seq,)
        assert bus.current_causes() == ()

    def test_causal_scope_free_when_disabled(self):
        bus = EventBus()
        scope_a = bus.causal_scope(1, 2)
        scope_b = bus.causal_scope()
        assert scope_a is scope_b  # the shared no-op singleton
        with scope_a:
            assert bus.current_causes() == ()

    def test_scope_entered_then_bus_disabled_mid_scope(self):
        bus = EventBus(enabled=True)
        scope = bus.causal_scope(1)
        bus.disable()
        with scope:  # re-checks at entry: nothing pushed
            assert bus.current_causes() == ()

    def test_module_level_causal_scope(self):
        mine = EventBus(enabled=True)
        previous = set_bus(mine)
        try:
            a = emit("t")
            with causal_scope(a):
                assert emit("d").causes == (a.seq,)
        finally:
            set_bus(previous)


class TestModuleLevelBus:
    def test_default_bus_swap_and_restore(self):
        mine = EventBus(enabled=True)
        previous = set_bus(mine)
        try:
            assert get_bus() is mine
            assert enabled()
            emit("hello", x=1)
            assert [e.name for e in mine.events()] == ["hello"]
        finally:
            assert set_bus(previous) is mine
        assert get_bus() is previous

    def test_module_emit_noop_when_disabled(self):
        assert not enabled()
        assert emit("nope") is None

    def test_module_subscribe(self):
        mine = EventBus(enabled=True)
        previous = set_bus(mine)
        try:
            seen = []
            subscribe(seen.append)
            emit("a")
            unsubscribe(seen.append)
            emit("b")
            assert [e.name for e in seen] == ["a"]
        finally:
            set_bus(previous)
