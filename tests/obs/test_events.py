"""Tests for the structured event bus."""

import pytest

from repro.obs.events import (Event, EventBus, emit, enabled, get_bus,
                              set_bus, subscribe, unsubscribe)


class TestEventBus:
    def test_disabled_by_default_and_emit_is_noop(self):
        bus = EventBus()
        assert not bus.enabled
        assert bus.emit("x", a=1) is None
        assert len(bus) == 0

    def test_emit_when_enabled(self):
        bus = EventBus(enabled=True)
        event = bus.emit("decision", action="turbo", utility=0.5)
        assert event is not None
        assert event.name == "decision"
        assert event.get("action") == "turbo"
        assert event.get("missing", 7) == 7
        assert len(bus) == 1

    def test_sequence_numbers_monotonic(self):
        bus = EventBus(enabled=True)
        seqs = [bus.emit("e").seq for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_ring_buffer_retention_and_dropped(self):
        bus = EventBus(maxlen=3, enabled=True)
        for i in range(5):
            bus.emit("e", i=i)
        assert len(bus) == 3
        assert [e.get("i") for e in bus.events()] == [2, 3, 4]
        assert bus.dropped == 2

    def test_events_filter_by_name(self):
        bus = EventBus(enabled=True)
        bus.emit("a", v=1)
        bus.emit("b", v=2)
        bus.emit("a", v=3)
        assert [e.get("v") for e in bus.events("a")] == [1, 3]

    def test_subscribers_receive_events(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.emit("b")
        assert [e.name for e in seen] == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit("a")
        assert seen == []
        bus.unsubscribe(seen.append)  # absent: no-op

    def test_subscribers_not_called_when_disabled(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.disable()
        bus.emit("a")
        assert seen == []

    def test_clear_keeps_subscribers(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        bus.clear()
        assert len(bus) == 0
        bus.emit("b")
        assert len(seen) == 2

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            EventBus(maxlen=0)

    def test_as_dict_flattens_fields(self):
        event = Event(name="n", seq=3, fields={"x": 1})
        assert event.as_dict() == {"event": "n", "seq": 3, "x": 1}


class TestModuleLevelBus:
    def test_default_bus_swap_and_restore(self):
        mine = EventBus(enabled=True)
        previous = set_bus(mine)
        try:
            assert get_bus() is mine
            assert enabled()
            emit("hello", x=1)
            assert [e.name for e in mine.events()] == ["hello"]
        finally:
            assert set_bus(previous) is mine
        assert get_bus() is previous

    def test_module_emit_noop_when_disabled(self):
        assert not enabled()
        assert emit("nope") is None

    def test_module_subscribe(self):
        mine = EventBus(enabled=True)
        previous = set_bus(mine)
        try:
            seen = []
            subscribe(seen.append)
            emit("a")
            unsubscribe(seen.append)
            emit("b")
            assert [e.name for e in seen] == ["a"]
        finally:
            set_bus(previous)
