"""Tests for counters, gauges and P² streaming histograms."""

import math

import numpy as np
import pytest

from repro.obs.metrics import (Counter, Gauge, MetricsRegistry, P2Quantile,
                               StreamingHistogram, metric_key)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.increment()
        c.increment(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_gauge_retains_last_write(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestP2Quantile:
    def test_validates_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_exact_for_small_samples(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            q.observe(x)
        assert q.value == 3.0  # exact median of three

    def test_accuracy_against_numpy(self):
        rng = np.random.default_rng(42)
        data = rng.normal(100.0, 15.0, 20000)
        for p in (0.5, 0.95, 0.99):
            q = P2Quantile(p)
            for x in data:
                q.observe(x)
            exact = float(np.quantile(data, p))
            # P² converges to well under 1% relative error at this size.
            assert abs(q.value - exact) / abs(exact) < 0.01

    def test_accuracy_on_skewed_stream(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(2.0, 20000)
        q = P2Quantile(0.95)
        for x in data:
            q.observe(x)
        exact = float(np.quantile(data, 0.95))
        assert abs(q.value - exact) / exact < 0.05


class TestStreamingHistogram:
    def test_summary_statistics(self):
        h = StreamingHistogram()
        for x in (1.0, 2.0, 3.0, 4.0):
            h.observe(x)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        summary = h.summary()
        assert summary["count"] == 4.0
        assert set(summary) >= {"count", "sum", "mean", "min", "max",
                                "p50", "p95", "p99"}

    def test_deterministic_percentiles(self):
        # 1..1000 in a fixed shuffled order: p50/p95/p99 are known.
        values = list(range(1, 1001))
        rng = np.random.default_rng(0)
        rng.shuffle(values)
        h = StreamingHistogram()
        for v in values:
            h.observe(float(v))
        assert abs(h.quantile(0.5) - 500.5) < 15
        assert abs(h.quantile(0.95) - 950.0) < 15
        assert abs(h.quantile(0.99) - 990.0) < 15

    def test_untracked_quantile_raises(self):
        h = StreamingHistogram(quantiles=(0.5,))
        h.observe(1.0)
        with pytest.raises(KeyError):
            h.quantile(0.25)

    def test_empty_histogram(self):
        h = StreamingHistogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.summary()["min"])

    def test_needs_a_quantile(self):
        with pytest.raises(ValueError):
            StreamingHistogram(quantiles=())


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("steps", {}) == "steps"

    def test_labels_sorted(self):
        assert (metric_key("steps", {"b": 2, "a": 1})
                == "steps{a=1,b=2}")


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c", sim="x") is reg.counter("c", sim="x")
        assert reg.counter("c", sim="x") is not reg.counter("c", sim="y")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("steps", sim="a").increment(3)
        reg.counter("steps", sim="b").increment(4)
        reg.counter("steps").increment(1)
        reg.counter("stepsize").increment(100)  # prefix must not match
        assert reg.total("steps") == 8.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").increment()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").increment()
        reg.clear()
        assert reg.snapshot()["counters"] == {}
