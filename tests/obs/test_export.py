"""Tests for trace export, snapshots, summaries and sessions."""


import pytest

from repro.obs import (TelemetrySession, cli_telemetry, emit, enabled,
                       get_bus, read_trace, render_summary, snapshot)
from repro.obs.events import EventBus
from repro.obs.export import JsonlTraceWriter
from repro.obs.metrics import MetricsRegistry, get_registry


class TestJsonlTraceWriter:
    def test_writes_one_line_per_event(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = JsonlTraceWriter(path)
        bus = EventBus(enabled=True)
        bus.subscribe(writer)
        bus.emit("a", x=1)
        bus.emit("b", y="two")
        writer.close()
        records = read_trace(path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["x"] == 1

    def test_non_json_values_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = JsonlTraceWriter(path)
        writer.write_record({"event": "e", "action": ("tuple", 1),
                             "obj": object()})
        writer.close()
        record = read_trace(path)[0]
        assert "object object" in record["obj"]

    def test_close_appends_metrics_snapshot(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        registry = MetricsRegistry()
        registry.counter("c").increment(5)
        writer = JsonlTraceWriter(path)
        writer.close(registry=registry)
        records = read_trace(path)
        assert records[-1]["event"] == "metrics.snapshot"
        assert records[-1]["metrics"]["counters"]["c"] == 5.0

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlTraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write_record({"event": "late"})
        writer.close()  # second close is a no-op


class TestSnapshotAndSummary:
    def test_snapshot_merges_bus_and_registry(self):
        bus = EventBus(enabled=True)
        bus.emit("e")
        registry = MetricsRegistry()
        registry.counter("c").increment()
        snap = snapshot(bus=bus, registry=registry)
        assert snap["counters"]["c"] == 1.0
        assert snap["events"]["retained"] == 1

    def test_render_summary_lists_everything(self):
        registry = MetricsRegistry()
        registry.counter("my.counter").increment(2)
        registry.gauge("my.gauge").set(7.0)
        registry.histogram("my.hist").observe(1.0)
        text = render_summary(snapshot(bus=EventBus(), registry=registry))
        assert "my.counter: 2" in text
        assert "my.gauge: 7" in text
        assert "my.hist" in text
        assert "p95" in text


class TestTelemetrySession:
    def test_enables_and_restores(self):
        outer_bus, outer_registry = get_bus(), get_registry()
        assert not enabled()
        with TelemetrySession() as session:
            assert enabled()
            assert get_bus() is session.bus
            assert get_registry() is session.registry
            emit("inside", x=1)
        assert not enabled()
        assert get_bus() is outer_bus
        assert get_registry() is outer_registry
        assert [e.name for e in session.bus.events()] == ["inside"]

    def test_trace_file_with_final_snapshot(self, tmp_path):
        path = str(tmp_path / "session.jsonl")
        with TelemetrySession(trace_path=path) as session:
            emit("e", v=1)
            session.registry.counter("c").increment()
        records = read_trace(path)
        assert records[0]["event"] == "e"
        assert records[-1]["event"] == "metrics.snapshot"
        assert records[-1]["metrics"]["counters"]["c"] == 1.0

    def test_reentrant(self, tmp_path):
        path = str(tmp_path / "nested.jsonl")
        session = TelemetrySession(trace_path=path)
        with session:
            emit("outer")
            with session:  # inner enter must not truncate the trace
                emit("inner")
            assert session.active
            assert enabled()
            emit("after-inner")
        assert not session.active
        assert [r["event"] for r in read_trace(path)] == [
            "outer", "inner", "after-inner", "metrics.snapshot"]


class TestCliTelemetry:
    def test_absent_flag_is_nullcontext(self):
        argv = ["prog"]
        ctx = cli_telemetry(argv)
        with ctx:
            assert not enabled()

    def test_flag_with_path(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        argv = ["prog", "--trace", path]
        ctx = cli_telemetry(argv)
        assert argv == ["prog"]  # consumed
        with ctx:
            assert enabled()
            emit("e")
        assert read_trace(path)[0]["event"] == "e"

    def test_flag_without_path_defaults(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["prog", "--trace"]
        ctx = cli_telemetry(argv)
        assert argv == ["prog"]
        with ctx:
            emit("e")
        assert (tmp_path / "trace.jsonl").exists()
