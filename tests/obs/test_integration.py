"""End-to-end observability: the acceptance criteria of the obs subsystem.

A deterministic control-loop run with telemetry enabled must produce a
JSONL trace with per-step phase timings and decision events; counters and
histogram percentiles must be assertable from the run; each of the six
simulators must register at least one domain metric; and the meta level's
switch decisions must be reproducible from the event stream alone.
"""

import math

import numpy as np
import pytest

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, narrate, private,
                        run_control_loop, switches_from_events)
from repro.obs import TelemetrySession, read_trace


class RegimeWorld:
    """Deterministic two-action environment (quickstart's world, seeded)."""

    def __init__(self, seed=7):
        self._rng = np.random.default_rng(seed)
        self.pressure = 0.2

    def candidate_actions(self, now):
        return ["economy", "turbo"]

    def sensed_pressure(self):
        return self.pressure

    def apply(self, action, now):
        self.pressure = float(np.clip(
            self.pressure + self._rng.normal(0.0, 0.02), 0.0, 1.0))
        if action == "turbo":
            perf, cost = 0.9, 0.7
        else:
            perf, cost = 0.9 - 0.8 * self.pressure, 0.2
        return {"perf": perf + float(self._rng.normal(0, 0.02)), "cost": cost}


def run_demo(steps=250, trace_path=None, consume=False):
    world = RegimeWorld(seed=7)
    goal = Goal(objectives=[Objective("perf"),
                            Objective("cost", maximise=False)],
                weights={"perf": 0.7, "cost": 0.3}, name="itest")
    sensors = SensorSuite([
        Sensor(private("pressure"), world.sensed_pressure, noise_std=0.05,
               rng=np.random.default_rng(1)),
    ])
    node = build_node("demo", CapabilityProfile.full_stack(), sensors, goal,
                      rng=np.random.default_rng(0))
    session = TelemetrySession(trace_path=trace_path)
    with session:
        if consume:
            node.log.consume(session.bus)
        trace = run_control_loop(node, world, goal, steps=steps)
    return node, trace, session


class TestControlLoopTelemetry:
    def test_trace_contains_per_step_phase_timings(self, tmp_path):
        path = str(tmp_path / "loop.jsonl")
        _, _, _ = run_demo(steps=50, trace_path=path)
        records = read_trace(path)
        steps = [r for r in records if r["event"] == "node.step"]
        assert len(steps) == 50
        for record in steps:
            for phase in ("sense", "model", "reason", "act"):
                assert record[phase] >= 0.0
        decisions = [r for r in records if r["event"] == "node.decision"]
        assert len(decisions) == 50
        assert all(r["action"] in ("economy", "turbo") for r in decisions)
        # The trace is self-contained: final record is the metric snapshot.
        assert records[-1]["event"] == "metrics.snapshot"

    def test_counters_and_percentiles_from_deterministic_run(self):
        steps = 250
        node, trace, session = run_demo(steps=steps)
        snap = session.snapshot()

        # Counter values are exact.
        assert snap["counters"]["steps{node=demo,sim=core}"] == float(steps)
        assert session.registry.total("steps") == float(steps)

        # The utility histogram summarises exactly the realised utilities.
        hist = snap["histograms"]["loop.utility{node=demo}"]
        utilities = trace.utilities()
        assert hist["count"] == float(steps)
        assert hist["sum"] == pytest.approx(sum(utilities))
        assert hist["min"] == min(utilities)
        assert hist["max"] == max(utilities)
        for p in (0.5, 0.95, 0.99):
            exact = float(np.quantile(utilities, p))
            spread = max(utilities) - min(utilities)
            assert abs(hist[f"p{round(p * 100)}"] - exact) < 0.1 * spread

        # Phase histograms cover every step for every phase.
        for phase in ("sense", "model", "reason", "act", "environment"):
            key = f"phase_seconds{{node=demo,phase={phase}}}"
            assert snap["histograms"][key]["count"] == float(steps)

    def test_disabled_run_emits_nothing(self):
        world = RegimeWorld()
        goal = Goal(objectives=[Objective("perf"),
                                Objective("cost", maximise=False)],
                    weights={"perf": 0.7, "cost": 0.3}, name="off")
        sensors = SensorSuite([
            Sensor(private("pressure"), world.sensed_pressure)])
        node = build_node("off", CapabilityProfile.full_stack(), sensors,
                          goal, rng=np.random.default_rng(0))
        from repro.obs import get_bus, get_registry
        before = len(get_bus())
        run_control_loop(node, world, goal, steps=20)
        assert len(get_bus()) == before
        assert get_registry().total("steps") == 0.0


class TestMetaFromEventStream:
    def test_switches_reproducible_from_events(self, tmp_path):
        path = str(tmp_path / "meta.jsonl")
        node, _, session = run_demo(steps=400, trace_path=path)
        actual = node.reasoner.switches
        assert actual, "expected at least one strategy switch in this run"

        # From the in-memory event stream.
        rebuilt = switches_from_events(session.bus.events())
        assert rebuilt == actual

        # From the JSONL trace alone (no live objects).
        from_trace = switches_from_events(read_trace(path))
        assert from_trace == actual

        # The meta level measured each strategy through the registry.
        hists = session.snapshot()["histograms"]
        observed = sum(
            h["count"] for key, h in hists.items()
            if key.startswith("meta.strategy_utility"))
        assert observed == 400.0
        assert session.snapshot()["counters"]["meta.switches"] == float(
            len(actual))


class TestExplanationReadsTelemetry:
    def test_narration_cites_phase_timings(self):
        node, _, _ = run_demo(steps=30)
        text = node.explain()
        assert "Measured phase timings" in text
        assert "sense" in text and "reason" in text

    def test_consumed_switch_events_are_narrated(self):
        node, _, _ = run_demo(steps=400, consume=True)
        assert node.reasoner.switches
        switched_steps = [s for s in node.log.steps() if s.events]
        assert switched_steps
        text = narrate(switched_steps[0])
        assert "switched my reasoning strategy" in text


class TestSimulatorDomainMetrics:
    """Every substrate registers at least one domain metric."""

    def test_smartcamera(self):
        from repro.smartcamera.sim import CameraSimConfig, run_self_aware
        with TelemetrySession() as session:
            run_self_aware(CameraSimConfig(steps=15, n_objects=4))
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=smartcamera}"] == 15.0
        assert "camera.handovers" in snap["counters"]
        assert snap["histograms"]["camera.tracking_utility"]["count"] == 15.0

    def test_cloud(self):
        from repro.cloud.cluster import ServiceCluster
        with TelemetrySession() as session:
            cluster = ServiceCluster()
            cluster.request_scale(8)
            for t in range(10):
                cluster.step(float(t), 30.0)
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=cloud}"] == 10.0
        assert snap["counters"]["cloud.scaling_actions"] == 1.0
        assert snap["histograms"]["cloud.qos"]["count"] == 10.0
        assert not math.isnan(snap["gauges"]["cloud.active_servers"])

    def test_cpn(self):
        from repro.cpn.routing import CPNRouter
        from repro.cpn.sim import default_flows, run_routing
        from repro.cpn.topology import CPNetwork
        network = CPNetwork.grid(3, 3, seed=0)
        with TelemetrySession() as session:
            run_routing(network, CPNRouter(network),
                        default_flows(network, 3), steps=10)
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=cpn}"] == 10.0
        assert snap["counters"]["cpn.packets_sent"] > 0
        assert snap["histograms"]["cpn.packet_delay"]["count"] > 0

    def test_multicore(self):
        from repro.multicore.governor import OndemandGovernor
        from repro.multicore.sim import run_governor
        with TelemetrySession() as session:
            run_governor(OndemandGovernor(), steps=12)
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=multicore}"] == 12.0
        assert snap["histograms"]["multicore.throughput"]["count"] == 12.0
        assert not math.isnan(snap["gauges"]["multicore.max_temperature"])

    def test_swarm(self):
        from repro.swarm.robots import StaticFormation
        from repro.swarm.sim import SwarmMissionConfig, run_mission
        with TelemetrySession() as session:
            run_mission(StaticFormation(4),
                        SwarmMissionConfig(steps=15, n_robots=4))
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=swarm}"] == 15.0
        assert snap["counters"]["swarm.events"] > 0
        # The default mission kills robots 0 and 1 at 70% of the run.
        assert snap["gauges"]["swarm.alive_robots"] == 2.0

    def test_sensornet(self):
        from repro.core.attention import RoundRobinAttention
        from repro.sensornet.field import ChannelField, mixed_channel_specs
        from repro.sensornet.node import run_sensing
        field = ChannelField(mixed_channel_specs(4, seed=1),
                             rng=np.random.default_rng(0))
        with TelemetrySession() as session:
            run_sensing(field, RoundRobinAttention(), budget=2.0, steps=15)
        snap = session.snapshot()
        assert snap["counters"]["steps{sim=sensornet}"] == 15.0
        assert snap["counters"]["sensornet.energy_spent"] > 0
        assert snap["histograms"]["sensornet.error"]["count"] == 15.0
