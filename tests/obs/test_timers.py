"""Tests for phase timing."""

import time

from repro.obs import TelemetrySession
from repro.obs.timers import PHASES, phase_timer


class TestPhaseTimer:
    def test_measures_duration_even_when_disabled(self):
        with phase_timer("sense") as timer:
            time.sleep(0.002)
        assert timer.duration >= 0.002

    def test_sink_receives_duration(self):
        sink = {}
        with phase_timer("reason", sink=sink):
            pass
        assert "reason" in sink
        assert sink["reason"] >= 0.0

    def test_no_histogram_when_disabled(self):
        # Outside a session, the default registry must stay untouched.
        from repro.obs.metrics import MetricsRegistry, set_registry
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            with phase_timer("sense", node="n"):
                pass
            assert fresh.snapshot()["histograms"] == {}
        finally:
            set_registry(previous)

    def test_histogram_recorded_when_enabled(self):
        with TelemetrySession() as session:
            for _ in range(3):
                with phase_timer("sense", node="n"):
                    pass
        hists = session.snapshot()["histograms"]
        assert hists["phase_seconds{node=n,phase=sense}"]["count"] == 3.0

    def test_record_false_suppresses_histogram(self):
        with TelemetrySession() as session:
            sink = {}
            with phase_timer("sense", sink=sink, record=False):
                pass
        assert session.snapshot()["histograms"] == {}
        assert "sense" in sink

    def test_canonical_phases(self):
        assert PHASES == ("sense", "model", "reason", "act")
