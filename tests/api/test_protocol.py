"""The uniform Simulator facade: protocol, configs, registry, replay."""

import dataclasses

import pytest

from repro.api import (SIMULATORS, CameraConfig, CameraSimulator,
                       CloudConfig, CloudSimulator, ClusterConfig,
                       CPNConfig, CPNSimulator, MulticoreConfig,
                       MulticoreSimulator, SensornetConfig,
                       SensornetSimulator, ServeConfig, Simulator,
                       SwarmConfig, SwarmSimulator, make_simulator)

SMALL = {
    "smartcamera": CameraConfig(steps=30, n_objects=4, seed=2),
    "cloud": CloudConfig(steps=40, seed=2),
    "multicore": MulticoreConfig(steps=40, seed=2),
    "cpn": CPNConfig(steps=30, n_nodes=12, n_flows=2, seed=2),
    "swarm": SwarmConfig(steps=30, n_robots=4, seed=2),
    "sensornet": SensornetConfig(steps=40, n_channels=4, seed=2),
    "serve": ServeConfig(steps=60, warmup=10, seed=2),
    "cluster": ClusterConfig(steps=60, warmup=10, nodes=2, sessions=6,
                             worker_budget=4, offered_load=10.0, seed=2),
}


class TestRegistry:
    def test_every_substrate_registered(self):
        assert set(SIMULATORS) == set(SMALL)

    def test_make_simulator_builds_the_right_adapter(self):
        for substrate, (config_cls, adapter_cls) in SIMULATORS.items():
            assert isinstance(SMALL[substrate], config_cls)
            sim = make_simulator(substrate, SMALL[substrate])
            assert isinstance(sim, adapter_cls)

    def test_unknown_substrate_names_the_known_ones(self):
        with pytest.raises(ValueError, match="mainframe") as excinfo:
            make_simulator("mainframe")
        # The message lists every registered substrate, sorted.
        for substrate in SIMULATORS:
            assert substrate in str(excinfo.value)

    def test_default_config_per_substrate(self):
        # No config at all must give a runnable simulator.
        sim = make_simulator("sensornet")
        assert isinstance(sim, SensornetSimulator)
        sim.step()


class TestProtocol:
    @pytest.mark.parametrize("substrate", sorted(SMALL))
    def test_adapters_satisfy_simulator(self, substrate):
        sim = make_simulator(substrate, SMALL[substrate])
        assert isinstance(sim, Simulator)

    @pytest.mark.parametrize("substrate", sorted(SMALL))
    def test_step_snapshot_metrics_shapes(self, substrate):
        sim = make_simulator(substrate, SMALL[substrate])
        for _ in range(5):
            sim.step()
        snapshot = sim.snapshot()
        assert snapshot["substrate"] == substrate
        assert snapshot["steps_taken"] == 5
        metrics = sim.metrics()
        assert metrics and all(isinstance(v, float)
                               for v in metrics.values())


class TestConfigs:
    def test_frozen(self):
        config = CloudConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.steps = 7

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            CloudConfig(600)

    def test_replace_for_sweeps(self):
        base = CameraConfig(steps=100)
        bumped = dataclasses.replace(base, seed=5)
        assert bumped.seed == 5 and bumped.steps == 100

    def test_camera_fixed_needs_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            CameraSimulator(CameraConfig(controller="fixed"))


class TestDeterministicReplay:
    @pytest.mark.parametrize("substrate", sorted(SMALL))
    def test_reset_replays_byte_identically(self, substrate):
        sim = make_simulator(substrate, SMALL[substrate])
        first = (sim.run(), sim.metrics(), sim.snapshot())
        sim.reset(SMALL[substrate].seed)
        second = (sim.run(), sim.metrics(), sim.snapshot())
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_different_seed_differs(self):
        sim = CloudSimulator(SMALL["cloud"])
        sim.run()
        base = sim.metrics()
        sim.reset(99)
        sim.run()
        assert sim.metrics() != base

    def test_two_instances_agree(self):
        a = SwarmSimulator(SMALL["swarm"])
        b = SwarmSimulator(SMALL["swarm"])
        a.run()
        b.run()
        assert a.metrics() == b.metrics()
