"""Every legacy run_* entry point warns and still returns the old shape."""

import numpy as np
import pytest


class TestCameraShims:
    def test_run_homogeneous_warns(self):
        from repro.smartcamera.sim import CameraSimConfig, run_homogeneous
        from repro.smartcamera.strategies import Strategy
        config = CameraSimConfig(steps=10, n_objects=3, seed=0)
        with pytest.warns(DeprecationWarning, match="CameraSimulator"):
            result = run_homogeneous(config, Strategy.ACTIVE_BROADCAST)
        assert len(result.records) == 10

    def test_run_self_aware_warns(self):
        from repro.smartcamera.sim import CameraSimConfig, run_self_aware
        config = CameraSimConfig(steps=10, n_objects=3, seed=0)
        with pytest.warns(DeprecationWarning, match="CameraSimulator"):
            result = run_self_aware(config)
        assert len(result.records) == 10


class TestCloudShim:
    def test_run_autoscaling_warns(self):
        from repro.cloud.autoscaler import (StaticScaler, make_cloud_goal,
                                            run_autoscaling)
        with pytest.warns(DeprecationWarning, match="CloudSimulator"):
            history = run_autoscaling(StaticScaler(4), lambda t: 50.0,
                                      make_cloud_goal(), steps=10)
        assert len(history) == 10


class TestMulticoreShim:
    def test_run_governor_warns(self):
        from repro.multicore.governor import StaticGovernor
        from repro.multicore.sim import run_governor
        with pytest.warns(DeprecationWarning, match="MulticoreSimulator"):
            result = run_governor(StaticGovernor(), steps=10)
        assert len(result.history) == 10


class TestCPNShim:
    def test_run_routing_warns(self):
        from repro.cpn.routing import StaticRouter
        from repro.cpn.sim import default_flows, run_routing
        from repro.cpn.topology import CPNetwork
        net = CPNetwork.random_geometric(n=12, seed=0)
        flows = default_flows(net, n_flows=2, seed=0)
        with pytest.warns(DeprecationWarning, match="CPNSimulator"):
            result = run_routing(net, StaticRouter(net), flows, steps=10)
        assert result.records


class TestSwarmShim:
    def test_run_mission_warns(self):
        from repro.swarm.robots import StaticFormation
        from repro.swarm.sim import SwarmMissionConfig, run_mission
        config = SwarmMissionConfig(n_robots=4, steps=10, seed=0)
        with pytest.warns(DeprecationWarning, match="SwarmSimulator"):
            result = run_mission(StaticFormation(4), config)
        assert result.records


class TestSensornetShim:
    def test_run_sensing_warns(self):
        from repro.core.attention import RoundRobinAttention
        from repro.sensornet.field import ChannelField, mixed_channel_specs
        from repro.sensornet.node import run_sensing
        field = ChannelField(mixed_channel_specs(4, seed=0),
                             rng=np.random.default_rng(0))
        with pytest.warns(DeprecationWarning, match="SensornetSimulator"):
            result = run_sensing(field, RoundRobinAttention(), budget=2.0,
                                 steps=10)
        assert result.records
