"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; a broken example is a broken
promise.  Each is run in a subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{example} printed nothing"


def test_quickstart_mentions_explanation():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600)
    assert "because" in result.stdout  # the self-explanation narrative
