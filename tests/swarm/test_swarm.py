"""Tests for the swarm substrate."""

import numpy as np
import pytest

from repro.swarm.arena import Arena, Event, Hotspot
from repro.swarm.robots import (RandomPatrol, Robot, SelfAwareSwarm,
                                StaticFormation, make_swarm)
from repro.swarm.sim import SwarmMissionConfig, run_mission


class TestArena:
    def test_events_stay_in_arena(self):
        arena = Arena.with_random_hotspots(seed=0)
        for t in range(100):
            for event in arena.step(float(t)):
                assert 0.0 <= event.x <= 1.0 and 0.0 <= event.y <= 1.0

    def test_hotspot_concentration(self):
        hotspot = Hotspot(x=0.5, y=0.5, spread=0.05)
        arena = Arena([hotspot], hotspot_fraction=1.0, events_per_step=5.0,
                      rng=np.random.default_rng(1))
        events = [e for t in range(200) for e in arena.step(float(t))]
        near = sum(1 for e in events
                   if abs(e.x - 0.5) < 0.15 and abs(e.y - 0.5) < 0.15)
        assert near / len(events) > 0.9

    def test_shift_moves_hotspots(self):
        arena = Arena.with_random_hotspots(seed=2, shift_times=[10.0])
        before = [(h.x, h.y) for h in arena.hotspots]
        for t in range(20):
            arena.step(float(t))
        after = [(h.x, h.y) for h in arena.hotspots]
        assert before != after
        assert arena.shifts_applied == [10.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Arena([], hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            Arena([], events_per_step=0.0)


class TestRobot:
    def test_witness_within_radius(self):
        robot = Robot(0, 0.5, 0.5, sensing_radius=0.1)
        assert robot.witnesses(Event(0.0, 0.55, 0.5))
        assert not robot.witnesses(Event(0.0, 0.7, 0.5))

    def test_dead_robot_witnesses_nothing(self):
        robot = Robot(0, 0.5, 0.5, sensing_radius=0.5, alive=False)
        assert not robot.witnesses(Event(0.0, 0.5, 0.5))

    def test_move_clamped_to_speed_and_arena(self):
        robot = Robot(0, 0.5, 0.5, speed=0.1)
        robot.move_toward(1.0, 0.5)
        assert robot.x == pytest.approx(0.6)
        robot.x, robot.y = 0.99, 0.5
        robot.move_toward(2.0, 0.5)
        assert robot.x == 1.0

    def test_dead_robot_does_not_move(self):
        robot = Robot(0, 0.5, 0.5, alive=False)
        robot.move_toward(1.0, 1.0)
        assert (robot.x, robot.y) == (0.5, 0.5)

    def test_make_swarm_reproducible(self):
        a = make_swarm(5, seed=3)
        b = make_swarm(5, seed=3)
        assert [(r.x, r.y) for r in a] == [(r.x, r.y) for r in b]


class TestControllers:
    def test_static_formation_reaches_posts(self):
        robots = make_swarm(4, speed=0.1, seed=0)
        controller = StaticFormation(4)
        for t in range(50):
            controller.step(float(t), robots, [])
        for robot in robots:
            post = controller.posts[robot.robot_id]
            assert robot.distance_to(*post) < 0.05

    def test_random_patrol_moves_everyone(self):
        robots = make_swarm(4, seed=1)
        controller = RandomPatrol(np.random.default_rng(1))
        starts = [(r.x, r.y) for r in robots]
        for t in range(20):
            controller.step(float(t), robots, [])
        assert any((r.x, r.y) != s for r, s in zip(robots, starts))

    def test_self_aware_moves_toward_witnessed_events(self):
        robots = [Robot(0, 0.2, 0.2, speed=0.05, sensing_radius=0.3)]
        controller = SelfAwareSwarm(rng=np.random.default_rng(2))
        event = Event(0.0, 0.4, 0.4)
        for t in range(30):
            controller.step(float(t), robots, [(0, event)] if t == 0 else [])
        assert robots[0].distance_to(0.4, 0.4) < 0.1

    def test_gossip_shares_events_with_nearby_peers(self):
        robots = [Robot(0, 0.5, 0.5), Robot(1, 0.6, 0.5), Robot(2, 0.95, 0.95)]
        controller = SelfAwareSwarm(comm_radius=0.2,
                                    rng=np.random.default_rng(3))
        event = Event(0.0, 0.5, 0.55)
        controller.step(0.0, robots, [(0, event)])
        assert controller.known_events(1)   # in range: heard about it
        assert not controller.known_events(2)  # out of range

    def test_event_memory_is_pruned(self):
        robots = [Robot(0, 0.5, 0.5)]
        controller = SelfAwareSwarm(memory=10, rng=np.random.default_rng(4))
        controller.step(0.0, robots, [(0, Event(0.0, 0.4, 0.4))])
        assert controller.known_events(0)
        controller.step(50.0, robots, [])
        assert not controller.known_events(0)

    def test_separation_pushes_crowded_robots_apart(self):
        robots = [Robot(0, 0.5, 0.5), Robot(1, 0.52, 0.5)]
        controller = SelfAwareSwarm(min_separation=0.3,
                                    rng=np.random.default_rng(5))
        for t in range(30):
            controller.step(float(t), robots, [])
        assert robots[0].distance_to(robots[1].x, robots[1].y) > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfAwareSwarm(memory=0)


class TestMission:
    def test_run_produces_records(self):
        result = run_mission(
            RandomPatrol(np.random.default_rng(0)),
            SwarmMissionConfig(steps=100, seed=0))
        assert len(result.records) == 100
        assert 0.0 <= result.detection_rate() <= 1.0

    def test_failures_reduce_alive_count(self):
        config = SwarmMissionConfig(steps=100, n_robots=5,
                                    failure_fracs=((0.5, 0), (0.5, 1)),
                                    seed=1)
        result = run_mission(StaticFormation(5), config)
        assert result.records[0].alive == 5
        assert result.records[-1].alive == 3

    def test_self_aware_beats_static_after_failures(self):
        rates = {}
        for name, factory in [
            ("static", lambda s: StaticFormation(9)),
            ("self-aware", lambda s: SelfAwareSwarm(
                rng=np.random.default_rng(s))),
        ]:
            vals = []
            for seed in range(2):
                config = SwarmMissionConfig(steps=500, seed=seed)
                result = run_mission(factory(seed), config)
                vals.append(result.detection_rate(0.75 * 500, 500))
            rates[name] = np.mean(vals)
        assert rates["self-aware"] > rates["static"] + 0.1
