"""Units for the struct-of-arrays swarm substrate primitives."""

import math

import pytest

from repro.swarm import soa
from repro.swarm.arena import Event
from repro.swarm.soa import (EventTable, IndexMemory, RobotArrays,
                             nearest_two, prefilter_limit_sq)
from repro.swarm.robots import Robot


class TestEventTable:
    def test_add_and_accessors(self):
        table = EventTable()
        indices = [table.add(float(t), 0.1 * t, 0.2 * t) for t in range(5)]
        assert indices == list(range(5))
        assert len(table) == 5
        assert table.time_at(3) == 3.0
        assert table.x_at(3) == pytest.approx(0.3)
        assert table.event(2) == Event(time=2.0, x=0.2, y=0.4)

    def test_growth_preserves_rows(self):
        table = EventTable()
        for t in range(1000):
            table.add(float(t), t + 0.5, t + 0.25)
        assert table.x_at(0) == 0.5
        assert table.y_at(999) == 999.25

    def test_add_event_round_trips_exact_floats(self):
        table = EventTable()
        event = Event(time=7.0, x=0.123456789123456789, y=1 / 3)
        index = table.add_event(event)
        assert table.event(index) == event

    def test_trim_keeps_global_indices_valid(self):
        table = EventTable()
        for t in range(100):
            table.add(float(t), float(t), float(t))
        table.trim(60)
        assert table.base == 60
        assert table.size == 100
        assert table.x_at(60) == 60.0
        assert table.x_at(99) == 99.0
        # trimming below the current base is a no-op
        table.trim(10)
        assert table.base == 60
        # rows added after a trim land correctly
        index = table.add(100.0, 100.0, 100.0)
        assert table.x_at(index) == 100.0

    def test_columns_and_gathers(self):
        table = EventTable()
        for t in range(10):
            table.add(float(t), float(t), float(-t))
        table.trim(4)
        xs, ys = table.columns(6, 9)
        assert list(xs) == [6.0, 7.0, 8.0]
        assert list(ys) == [-6.0, -7.0, -8.0]
        assert table.xs_list([7, 9, 5]) == [7.0, 9.0, 5.0]
        assert table.ys_list([7]) == [-7.0]


class TestIndexMemory:
    def test_append_iterate_first(self):
        memory = IndexMemory()
        assert not memory
        for i in range(10):
            memory.append(i * 3)
        assert len(memory) == 10
        assert memory.first() == 0
        assert list(memory.indices()) == [i * 3 for i in range(10)]
        assert memory.tolist() == [i * 3 for i in range(10)]

    def test_growth_beyond_initial_capacity(self):
        memory = IndexMemory()
        for i in range(1000):
            memory.append(i)
        assert memory.tolist() == list(range(1000))

    def test_prune_advances_head(self):
        table = EventTable()
        for t in range(20):
            table.add(float(t), 0.0, 0.0)
        memory = IndexMemory()
        for i in range(20):
            memory.append(i)
        memory.prune_before(12.0, table)
        assert memory.first() == 12
        assert memory.tolist() == list(range(12, 20))

    def test_prune_to_empty_resets(self):
        table = EventTable()
        for t in range(5):
            table.add(float(t), 0.0, 0.0)
        memory = IndexMemory()
        for i in range(5):
            memory.append(i)
        memory.prune_before(99.0, table)
        assert not memory
        assert len(memory) == 0
        memory.append(3)
        assert memory.tolist() == [3]

    def test_compaction_reclaims_pruned_prefix(self):
        table = EventTable()
        for t in range(500):
            table.add(float(t), 0.0, 0.0)
        memory = IndexMemory()
        # Interleave appends and prunes so the head advances far enough
        # for the slide-in-place branch to trigger.
        for i in range(500):
            memory.append(i)
            memory.prune_before(float(i - 20), table)
        assert memory.tolist() == list(range(479, 500))


class TestRobotArrays:
    def test_refresh_mirrors_robots(self):
        robots = [Robot(robot_id=i, x=0.1 * i, y=0.2 * i) for i in range(4)]
        robots[2].alive = False
        arrays = RobotArrays()
        arrays.refresh(robots)
        assert arrays.n == 4
        assert list(arrays.x) == [0.0, 0.1, 0.2, 0.30000000000000004]
        assert list(arrays.alive) == [True, True, False, True]
        robots[1].x = 0.9
        arrays.refresh(robots)
        assert list(arrays.x)[1] == 0.9


class TestNearestTwo:
    def _scalar_reference(self, px, py, exs, eys):
        out = []
        for ex, ey in zip(exs, eys):
            best1 = best2 = math.inf
            idx1 = -1
            for i, (x, y) in enumerate(zip(px, py)):
                d = math.hypot(x - ex, y - ey)
                if d < best1:
                    best2 = best1
                    best1 = d
                    idx1 = i
                elif d < best2:
                    best2 = d
            out.append((best1, idx1, best2))
        return out

    def test_matches_scalar_tie_convention(self):
        px = [0.0, 0.0, 1.0, 0.5]
        py = [0.0, 0.0, 0.0, 0.5]
        exs = [0.0, 1.0, 0.5, 0.25]
        eys = [0.0, 0.0, 0.5, 0.0]
        if soa.HAVE_NUMPY:
            import numpy as np
            best1, idx1, best2 = nearest_two(
                np.asarray(px), np.asarray(py),
                np.asarray(exs), np.asarray(eys))
        else:
            best1, idx1, best2 = nearest_two(px, py, exs, eys)
        reference = self._scalar_reference(px, py, exs, eys)
        for j, (b1, i1, b2) in enumerate(reference):
            # px[0] == px[1]: the duplicated minimiser must give the
            # first index and supply best2, like the scalar loop.
            assert float(best1[j]) == pytest.approx(b1, abs=1e-12)
            assert int(idx1[j]) == i1
            assert float(best2[j]) == pytest.approx(b2, abs=1e-12)

    def test_single_point_best2_is_inf(self):
        if soa.HAVE_NUMPY:
            import numpy as np
            best1, idx1, best2 = nearest_two(
                np.asarray([0.25]), np.asarray([0.25]),
                np.asarray([0.5, 0.25]), np.asarray([0.25, 0.25]))
        else:
            best1, idx1, best2 = nearest_two(
                [0.25], [0.25], [0.5, 0.25], [0.25, 0.25])
        assert float(best1[0]) == pytest.approx(0.25)
        assert int(idx1[0]) == 0
        assert math.isinf(float(best2[0]))
        assert float(best1[1]) == 0.0


class TestPrefilter:
    def test_limit_is_a_superset_of_the_exact_predicate(self):
        radius = 0.35
        limit_sq = prefilter_limit_sq(radius)
        # points exactly on the radius must pass the prefilter
        assert radius * radius <= limit_sq
        # ...with only a hair of slack, so candidate lists stay tight
        assert limit_sq < (radius * 1.001) ** 2
