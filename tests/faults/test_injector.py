"""The injector: deterministic, isolated, provably inert at zero."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, make_injector
from repro.faults.plan import (CLOCK_SKEW, CRASH, LINK_DEGRADE,
                               SENSOR_DROPOUT, SENSOR_NOISE, WORKLOAD_SPIKE,
                               FaultPlan, FaultSpec)
from repro.obs import TelemetrySession


def _noise_plan(intensity=1.0, start=10.0, end=20.0, target=None, seed=0):
    return FaultPlan(specs=(
        FaultSpec(kind=SENSOR_NOISE, start=start, end=end,
                  intensity=intensity, target=target),), seed=seed)


class TestMakeInjector:
    def test_none_plan_gives_no_injector(self):
        assert make_injector(None) is None

    def test_inert_plan_gives_no_injector(self):
        assert make_injector(FaultPlan()) is None
        assert make_injector(_noise_plan(intensity=0.0)) is None

    def test_live_plan_gives_injector(self):
        injector = make_injector(_noise_plan(), run_seed=5)
        assert isinstance(injector, FaultInjector)
        assert injector.run_seed == 5


class TestDeterminism:
    def _perturb_series(self, plan_seed, run_seed):
        injector = FaultInjector(_noise_plan(seed=plan_seed),
                                 run_seed=run_seed)
        out = []
        for t in range(30):
            injector.begin_step(float(t))
            out.append(injector.perturb(1.0))
        return out

    def test_same_seeds_replay_identically(self):
        assert self._perturb_series(3, 7) == self._perturb_series(3, 7)

    def test_run_seed_and_plan_seed_both_matter(self):
        base = self._perturb_series(3, 7)
        assert base != self._perturb_series(3, 8)
        assert base != self._perturb_series(4, 7)


class TestIdentityOutsideWindows:
    """Hooks must be *exact* identities when nothing is active."""

    def test_all_hooks_identity_before_window(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=SENSOR_NOISE, start=100.0, end=200.0,
                      intensity=2.0),
            FaultSpec(kind=SENSOR_DROPOUT, start=100.0, end=200.0,
                      intensity=0.9),
            FaultSpec(kind=LINK_DEGRADE, start=100.0, end=200.0,
                      intensity=0.5),
            FaultSpec(kind=WORKLOAD_SPIKE, start=100.0, end=200.0,
                      intensity=1.0),
            FaultSpec(kind=CLOCK_SKEW, start=100.0, end=200.0,
                      intensity=5.0),
        ), seed=0)
        injector = FaultInjector(plan)
        injector.begin_step(0.0)
        value = 0.123456789
        assert injector.perturb(value) == value  # bit-identical
        assert injector.dropped() is False
        assert injector.link_factor() == 1.0
        assert injector.link_loss_prob() == 0.0
        assert injector.link_lost() is False
        assert injector.demand_factor() == 1.0
        assert injector.spiked_count(3) == 3
        assert injector.clock_offset() == 0.0
        assert injector.perceived_time(value) == value
        assert injector.crashed_targets(range(5)) == frozenset()

    def test_no_rng_draw_when_inactive(self):
        injector = FaultInjector(_noise_plan(start=100.0, end=200.0))
        state_before = injector._rng.bit_generator.state
        injector.begin_step(0.0)
        injector.perturb(1.0)
        injector.dropped()
        injector.link_lost()
        injector.spiked_count(2)
        assert injector._rng.bit_generator.state == state_before

    def test_target_filtering(self):
        injector = FaultInjector(_noise_plan(target="demand"))
        injector.begin_step(15.0)
        assert injector.perturb(1.0, target="qos") == 1.0
        assert injector.perturb(1.0, target="demand") != 1.0


class TestActiveWindow:
    def test_active_and_just_started(self):
        injector = FaultInjector(_noise_plan(start=10.0, end=20.0))
        injector.begin_step(9.0)
        assert injector.active() == []
        assert not injector.just_started(SENSOR_NOISE)
        injector.begin_step(10.0)
        assert [s.kind for s in injector.active()] == [SENSOR_NOISE]
        assert injector.just_started(SENSOR_NOISE)
        injector.begin_step(11.0)
        assert not injector.just_started(SENSOR_NOISE)  # already open
        injector.begin_step(20.0)
        assert injector.active() == []

    def test_transition_events_on_bus(self):
        with TelemetrySession() as session:
            injector = FaultInjector(_noise_plan(start=10.0, end=20.0,
                                                 intensity=0.7))
            for t in range(25):
                injector.begin_step(float(t))
            starts = session.bus.events("fault.start")
            ends = session.bus.events("fault.end")
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0].get("time") == 10.0
        assert starts[0].get("kind") == SENSOR_NOISE
        assert starts[0].get("intensity") == 0.7
        assert ends[0].get("time") == 20.0
        assert injector.events_emitted == 2

    def test_no_events_when_bus_disabled(self):
        injector = FaultInjector(_noise_plan())
        for t in range(25):
            injector.begin_step(float(t))
        assert injector.events_emitted == 0


class TestCrashCohorts:
    def _crash_plan(self, intensity, target=None, seed=0):
        return FaultPlan(specs=(
            FaultSpec(kind=CRASH, start=10.0, end=20.0,
                      intensity=intensity, target=target),), seed=seed)

    def test_cohort_stable_across_queries_and_steps(self):
        injector = FaultInjector(self._crash_plan(0.5), run_seed=1)
        population = list(range(10))
        injector.begin_step(10.0)
        first = injector.crashed_targets(population)
        assert len(first) == 5
        for t in (11.0, 15.0, 19.0):
            injector.begin_step(t)
            assert injector.crashed_targets(population) == first

    def test_cohort_independent_of_run_seed(self):
        population = list(range(10))
        cohorts = []
        for run_seed in (1, 2):
            injector = FaultInjector(self._crash_plan(0.4), run_seed=run_seed)
            injector.begin_step(12.0)
            cohorts.append(injector.crashed_targets(population))
        assert cohorts[0] == cohorts[1]  # keyed by plan seed, not run seed

    def test_nonzero_intensity_downs_at_least_one(self):
        injector = FaultInjector(self._crash_plan(0.01))
        injector.begin_step(12.0)
        assert len(injector.crashed_targets(range(8))) == 1

    def test_explicit_target(self):
        injector = FaultInjector(self._crash_plan(1.0, target="node"))
        injector.begin_step(12.0)
        assert injector.is_crashed("node", ("node",))
        assert not injector.is_crashed("other", ("node", "other"))

    def test_recovery_when_window_closes(self):
        injector = FaultInjector(self._crash_plan(1.0))
        injector.begin_step(12.0)
        assert injector.crashed_targets(range(4)) == frozenset(range(4))
        injector.begin_step(20.0)
        assert injector.crashed_targets(range(4)) == frozenset()


class TestLoadAndLinkHooks:
    def test_demand_factor_and_spiked_count(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=WORKLOAD_SPIKE, start=0.0, end=10.0,
                      intensity=1.0),), seed=0)
        injector = FaultInjector(plan)
        injector.begin_step(0.0)
        assert injector.demand_factor() == 2.0
        assert injector.spiked_count(3) == 6  # whole multiple, no draw

    def test_spiked_count_fractional_resolves_by_draw(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=WORKLOAD_SPIKE, start=0.0, end=10.0,
                      intensity=0.5),), seed=0)
        injector = FaultInjector(plan)
        injector.begin_step(0.0)
        counts = {injector.spiked_count(1) for _ in range(200)}
        assert counts == {1, 2}  # 1 * 1.5 -> 1 or 2, never else

    def test_link_degradation_compounds(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=LINK_DEGRADE, start=0.0, end=10.0,
                      intensity=0.5),
            FaultSpec(kind=LINK_DEGRADE, start=0.0, end=10.0,
                      intensity=0.5),), seed=0)
        injector = FaultInjector(plan)
        injector.begin_step(0.0)
        assert injector.link_factor() == pytest.approx(2.25)
        assert injector.link_loss_prob() == pytest.approx(0.75)

    def test_clock_skew_shifts_perceived_time(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=CLOCK_SKEW, start=0.0, end=10.0,
                      intensity=3.0, target="scaler"),), seed=0)
        injector = FaultInjector(plan)
        injector.begin_step(5.0)
        assert injector.perceived_time(5.0, target="scaler") == 8.0
        assert injector.perceived_time(5.0, target="node") == 5.0
