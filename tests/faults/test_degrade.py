"""The degradation monitor: hysteresis plus the three fallback policies."""

import math

import pytest

from repro.core.attention import FullAttention, SalienceAttention
from repro.core.levels import CapabilityProfile, SelfAwarenessLevel
from repro.faults.degrade import (CHEAPER_LEVEL, HOLD_LAST_GOOD,
                                  WIDEN_ATTENTION, DegradationMonitor,
                                  model_confidence)
from repro.obs import TelemetrySession


class _Model:
    """Scriptable stand-in for a reasoner's action model."""

    def __init__(self):
        self.value = 1.0

    def confidence(self, context, action):
        return self.value


class _Reasoner:
    def __init__(self):
        self.model = _Model()


class _Node:
    """The attribute surface the monitor touches on a SelfAwareNode."""

    def __init__(self):
        self.name = "n0"
        self.reasoner = _Reasoner()
        self.profile = CapabilityProfile.full_stack()
        self.attention = SalienceAttention()
        self.attention_budget = 2.0


def _feed(monitor, node, confidences, actions=None, start=0.0):
    applied = []
    for i, confidence in enumerate(confidences):
        node.reasoner.model.value = confidence
        action = actions[i] if actions is not None else f"a{i}"
        applied.append(monitor.filter_action(start + i, node, {}, action))
    return applied


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation policy"):
            DegradationMonitor(policy="panic")

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            DegradationMonitor(window=0)


class TestHysteresis:
    def test_enters_after_window_consecutive_lows(self):
        monitor = DegradationMonitor(threshold=0.5, window=3)
        node = _Node()
        _feed(monitor, node, [0.9, 0.1, 0.1])
        assert not monitor.degraded  # only two consecutive lows
        _feed(monitor, node, [0.1], start=3.0)
        assert monitor.degraded
        assert len(monitor.episodes) == 1

    def test_interrupted_run_does_not_enter(self):
        monitor = DegradationMonitor(threshold=0.5, window=3)
        node = _Node()
        _feed(monitor, node, [0.1, 0.1, 0.6, 0.1, 0.1])
        assert not monitor.degraded

    def test_exits_after_window_consecutive_highs(self):
        monitor = DegradationMonitor(threshold=0.5, window=2)
        node = _Node()
        _feed(monitor, node, [0.1, 0.1])
        assert monitor.degraded
        _feed(monitor, node, [0.9], start=2.0)
        assert monitor.degraded  # one high is not enough
        _feed(monitor, node, [0.9], start=3.0)
        assert not monitor.degraded
        assert monitor.episodes == [(1.0, 3.0)]

    def test_wider_recover_threshold(self):
        monitor = DegradationMonitor(threshold=0.3, recover_threshold=0.8,
                                     window=2)
        node = _Node()
        _feed(monitor, node, [0.1, 0.1])
        assert monitor.degraded
        # 0.5 is above the entry threshold but below the recovery bar.
        _feed(monitor, node, [0.5, 0.5, 0.5], start=2.0)
        assert monitor.degraded
        _feed(monitor, node, [0.9, 0.9], start=5.0)
        assert not monitor.degraded

    def test_no_model_passes_through(self):
        monitor = DegradationMonitor(threshold=0.5, window=1)

        class _Static:
            pass

        node = _Node()
        node.reasoner = _Static()  # no .model attribute
        assert model_confidence(node, {}, "a") is None
        assert monitor.filter_action(0.0, node, {}, "a") == "a"
        assert not monitor.degraded

    def test_degraded_steps_accounting(self):
        monitor = DegradationMonitor(threshold=0.5, window=1)
        node = _Node()
        _feed(monitor, node, [0.1, 0.1, 0.9, 0.9, 0.1])
        # Episode 1: [0, 2); episode 2 still open at t=4.
        assert monitor.degraded_steps() == pytest.approx(2.0)
        assert monitor.degraded_steps(final_time=6.0) == pytest.approx(4.0)


class TestHoldLastGood:
    def test_repeats_last_healthy_action_while_degraded(self):
        monitor = DegradationMonitor(policy=HOLD_LAST_GOOD, threshold=0.5,
                                     window=2)
        node = _Node()
        applied = _feed(monitor, node, [0.9, 0.1, 0.1, 0.1],
                        actions=["good", "x", "y", "z"])
        # "Last good" means the last action chosen while *not degraded*:
        # "x" was applied before the hysteresis window filled, so it is
        # what gets held -- fresh low-confidence choices are not.
        assert applied == ["good", "x", "x", "x"]

    def test_releases_on_recovery(self):
        monitor = DegradationMonitor(policy=HOLD_LAST_GOOD, threshold=0.5,
                                     window=1)
        node = _Node()
        applied = _feed(monitor, node, [0.9, 0.1, 0.9],
                        actions=["good", "x", "fresh"])
        assert applied == ["good", "good", "fresh"]


class TestCheaperLevel:
    def test_sheds_meta_then_restores(self):
        monitor = DegradationMonitor(policy=CHEAPER_LEVEL, threshold=0.5,
                                     window=1)
        node = _Node()
        full = node.profile
        assert full.has(SelfAwarenessLevel.META)
        _feed(monitor, node, [0.1])
        assert monitor.degraded
        assert not node.profile.has(SelfAwarenessLevel.META)
        assert node.profile.has(SelfAwarenessLevel.STIMULUS)
        _feed(monitor, node, [0.9], start=1.0)
        assert node.profile is full


class TestWidenAttention:
    def test_full_attention_and_budget_lift_then_restore(self):
        monitor = DegradationMonitor(policy=WIDEN_ATTENTION, threshold=0.5,
                                     window=1, budget_factor=4.0)
        node = _Node()
        narrow = node.attention
        _feed(monitor, node, [0.1])
        assert isinstance(node.attention, FullAttention)
        assert node.attention_budget == pytest.approx(8.0)
        _feed(monitor, node, [0.9], start=1.0)
        assert node.attention is narrow
        assert node.attention_budget == pytest.approx(2.0)

    def test_unbounded_budget_stays_unbounded(self):
        monitor = DegradationMonitor(policy=WIDEN_ATTENTION, threshold=0.5,
                                     window=1)
        node = _Node()
        node.attention_budget = math.inf
        _feed(monitor, node, [0.1])
        assert math.isinf(node.attention_budget)


class TestEvents:
    def test_enter_and_exit_emitted(self):
        with TelemetrySession() as session:
            monitor = DegradationMonitor(threshold=0.5, window=1)
            node = _Node()
            _feed(monitor, node, [0.1, 0.9])
            enters = session.bus.events("degrade.enter")
            exits = session.bus.events("degrade.exit")
        assert len(enters) == 1 and len(exits) == 1
        assert enters[0].get("node") == "n0"
        assert enters[0].get("policy") == HOLD_LAST_GOOD
        assert exits[0].get("time") == 1.0
