"""The acceptance criterion: an all-zero-intensity plan changes nothing.

Two layers of proof per substrate.  First, a zero-intensity
:class:`FaultPlan` resolves to no injector at all, so the code path is
*instruction*-identical to ``faults=None``.  Second, an injector whose
windows never open (live intensities, but scheduled after the run ends)
exercises every hook's identity short-circuit in situ -- the run must
still be byte-identical.
"""

import pytest

from repro.api import (CameraConfig, CameraSimulator, CloudConfig,
                       CloudSimulator, CPNConfig, CPNSimulator,
                       MulticoreConfig, MulticoreSimulator, SensornetConfig,
                       SensornetSimulator, SwarmConfig, SwarmSimulator)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (CRASH, FAULT_KINDS, SENSOR_NOISE, FaultPlan,
                               FaultSpec)

#: Every kind at zero intensity, windows covering the whole run.
ZERO_PLAN = FaultPlan(specs=tuple(
    FaultSpec(kind=kind, start=0.0, end=1e9, intensity=0.0)
    for kind in FAULT_KINDS), seed=13)

#: Live intensities, but the windows open long after any test run ends.
DORMANT_PLAN = FaultPlan(specs=(
    FaultSpec(kind=CRASH, start=1e8, end=1e9, intensity=0.8),
    FaultSpec(kind=SENSOR_NOISE, start=1e8, end=1e9, intensity=2.0),
), seed=13)

CASES = [
    ("smartcamera", CameraSimulator,
     CameraConfig(steps=40, n_objects=4, seed=1)),
    ("cloud", CloudSimulator, CloudConfig(steps=60, seed=1)),
    ("multicore", MulticoreSimulator, MulticoreConfig(steps=60, seed=1)),
    ("cpn", CPNSimulator,
     CPNConfig(steps=50, n_nodes=15, n_flows=3, seed=1)),
    ("swarm", SwarmSimulator, SwarmConfig(steps=50, n_robots=5, seed=1)),
    ("sensornet", SensornetSimulator,
     SensornetConfig(steps=60, n_channels=4, seed=1)),
]


def _run(adapter_cls, config, faults):
    sim = adapter_cls(config, faults=faults)
    sim.run()
    return sim.metrics(), sim.snapshot()


@pytest.mark.parametrize("name,adapter_cls,config", CASES,
                         ids=[c[0] for c in CASES])
def test_zero_intensity_plan_is_byte_identical(name, adapter_cls, config):
    clean_metrics, clean_snapshot = _run(adapter_cls, config, None)
    zero_metrics, zero_snapshot = _run(adapter_cls, config, ZERO_PLAN)
    assert zero_metrics == clean_metrics  # exact float equality
    assert zero_snapshot == clean_snapshot


@pytest.mark.parametrize("name,adapter_cls,config", CASES,
                         ids=[c[0] for c in CASES])
def test_dormant_injector_is_byte_identical(name, adapter_cls, config):
    clean_metrics, clean_snapshot = _run(adapter_cls, config, None)
    injector = FaultInjector(DORMANT_PLAN, run_seed=config.seed)
    dormant_metrics, dormant_snapshot = _run(adapter_cls, config, injector)
    assert dormant_metrics == clean_metrics
    assert dormant_snapshot == clean_snapshot


def test_nonzero_plan_actually_perturbs():
    """The counter-check: the harness would catch a disconnected injector."""
    plan = FaultPlan(specs=(
        FaultSpec(kind=CRASH, start=15.0, end=45.0, intensity=0.6),
        FaultSpec(kind=SENSOR_NOISE, start=15.0, end=45.0, intensity=5.0,
                  target="demand"),), seed=13)
    config = CloudConfig(steps=60, seed=1)
    clean_metrics, _ = _run(CloudSimulator, config, None)
    faulted_metrics, _ = _run(CloudSimulator, config, plan)
    assert faulted_metrics != clean_metrics
