"""Fault plans are data: validated, hashable, round-trippable."""

import math
import pickle

import pytest

from repro.faults.plan import (CRASH, FAULT_KINDS, LINK_DEGRADE, SENSOR_NOISE,
                               WORKLOAD_SPIKE, FaultPlan, FaultSpec)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins", start=0.0, end=1.0, intensity=0.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="end > start"):
            FaultSpec(kind=CRASH, start=5.0, end=5.0, intensity=0.5)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(kind=CRASH, start=0.0, end=1.0, intensity=-0.1)

    def test_active_is_half_open(self):
        spec = FaultSpec(kind=SENSOR_NOISE, start=10.0, end=20.0,
                         intensity=1.0)
        assert not spec.active(9.999)
        assert spec.active(10.0)
        assert spec.active(19.999)
        assert not spec.active(20.0)

    def test_dict_roundtrip(self):
        spec = FaultSpec(kind=LINK_DEGRADE, start=1.0, end=2.0,
                         intensity=0.3, target=7)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, start=0.0, end=1.0, intensity=0.1)


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(specs=(
            FaultSpec(kind=CRASH, start=10.0, end=20.0, intensity=0.4),
            FaultSpec(kind=SENSOR_NOISE, start=15.0, end=30.0,
                      intensity=0.0),
            FaultSpec(kind=WORKLOAD_SPIKE, start=25.0, end=40.0,
                      intensity=1.5),
        ), seed=3)

    def test_empty_plan_is_inert(self):
        assert FaultPlan().is_inert()
        assert len(FaultPlan()) == 0

    def test_zero_intensity_plan_is_inert(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=CRASH, start=0.0, end=9.0, intensity=0.0),))
        assert plan.is_inert()
        assert not self._plan().is_inert()

    def test_active_skips_inert_specs(self):
        plan = self._plan()
        # t=16: crash active, the zero-intensity noise spec never is.
        assert [s.kind for s in plan.active(16.0)] == [CRASH]
        assert plan.active(16.0, kind=SENSOR_NOISE) == []
        assert plan.active(5.0) == []

    def test_scaled_preserves_windows(self):
        plan = self._plan()
        doubled = plan.scaled(2.0)
        assert doubled.seed == plan.seed
        assert [(s.start, s.end) for s in doubled] == \
            [(s.start, s.end) for s in plan]
        assert [s.intensity for s in doubled] == [0.8, 0.0, 3.0]
        assert plan.scaled(0.0).is_inert()
        with pytest.raises(ValueError):
            plan.scaled(-1.0)

    def test_window_spans_non_inert_specs(self):
        plan = self._plan()
        assert plan.window() == (10.0, 40.0)
        assert plan.window(kind=CRASH) == (10.0, 20.0)
        lo, hi = plan.window(kind=SENSOR_NOISE)  # only the inert spec
        assert math.isnan(lo) and math.isnan(hi)

    def test_dict_roundtrip(self):
        plan = self._plan()
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_hashable_and_picklable(self):
        plan = self._plan()
        assert hash(plan) == hash(FaultPlan.from_dict(plan.as_dict()))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_list_specs_coerced_to_tuple(self):
        plan = FaultPlan(specs=[
            FaultSpec(kind=CRASH, start=0.0, end=1.0, intensity=0.5)])
        assert isinstance(plan.specs, tuple)
