"""Swarm shard payloads: byte-identical across jobs and across paths.

The SoA swarm rewrite is only admissible if the E12 tables cannot tell
it happened.  Two axes of identity, both at JSON-byte granularity:

- **jobs-1 vs jobs-4** -- the engine's worker pool must not perturb a
  single float (fork workers share the parent's flag state, so this
  also holds on CI's forced-naive leg);
- **fast vs naive** -- the struct-of-arrays controller and the
  vectorised/gridded scans against the object-graph reference scans.
"""

import json

import pytest

from repro.experiments import e12_swarm
from repro.experiments.engine import (SuiteJob, canonical_suite_text,
                                      run_suite)
from repro.swarm import robots, sim


def _e12_job(seeds):
    return [SuiteJob(name="E12", module="repro.experiments.e12_swarm",
                     shard_fn="run_shard", reduce_fn="reduce",
                     seeds=tuple(seeds),
                     params={"steps": 120, "n_robots": 9})]


@pytest.fixture
def naive_flags():
    """Flip the swarm fast-path defaults to naive for the duration."""
    saved = (robots.USE_FAST_SWARM, sim.USE_WITNESS_GRID)
    robots.USE_FAST_SWARM = False
    sim.USE_WITNESS_GRID = False
    try:
        yield
    finally:
        robots.USE_FAST_SWARM, sim.USE_WITNESS_GRID = saved


class TestSwarmShardsAcrossJobs:
    def test_jobs_1_vs_4_payloads_identical(self):
        seeds = (0, 1, 2, 3)
        serial = [e12_swarm.run_shard(s, steps=120, n_robots=9)
                  for s in seeds]
        parallel = run_suite(_e12_job(seeds), n_jobs=4)
        engine_serial = run_suite(_e12_job(seeds), n_jobs=1)
        assert (canonical_suite_text(engine_serial.tables)
                == canonical_suite_text(parallel.tables))
        # The reduced table equals reducing the in-process payloads,
        # so the worker-pool payloads were byte-identical too.
        direct = e12_swarm.reduce(serial, seeds=seeds, steps=120,
                                  n_robots=9)
        assert (canonical_suite_text([direct])
                == canonical_suite_text(parallel.tables))


class TestSwarmShardsFastVsNaive:
    def test_shard_payload_identical_fast_vs_naive(self, naive_flags):
        naive = json.dumps(e12_swarm.run_shard(0, steps=120, n_robots=9),
                           sort_keys=True)
        robots.USE_FAST_SWARM = True
        sim.USE_WITNESS_GRID = True
        fast = json.dumps(e12_swarm.run_shard(0, steps=120, n_robots=9),
                          sort_keys=True)
        assert fast == naive

    def test_scalar_soa_backend_identical_too(self, naive_flags):
        """The non-numpy SoA fallback is held to the same standard."""
        import numpy as np

        from repro.swarm.sim import SwarmMission, SwarmMissionConfig

        def mission(fast, vectorized):
            config = SwarmMissionConfig(n_robots=9, steps=120,
                                        events_per_step=4.0, seed=3)
            controller = robots.SelfAwareSwarm(
                rng=np.random.default_rng(11), fast=fast,
                vectorized=vectorized)
            run = SwarmMission(controller, config, use_grid=fast)
            records = [run.step(float(t)) for t in range(120)]
            return ([(r.time, r.events, r.witnessed, r.alive)
                     for r in records],
                    [(r.robot_id, r.x, r.y, r.alive) for r in run.robots])

        reference = mission(fast=False, vectorized=None)
        assert mission(fast=True, vectorized=True) == reference
        assert mission(fast=True, vectorized=False) == reference
