"""Sensornet shard payloads: byte-identical across jobs and across paths.

The batched channel field and column-resolved sensing step are only
admissible if the E7 tables cannot tell they happened.  Same two axes
as the swarm and camera suites: jobs-1 vs jobs-4 through the engine's
worker pool, and fast vs naive at JSON-byte granularity.
"""

import json

import pytest

from repro.experiments import e7_attention
from repro.experiments.engine import (SuiteJob, canonical_suite_text,
                                      run_suite)
from repro.sensornet import field as field_mod
from repro.sensornet import node as node_mod

BUDGETS = (2.0, 4.0)


def _e7_job(seeds):
    return [SuiteJob(name="E7", module="repro.experiments.e7_attention",
                     shard_fn="run_shard", reduce_fn="reduce",
                     seeds=tuple(seeds),
                     params={"budgets": BUDGETS, "steps": 120})]


@pytest.fixture
def naive_flags():
    """Flip the sensornet fast-path defaults to naive for the duration."""
    saved = (field_mod.USE_FAST_FIELD, node_mod.USE_FAST_SENSORNET)
    field_mod.USE_FAST_FIELD = False
    node_mod.USE_FAST_SENSORNET = False
    try:
        yield
    finally:
        (field_mod.USE_FAST_FIELD,
         node_mod.USE_FAST_SENSORNET) = saved


class TestSensornetShardsAcrossJobs:
    def test_jobs_1_vs_4_payloads_identical(self):
        seeds = (0, 1, 2, 3)
        serial = [e7_attention.run_shard(s, budgets=BUDGETS, steps=120)
                  for s in seeds]
        parallel = run_suite(_e7_job(seeds), n_jobs=4)
        engine_serial = run_suite(_e7_job(seeds), n_jobs=1)
        assert (canonical_suite_text(engine_serial.tables)
                == canonical_suite_text(parallel.tables))
        direct = e7_attention.reduce(serial, seeds=seeds, budgets=BUDGETS,
                                     steps=120)
        assert (canonical_suite_text([direct])
                == canonical_suite_text(parallel.tables))


class TestSensornetShardsFastVsNaive:
    def test_shard_payload_identical_fast_vs_naive(self, naive_flags):
        naive = json.dumps(
            e7_attention.run_shard(0, budgets=BUDGETS, steps=120),
            sort_keys=True)
        field_mod.USE_FAST_FIELD = True
        node_mod.USE_FAST_SENSORNET = True
        fast = json.dumps(
            e7_attention.run_shard(0, budgets=BUDGETS, steps=120),
            sort_keys=True)
        assert fast == naive

    def test_batched_field_alone_identical_too(self, naive_flags):
        """The batched walks under a naive node still match exactly."""
        naive = json.dumps(
            e7_attention.run_shard(1, budgets=BUDGETS, steps=120),
            sort_keys=True)
        field_mod.USE_FAST_FIELD = True
        mixed = json.dumps(
            e7_attention.run_shard(1, budgets=BUDGETS, steps=120),
            sort_keys=True)
        assert mixed == naive
