"""Unit tests for the ``repro.bench`` harness, report and CI gate."""

import json

import pytest

from repro.bench import (KERNELS, KernelSpec, build_report, compare_reports,
                         get_kernels, parse_percent, run_spec, write_report)
from repro.bench.harness import KernelResult, percentile
from repro.bench.report import SCHEMA, load_report, summary_lines


class TestPercentile:
    def test_endpoints_and_median(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(vals, 0.0) == 1.0
        assert percentile(vals, 100.0) == 5.0
        assert percentile(vals, 50.0) == 3.0

    def test_interpolates(self):
        assert percentile([1.0, 2.0], 50.0) == 1.5

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0


class TestKernelResult:
    def test_rates_and_dict(self):
        result = KernelResult(steps=100, repeats=3, warmup=25,
                              seconds=[0.5, 0.4, 0.25])
        assert result.rates == [200.0, 250.0, 400.0]
        doc = result.as_dict()
        assert doc["steps"] == 100
        assert doc["median_rate"] == 250.0
        assert doc["p10_rate"] <= doc["median_rate"] <= doc["p90_rate"]
        assert doc["median_ms_per_step"] == pytest.approx(4.0)


class TestRunSpec:
    def test_counts_steps_and_pairs_baseline(self):
        calls = {"fast": 0, "naive": 0}

        def setup(which):
            def factory():
                def run(n):
                    calls[which] += int(n)
                return run
            return factory

        spec = KernelSpec(name="toy", setup=setup("fast"),
                          baseline_setup=setup("naive"),
                          steps=40, quick_steps=8)
        entry = run_spec(spec, quick=True, repeats=2, warmup=4)
        # warmup once + 2 timed repeats, for each variant.
        assert calls == {"fast": 4 + 2 * 8, "naive": 4 + 2 * 8}
        assert entry["steps"] == 8
        assert "baseline" in entry
        assert entry["speedup_vs_naive"] > 0
        assert entry["spread"] >= 1.0

    def test_without_baseline(self):
        spec = KernelSpec(name="toy", setup=lambda: (lambda n: None),
                          steps=10, quick_steps=2)
        entry = run_spec(spec, quick=False, repeats=2, with_baseline=False)
        assert entry["steps"] == 10
        assert "baseline" not in entry
        assert "speedup_vs_naive" not in entry


class TestKernelRegistry:
    def test_all_kernels_named_and_described(self):
        names = [spec.name for spec in KERNELS]
        assert len(names) == len(set(names))
        assert len(names) >= 8
        assert all(spec.description for spec in KERNELS)

    def test_subset_preserves_order(self):
        subset = get_kernels(["cpn.step", "camera.step"])
        assert [s.name for s in subset] == ["cpn.step", "camera.step"]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernels(["nope.step"])

    def test_size_tiers_partition_the_registry(self):
        default = get_kernels(size="default")
        large = get_kernels(size="large")
        everything = get_kernels(size="all")
        assert {k.name for k in default} | {k.name for k in large} \
            == {k.name for k in everything}
        assert all(k.tier == "large" for k in large)
        assert all(k.name.endswith(".large") for k in large)
        assert {"camera.step.large", "sensornet.step.large",
                "swarm.step.large", "cpn.step.large",
                "cloud.step.large"} <= {k.name for k in large}
        # Each paired large kernel keeps a naive baseline, like its
        # default-tier counterpart.
        by_name = {k.name: k for k in everything}
        for name in ("camera.step.large", "sensornet.step.large",
                     "swarm.step.large", "cpn.step.large"):
            assert by_name[name].baseline_setup is not None

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            get_kernels(size="xl")

    def test_names_bypass_the_size_filter(self):
        subset = get_kernels(["camera.step.large", "cpn.step"],
                             size="default")
        assert [s.name for s in subset] == ["camera.step.large",
                                            "cpn.step"]


class TestParsePercent:
    def test_percent_and_fraction(self):
        assert parse_percent("10%") == pytest.approx(0.10)
        assert parse_percent("0.25") == pytest.approx(0.25)
        assert parse_percent(" 5% ") == pytest.approx(0.05)

    @pytest.mark.parametrize("bad", ["150%", "-1%", "1.0", "abc"])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            parse_percent(bad)


def _report(rates, spreads=None, calibration=None):
    spreads = spreads or {}
    kernels = {
        name: {"median_rate": rate, "spread": spreads.get(name, 1.0)}
        for name, rate in rates.items()
    }
    return build_report(kernels, quick=True, repeats=3,
                        calibration_rate=calibration)


class TestCompareReports:
    def test_within_budget_passes(self):
        ok, lines = compare_reports(_report({"a": 100.0}),
                                    _report({"a": 95.0}), 0.10)
        assert ok
        assert any("ok" in line for line in lines)

    def test_regression_fails(self):
        ok, lines = compare_reports(_report({"a": 100.0}),
                                    _report({"a": 80.0}), 0.10)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_noisy_regression_skipped_when_asked(self):
        old = _report({"a": 100.0}, spreads={"a": 3.0})
        new = _report({"a": 50.0})
        ok, lines = compare_reports(old, new, 0.10, skip_on_noise=True)
        assert ok
        assert any("SKIPPED" in line for line in lines)
        ok, _ = compare_reports(old, new, 0.10, skip_on_noise=False)
        assert not ok

    def test_missing_kernel_fails(self):
        ok, lines = compare_reports(_report({"a": 1.0, "b": 1.0}),
                                    _report({"a": 1.0}), 0.10)
        assert not ok
        assert any("MISSING" in line for line in lines)

    def test_new_kernel_missing_from_baseline_fails(self):
        # A kernel the committed baseline has never seen must fail the
        # gate (not pass silently) until the baseline is regenerated.
        ok, lines = compare_reports(_report({"a": 1.0}),
                                    _report({"a": 1.0, "b": 1.0}), 0.10)
        assert not ok
        assert any("b: UNGATED" in line and "baseline" in line
                   for line in lines)
        # ...and skip-on-noise must not rescue it: the kernel has no
        # timing comparison to be noisy about.
        ok, _ = compare_reports(_report({"a": 1.0}),
                                _report({"a": 1.0, "b": 1.0}), 0.10,
                                skip_on_noise=True)
        assert not ok

    def test_improvement_passes(self):
        ok, _ = compare_reports(_report({"a": 100.0}),
                                _report({"a": 250.0}), 0.10)
        assert ok


class TestHostCalibration:
    def test_slow_host_forgives_matching_slowdown(self):
        # Host ran the fixed loop 20% slower; a kernel down 15% is the
        # host's fault, not the code's, and must not go red.
        old = _report({"a": 100.0}, calibration=1000.0)
        new = _report({"a": 85.0}, calibration=800.0)
        ok, lines = compare_reports(old, new, 0.10)
        assert ok
        assert any("host calibration" in line for line in lines)
        assert any("host-adjusted" in line for line in lines)

    def test_slow_host_still_catches_real_regressions(self):
        # Down 40% on a host that is only 20% slower: still a
        # regression after scaling.
        old = _report({"a": 100.0}, calibration=1000.0)
        new = _report({"a": 60.0}, calibration=800.0)
        ok, lines = compare_reports(old, new, 0.10)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_fast_host_never_relaxes_the_gate(self):
        # The clamp: a faster host must not hide a real 12% loss.
        old = _report({"a": 100.0}, calibration=1000.0)
        new = _report({"a": 88.0}, calibration=1300.0)
        ok, _ = compare_reports(old, new, 0.10)
        assert not ok

    def test_per_kernel_sample_beats_run_level(self):
        # The run-level samples agree (no global slowdown) but the
        # kernel's own adjacent sample caught a noise storm: the
        # per-kernel factor must win and forgive the dip.
        old = _report({"a": 100.0}, calibration=1000.0)
        new = _report({"a": 85.0}, calibration=1000.0)
        old["kernels"]["a"]["calibration_rate"] = 1000.0
        new["kernels"]["a"]["calibration_rate"] = 820.0
        ok, lines = compare_reports(old, new, 0.10)
        assert ok
        assert any("host-adjusted" in line for line in lines)

    def test_missing_calibration_means_no_scaling(self):
        # Old reports (pre-calibration schema) gate exactly as before.
        ok, lines = compare_reports(_report({"a": 100.0}),
                                    _report({"a": 85.0},
                                            calibration=800.0), 0.10)
        assert not ok
        assert not any("host" in line for line in lines)

    def test_measure_calibration_is_positive_and_repeatable(self):
        from repro.bench.harness import measure_calibration
        rate = measure_calibration(repeats=3)
        assert rate > 0
        again = measure_calibration(repeats=3)
        # Same host moments apart: within a generous 3x band -- this
        # guards units (iters/s, not seconds), not timing precision.
        assert rate / 3 < again < rate * 3


class TestReportIO:
    def test_roundtrip_and_schema(self, tmp_path):
        report = _report({"a": 10.0})
        assert report["schema"] == SCHEMA
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded == json.loads(path.read_text())
        assert loaded["kernels"]["a"]["median_rate"] == 10.0

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9"}')
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_summary_lines_mention_speedup(self):
        report = _report({"a": 10.0})
        report["kernels"]["a"].update(
            p10_rate=9.0, p90_rate=11.0, speedup_vs_naive=2.5)
        lines = summary_lines(report)
        assert len(lines) == 1
        assert "2.50x vs naive" in lines[0]

    def test_markdown_summary_surfaces_noise_skips(self):
        from repro.bench.report import markdown_summary

        old = _report({"a": 100.0}, spreads={"a": 3.0})
        new = _report({"a": 50.0})
        new["kernels"]["a"].update(p10_rate=45.0, p90_rate=55.0)
        gate = compare_reports(old, new, 0.10, skip_on_noise=True)
        text = markdown_summary(new, gate=gate, baseline_path="OLD.json",
                                max_regress=0.10)
        assert "| a | 50.0 |" in text
        assert "PASS" in text
        # The skip -- invisible in a green terminal run -- is called out.
        assert "SKIPPED (noisy runner)" in text


class TestCLI:
    def test_list_and_tiny_run(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "cpn.step" in out

        path = tmp_path / "bench.json"
        code = main(["--kernels", "obs.emit.disabled", "--steps", "2000",
                     "--repeats", "2", "--warmup", "100",
                     "--out", str(path)])
        assert code == 0
        report = load_report(str(path))
        assert "obs.emit.disabled" in report["kernels"]

    def test_unknown_kernel_exits_2(self):
        from repro.bench.__main__ import main

        assert main(["--kernels", "bogus"]) == 2
        assert main(["--max-regress", "200%", "--kernels", "obs.emit"]) == 2

    def test_summary_path_writes_markdown(self, tmp_path):
        from repro.bench.__main__ import main

        out = tmp_path / "bench.json"
        summary = tmp_path / "summary.md"
        code = main(["--kernels", "obs.emit.disabled", "--steps", "2000",
                     "--repeats", "2", "--warmup", "100",
                     "--out", str(out), "--summary-path", str(summary)])
        assert code == 0
        text = summary.read_text()
        assert "## Benchmark report" in text
        assert "obs.emit.disabled" in text

        # With --compare, the gate verdicts land in the summary too.
        code = main(["--kernels", "obs.emit.disabled", "--steps", "2000",
                     "--repeats", "2", "--warmup", "100",
                     "--out", str(out), "--compare", str(out),
                     "--skip-on-noise", "--summary-path", str(summary)])
        assert code == 0
        assert "### Gate vs" in summary.read_text()
