"""Batched RNG draws must be bit-identical to the scalar draw order.

The SoA/vectorised kernels are allowed to batch generator calls only
where numpy consumes the underlying bitstream exactly as the equivalent
sequence of scalar draws would (numpy fills arrays sequentially from
the stream).  These tests pin that contract at the draw level -- the
same idiom the scalar-equivalence suite uses for kernel outputs -- so a
numpy behaviour change or a careless "optimisation" of a draw site
fails loudly instead of silently skewing every downstream table.
"""

import numpy as np

from repro.swarm.arena import Arena, Hotspot


def _pair(seed):
    return (np.random.default_rng(seed), np.random.default_rng(seed))


class TestBatchedDrawBitIdentity:
    def test_normal_pair_matches_two_scalar_draws(self):
        batched_rng, scalar_rng = _pair(123)
        for _ in range(100):
            dx, dy = batched_rng.normal(0.0, 0.08, 2)
            assert float(dx) == scalar_rng.normal(0.0, 0.08)
            assert float(dy) == scalar_rng.normal(0.0, 0.08)

    def test_uniform_pair_matches_two_scalar_draws(self):
        batched_rng, scalar_rng = _pair(7)
        for _ in range(100):
            ex, ey = batched_rng.uniform(0, 1, 2)
            assert float(ex) == scalar_rng.uniform(0, 1)
            assert float(ey) == scalar_rng.uniform(0, 1)

    def test_interleaving_preserves_stream_position(self):
        """A batched pair leaves the stream exactly where two scalar
        draws would, so later unrelated draws stay aligned."""
        batched_rng, scalar_rng = _pair(42)
        batched_rng.normal(0.0, 0.08, 2)
        scalar_rng.normal(0.0, 0.08)
        scalar_rng.normal(0.0, 0.08)
        assert batched_rng.random() == scalar_rng.random()
        assert (int(batched_rng.integers(1000))
                == int(scalar_rng.integers(1000)))


class TestCameraClaimDraws:
    """The camera fast step batches the per-unowned-object detection
    draws (``rng.random(k)``) the naive claim loop makes one at a time."""

    def test_random_batch_matches_k_scalar_draws(self):
        batched_rng, scalar_rng = _pair(31)
        for k in (0, 1, 2, 7, 48):
            draws = batched_rng.random(k).tolist()
            assert draws == [scalar_rng.random() for _ in range(k)]
        # Stream positions stay aligned for the later best-observer work.
        assert batched_rng.random() == scalar_rng.random()


class TestSigmaVectorNormals:
    """The channel field batches per-walk ``normal(0.0, sigma_i)`` draws
    into one ``normal(0.0, sigma_vector)`` call."""

    def test_normal_with_sigma_vector_matches_scalar_sequence(self):
        sigmas = [0.002, 0.002, 0.02, 0.08, 0.5, 0.0]
        batched_rng, scalar_rng = _pair(17)
        for _ in range(50):
            draws = batched_rng.normal(0.0, np.asarray(sigmas)).tolist()
            assert draws == [scalar_rng.normal(0.0, s) for s in sigmas]
        assert batched_rng.random() == scalar_rng.random()

    def test_elementwise_walk_update_matches_scalar_expression(self):
        """clip(cur + rev*(mean-cur) + z, lo, hi) elementwise equals the
        per-walk scalar expression, float for float."""
        rng = np.random.default_rng(23)
        cur = rng.uniform(0.2, 0.8, 16)
        z = rng.normal(0.0, 0.08, 16)
        batched = np.clip(cur + 0.02 * (0.5 - cur) + z, 0.0, 1.0).tolist()
        # The exact scalar expression BoundedRandomWalk.step evaluates.
        scalar = [float(np.clip(float(c) + 0.02 * (0.5 - float(c))
                                + float(e), 0.0, 1.0))
                  for c, e in zip(cur, z)]
        assert batched == scalar


class TestHotspotSample:
    def test_sample_equals_scalar_reference(self):
        hotspot = Hotspot(x=0.3, y=0.9, spread=0.08)
        batched_rng, scalar_rng = _pair(9)
        for _ in range(200):
            ex, ey = hotspot.sample(batched_rng)
            dx = scalar_rng.normal(0.0, hotspot.spread)
            dy = scalar_rng.normal(0.0, hotspot.spread)
            assert ex == min(1.0, max(0.0, hotspot.x + dx))
            assert ey == min(1.0, max(0.0, hotspot.y + dy))


class TestArenaStream:
    def test_step_stream_matches_scalar_reference(self):
        """Replay the arena's per-event draw sequence scalar-by-scalar."""
        arena = Arena.with_random_hotspots(
            n_hotspots=2, seed=5, hotspot_fraction=0.7,
            events_per_step=3.0, shift_times=[10.0])
        reference = Arena.with_random_hotspots(
            n_hotspots=2, seed=5, hotspot_fraction=0.7,
            events_per_step=3.0, shift_times=[10.0])
        rng = reference._rng
        shifted = 0
        for t in range(25):
            while (shifted < len(reference.shift_times)
                   and t >= reference.shift_times[shifted]):
                for hotspot in reference.hotspots:
                    hotspot.x = float(rng.uniform(0.15, 0.85))
                    hotspot.y = float(rng.uniform(0.15, 0.85))
                shifted += 1
            expected = []
            for _ in range(int(rng.poisson(reference.events_per_step))):
                if float(rng.random()) < reference.hotspot_fraction:
                    hotspot = reference.hotspots[
                        int(rng.integers(len(reference.hotspots)))]
                    dx = rng.normal(0.0, hotspot.spread)
                    dy = rng.normal(0.0, hotspot.spread)
                    expected.append(
                        (min(1.0, max(0.0, hotspot.x + dx)),
                         min(1.0, max(0.0, hotspot.y + dy))))
                else:
                    ex, ey = rng.uniform(0, 1, 2)
                    expected.append((float(ex), float(ey)))
            events = arena.step(float(t))
            assert [(e.x, e.y) for e in events] == expected
