"""The ``faults.hooks`` kernel must pair its legs the right way round.

The optimisation being measured is the *dormant* identity short-circuit:
the price substrates pay per step of an unfaulted window.  An earlier
report inverted the pairing (optimised leg = every fault active) and
published the intended relationship as a 0.24x "slowdown"; these tests
pin the pairing structurally and behaviourally so a swap cannot recur
as a plausible-looking number.
"""

from repro.bench.kernels import get_kernels

#: Any time inside the kernel's timed window (t starts at 0 and
#: advances by 1 per step; runs are tens of thousands of steps).
T = 1000.0


def _injectors():
    spec = get_kernels(["faults.hooks"])[0]
    fast_run = spec.setup()
    naive_run = spec.baseline_setup()
    return spec, fast_run.injector, naive_run.injector


class TestFaultHooksPairing:
    def test_setup_is_dormant_baseline_is_active(self):
        spec, fast_inj, naive_inj = _injectors()
        assert spec.baseline_setup is not None
        # Structural: the optimised leg's windows all open after the
        # run; the baseline's are all open during it.
        assert list(fast_inj.plan.active(T)) == []
        assert len(list(naive_inj.plan.active(T))) == \
            len(naive_inj.plan.specs)

    def test_dormant_hooks_are_identities(self):
        _, fast_inj, naive_inj = _injectors()
        fast_inj.begin_step(T)
        naive_inj.begin_step(T)
        population = tuple(range(16))
        # The optimised leg takes every identity short-circuit...
        assert fast_inj.perturb(1.0, target="qos") == 1.0
        assert fast_inj.dropped(target="qos") is False
        assert fast_inj.crashed_targets(population) == frozenset()
        assert fast_inj.link_factor() == 1.0
        assert fast_inj.demand_factor() == 1.0
        assert fast_inj.perceived_time(T) == T
        # ...while the baseline's open windows actually do work.
        assert naive_inj.crashed_targets(population) != frozenset()
        assert naive_inj.link_factor() != 1.0
        assert naive_inj.perceived_time(T) != T

    def test_description_names_the_relationship(self):
        spec, _, _ = _injectors()
        assert spec.description.index("dormant") < \
            spec.description.index("active")
