"""Byte-identical experiment tables: shard payloads vs committed golden.

``golden_shard_payloads.json`` was generated from the pre-optimisation
code.  The optimisation pass must not move a single float, so a fresh
run of the same shards must serialise to exactly the committed JSON.
These are the slowest tests in the suite but the strongest guarantee
the paper tables survived the kernel rewrite.
"""

import json
import os

import pytest

from repro.experiments import e1_levels, e2_camera, e6_cpn, e12_swarm

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_shard_payloads.json")

SHARDS = {
    "E1": lambda: e1_levels.run_shard(0, steps=200),
    "E2": lambda: e2_camera.run_shard(0, steps=120),
    "E6": lambda: e6_cpn.run_shard(0, n_nodes=20, steps=150),
    "E12": lambda: e12_swarm.run_shard(0, steps=200, n_robots=9),
}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("experiment", sorted(SHARDS))
def test_shard_payload_matches_golden(golden, experiment):
    fresh = json.dumps(SHARDS[experiment](), sort_keys=True)
    committed = json.dumps(golden[experiment], sort_keys=True)
    assert fresh == committed, (
        f"{experiment} shard payload drifted from the committed golden -- "
        f"an optimisation changed experiment arithmetic")
