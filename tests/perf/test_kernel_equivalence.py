"""Optimised hot paths must equal their retained naive references.

Every optimisation in the kernel pass (spatial grids, gated Dijkstra,
memoised window statistics, pure-python bandits, bounded attribution)
keeps the pre-optimisation implementation selectable.  These tests drive
both variants over identical seeded scenarios and require *exact*
equality -- the experiment tables must be byte-identical, so "close" is
not good enough.
"""

import json
import math

import numpy as np

from repro.core.knowledge import History
from repro.core.spans import Scope
from repro.cpn.routing import OracleRouter
from repro.cpn.sim import default_flows, routing_step
from repro.cpn.topology import CPNetwork
from repro.learning.bandits import EpsilonGreedy
from repro.smartcamera.network import CameraNetwork
from repro.smartcamera.objects import MovingObject
from repro.swarm.robots import SelfAwareSwarm
from repro.swarm.sim import SwarmMission, SwarmMissionConfig


def _record_dict(record):
    slots = getattr(type(record), "__slots__", None)
    if slots:
        return {name: getattr(record, name) for name in slots}
    return dict(record.__dict__)


class TestCameraGridEquivalence:
    def _objects(self, n=40, seed=9):
        rng = np.random.default_rng(seed)
        return [MovingObject(i, rng.uniform(0, 1), rng.uniform(0, 1),
                             speed=0.02, rng=np.random.default_rng(100 + i))
                for i in range(n)]

    def test_queries_match_naive_scan(self):
        cams = CameraNetwork.random(30, radius=0.2, seed=2, use_grid=True)
        naive = CameraNetwork(list(cams.cameras.values()), use_grid=False)
        for obj in self._objects():
            assert cams.observers(obj) == naive.observers(obj)
            assert cams.best_observer(obj) == naive.best_observer(obj)

    def test_grid_matches_on_grid_layout(self):
        cams = CameraNetwork.grid(5, 5, radius=0.3, use_grid=True)
        naive = CameraNetwork.grid(5, 5, radius=0.3, use_grid=False)
        for obj in self._objects(seed=11):
            assert cams.observers(obj) == naive.observers(obj)
            assert cams.best_observer(obj) == naive.best_observer(obj)


class TestCameraSimEquivalence:
    def _run(self, optimised):
        from repro.learning import bandits
        from repro.smartcamera.controller import SelfAwareStrategyController
        from repro.smartcamera.sim import CameraSimConfig, CameraSimulation

        config = CameraSimConfig(rows=4, cols=4, n_objects=18, steps=150,
                                 object_speed=0.04, detection_rate=0.2,
                                 random_placement=True, seed=3)
        prev = bandits.USE_FAST_BANDIT
        bandits.USE_FAST_BANDIT = optimised
        try:
            sim = CameraSimulation(
                config,
                controller_factory=lambda cid, rng: SelfAwareStrategyController(
                    cid, epsilon=0.1, rng=rng))
        finally:
            bandits.USE_FAST_BANDIT = prev
        if not optimised:
            sim.network = CameraNetwork(list(sim.network.cameras.values()),
                                        use_grid=False)
        return sim.run()

    def test_full_sim_records_identical(self):
        # End to end over the whole market/learning stack: the grid
        # (observer queries + bid-loop pruning) and the fast bandits must
        # reproduce every step record of the naive run exactly.
        fast = self._run(True)
        naive = self._run(False)
        assert len(fast.records) == len(naive.records)
        for a, b in zip(fast.records, naive.records):
            assert _record_dict(a) == _record_dict(b)


class TestSwarmFastEquivalence:
    def _run(self, fast):
        controller = SelfAwareSwarm(rng=np.random.default_rng(7), fast=fast)
        config = SwarmMissionConfig(n_robots=14, steps=160,
                                    events_per_step=4.0, seed=1)
        mission = SwarmMission(controller, config, use_grid=fast)
        return [mission.step(float(t)) for t in range(config.steps)]

    def test_mission_records_identical(self):
        fast = self._run(True)
        naive = self._run(False)
        assert len(fast) == len(naive)
        for a, b in zip(fast, naive):
            assert _record_dict(a) == _record_dict(b)


class TestGatedOracleEquivalence:
    def _run(self, gated):
        network = CPNetwork.random_geometric(n=24, seed=5)
        network.schedule_random_disturbances(horizon=4000.0, count=8)
        router = OracleRouter(network, gated=gated)
        flows = default_flows(network, n_flows=5, seed=5)
        return [routing_step(network, router, flows, float(t))
                for t in range(250)]

    def test_routing_records_identical(self):
        gated = self._run(True)
        naive = self._run(False)
        for a, b in zip(gated, naive):
            da, db = _record_dict(a), _record_dict(b)
            # NaN (no delivery that step) compares unequal to itself.
            na, nb = da.pop("mean_delay"), db.pop("mean_delay")
            assert da == db
            assert (na == nb) or (math.isnan(na) and math.isnan(nb))


class TestWindowStatsEquivalence:
    def test_memoised_stats_equal_naive(self):
        history = History(Scope("load"), maxlen=64)
        rng = np.random.default_rng(3)
        for t in range(200):
            history.record(float(t), float(rng.normal()))
            for window in (None, 1, 5, 32, 64, 500):
                assert history.values(window) == history.values_naive(window)
                assert history.mean(window) == history.mean_naive(window)
                assert history.std(window) == history.std_naive(window)
                assert history.trend(window) == history.trend_naive(window)

    def test_cache_invalidated_by_record(self):
        history = History(Scope("x"))
        history.record(0.0, 1.0)
        assert history.mean(4) == 1.0
        history.record(1.0, 3.0)
        assert history.mean(4) == 2.0


class TestBanditFastEquivalence:
    def test_decision_stream_identical(self):
        fast = EpsilonGreedy(5, epsilon=0.2, discount=0.97,
                             rng=np.random.default_rng(42), fast=True)
        naive = EpsilonGreedy(5, epsilon=0.2, discount=0.97,
                              rng=np.random.default_rng(42), fast=False)
        reward_rng = np.random.default_rng(7)
        for _ in range(500):
            a, b = fast.select(), naive.select()
            assert a == b
            reward = float(reward_rng.normal(0.1 * a, 0.3))
            fast.update(a, reward)
            naive.update(b, reward)
        for arm in range(5):
            assert fast.value(arm) == naive.value(arm)


class TestMissionTablesJSONStable:
    def test_detection_rates_serialise_identically(self):
        # End-to-end guard on the numbers that reach the E12 table: the
        # aggregated detection rates must serialise to identical JSON
        # under the fast and naive paths.
        from repro.swarm.sim import run_mission

        def run(fast):
            controller = SelfAwareSwarm(rng=np.random.default_rng(500),
                                        fast=fast)
            config = SwarmMissionConfig(n_robots=9, steps=120, seed=0)
            result = run_mission(controller, config, use_grid=fast)
            return [result.detection_rate(),
                    result.detection_rate(0.0, 48.0),
                    result.detection_rate(54.0, 84.0)]

        assert (json.dumps(run(True), sort_keys=True)
                == json.dumps(run(False), sort_keys=True))
