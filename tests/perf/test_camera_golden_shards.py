"""Camera shard payloads: byte-identical across jobs and across paths.

The struct-of-arrays camera rewrite is only admissible if the E2 tables
cannot tell it happened.  Two axes of identity, both at JSON-byte
granularity:

- **jobs-1 vs jobs-4** -- the engine's worker pool must not perturb a
  single float (fork workers share the parent's flag state, so this
  also holds on CI's forced-naive leg);
- **fast vs naive** -- the columnised observer/best-observer scans and
  the merged utility+auction step against the object-graph reference,
  with and without the spatial grid.
"""

import json

import pytest

from repro.experiments import e2_camera
from repro.experiments.engine import (SuiteJob, canonical_suite_text,
                                      run_suite)
from repro.smartcamera import network
from repro.smartcamera import sim as camera_sim


def _e2_job(seeds):
    return [SuiteJob(name="E2", module="repro.experiments.e2_camera",
                     shard_fn="run_shard", reduce_fn="reduce",
                     seeds=tuple(seeds), params={"steps": 120})]


@pytest.fixture
def naive_flags():
    """Flip the camera fast-path defaults to naive for the duration."""
    saved = (camera_sim.USE_FAST_CAMERA, network.USE_FAST_SCANS,
             network.USE_SPATIAL_GRID)
    camera_sim.USE_FAST_CAMERA = False
    network.USE_FAST_SCANS = False
    network.USE_SPATIAL_GRID = False
    try:
        yield
    finally:
        (camera_sim.USE_FAST_CAMERA, network.USE_FAST_SCANS,
         network.USE_SPATIAL_GRID) = saved


class TestCameraShardsAcrossJobs:
    def test_jobs_1_vs_4_payloads_identical(self):
        seeds = (0, 1, 2, 3)
        serial = [e2_camera.run_shard(s, steps=120) for s in seeds]
        parallel = run_suite(_e2_job(seeds), n_jobs=4)
        engine_serial = run_suite(_e2_job(seeds), n_jobs=1)
        assert (canonical_suite_text(engine_serial.tables)
                == canonical_suite_text(parallel.tables))
        # The reduced table equals reducing the in-process payloads,
        # so the worker-pool payloads were byte-identical too.
        direct = e2_camera.reduce(serial, seeds=seeds, steps=120)
        assert (canonical_suite_text([direct])
                == canonical_suite_text(parallel.tables))


class TestCameraShardsFastVsNaive:
    def test_shard_payload_identical_fast_vs_naive(self, naive_flags):
        naive = json.dumps(e2_camera.run_shard(0, steps=120),
                           sort_keys=True)
        camera_sim.USE_FAST_CAMERA = True
        network.USE_FAST_SCANS = True
        network.USE_SPATIAL_GRID = True
        fast = json.dumps(e2_camera.run_shard(0, steps=120),
                          sort_keys=True)
        assert fast == naive

    def test_grid_alone_identical_too(self, naive_flags):
        """The naive-with-grid middle path matches the no-grid one."""
        naive = json.dumps(e2_camera.run_shard(1, steps=120),
                           sort_keys=True)
        network.USE_SPATIAL_GRID = True
        gridded = json.dumps(e2_camera.run_shard(1, steps=120),
                             sort_keys=True)
        assert gridded == naive
