"""Tests for trade-off management quality metrics."""

import math

import pytest

from repro.core.goals import Constraint, Goal, Objective
from repro.core.loop import Trace, TraceStep
from repro.metrics.tradeoff import (adaptation_after, phase_utilities,
                                    stability, tradeoff_summary,
                                    violation_rate)


def make_trace(utilities, actions=None, metrics_fn=None):
    trace = Trace(node_name="n")
    for t, u in enumerate(utilities):
        action = actions[t] if actions else "a"
        metrics = metrics_fn(t, u) if metrics_fn else {"perf": u}
        trace.append(TraceStep(time=float(t), action=action, metrics=metrics,
                               utility=u, explored=False, sensing_cost=0.0))
    return trace


@pytest.fixture
def goal():
    return Goal([Objective("perf")],
                constraints=[Constraint("perf", "min", 0.2)])


class TestPhaseUtilities:
    def test_splits_at_change_points(self):
        trace = make_trace([1.0] * 10 + [0.0] * 10)
        phases = phase_utilities(trace, [10.0])
        assert phases[0] == pytest.approx(1.0, abs=0.01)
        assert phases[1] == pytest.approx(0.0, abs=0.11)

    def test_empty_trace(self):
        assert phase_utilities(Trace(node_name="n"), [5.0]) == []


class TestAdaptationAfter:
    def test_recovery_detected(self):
        # Good (0.9), dip to 0.1 for 10 steps, recover to 0.9.
        utilities = [0.9] * 50 + [0.1] * 10 + [0.9] * 60
        trace = make_trace(utilities)
        report = adaptation_after(trace, change_time=50.0, window=30.0)
        assert report.pre_change_utility == pytest.approx(0.9)
        assert report.dip_utility == pytest.approx(0.1)
        assert report.recovered
        assert 10.0 <= report.recovery_time <= 20.0

    def test_no_recovery(self):
        utilities = [0.9] * 50 + [0.1] * 100
        trace = make_trace(utilities)
        report = adaptation_after(trace, change_time=50.0, window=30.0)
        assert not report.recovered
        assert report.dip_depth == pytest.approx(0.8)


class TestViolationRate:
    def test_counts_constraint_violations(self, goal):
        trace = make_trace([0.5, 0.1, 0.5, 0.1])
        assert violation_rate(trace, goal) == pytest.approx(0.5)

    def test_zero_without_constraints(self):
        goal = Goal([Objective("perf")])
        trace = make_trace([0.0, 0.0])
        assert violation_rate(trace, goal) == 0.0


class TestStability:
    def test_never_changes(self):
        trace = make_trace([0.5] * 5)
        assert stability(trace) == 1.0

    def test_always_changes(self):
        trace = make_trace([0.5] * 4, actions=["a", "b", "a", "b"])
        assert stability(trace) == 0.0

    def test_short_trace(self):
        assert stability(make_trace([0.5])) == 1.0


class TestTradeoffSummary:
    def test_has_core_keys(self, goal):
        trace = make_trace([0.5] * 20)
        summary = tradeoff_summary(trace, goal)
        assert set(summary) >= {"mean_utility", "violation_rate", "stability",
                                "sensing_cost"}

    def test_change_point_keys_present_when_given(self, goal):
        trace = make_trace([0.9] * 50 + [0.1] * 10 + [0.9] * 60)
        summary = tradeoff_summary(trace, goal, change_times=[50.0])
        assert "worst_phase_utility" in summary
        assert "mean_recovery_time" in summary
        assert summary["recovered_fraction"] == 1.0


class TestStats:
    def test_summarise_basic(self):
        from repro.metrics.stats import summarise
        s = summarise([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.lo <= s.mean <= s.hi
        assert s.n == 3

    def test_summarise_drops_nans(self):
        from repro.metrics.stats import summarise
        s = summarise([1.0, math.nan, 3.0])
        assert s.n == 2

    def test_summarise_empty(self):
        from repro.metrics.stats import summarise
        s = summarise([])
        assert math.isnan(s.mean) and s.n == 0

    def test_summarise_singleton(self):
        from repro.metrics.stats import summarise
        s = summarise([5.0])
        assert s.mean == s.lo == s.hi == 5.0

    def test_compare_paired(self):
        from repro.metrics.stats import compare_paired
        c = compare_paired([1.0, 2.0, 3.0], [0.5, 1.5, 2.5])
        assert c.treatment_wins
        assert c.win_rate == 1.0
        assert c.mean_diff == pytest.approx(0.5)

    def test_compare_paired_length_mismatch(self):
        from repro.metrics.stats import compare_paired
        with pytest.raises(ValueError):
            compare_paired([1.0], [1.0, 2.0])

    def test_improvement_factor(self):
        from repro.metrics.stats import improvement_factor
        assert improvement_factor(2.0, 1.0) == 2.0
        assert improvement_factor(1.0, 0.0) == math.inf
        assert math.isnan(improvement_factor(math.nan, 1.0))
