"""Tests for Pareto metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.pareto import (coverage, hypervolume, hypervolume_2d,
                                  hypervolume_mc, spread)


class TestHypervolume2D:
    def test_single_point(self):
        assert hypervolume_2d([(0.5, 0.5)]) == pytest.approx(0.25)

    def test_dominated_point_adds_nothing(self):
        hv1 = hypervolume_2d([(0.5, 0.5)])
        hv2 = hypervolume_2d([(0.5, 0.5), (0.3, 0.3)])
        assert hv1 == pytest.approx(hv2)

    def test_two_nondominated_points(self):
        hv = hypervolume_2d([(1.0, 0.5), (0.5, 1.0)])
        # 0.5*1.0 + 0.5*0.5 = 0.75
        assert hv == pytest.approx(0.75)

    def test_empty_and_below_reference(self):
        assert hypervolume_2d([]) == 0.0
        assert hypervolume_2d([(0.2, 0.2)], reference=(0.5, 0.5)) == 0.0

    def test_unit_corner_fills_box(self):
        assert hypervolume_2d([(1.0, 1.0)]) == pytest.approx(1.0)

    @given(st.lists(st.tuples(st.floats(0.01, 1), st.floats(0.01, 1)),
                    min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_points(self, pts):
        # Adding a point never decreases hypervolume.
        base = hypervolume_2d(pts[:-1]) if len(pts) > 1 else 0.0
        assert hypervolume_2d(pts) >= base - 1e-12


class TestHypervolumeMC:
    def test_agrees_with_exact_2d(self):
        pts = [(0.9, 0.3), (0.5, 0.7), (0.2, 0.95)]
        exact = hypervolume_2d(pts)
        mc = hypervolume_mc(pts, samples=50000, rng=np.random.default_rng(0))
        assert mc == pytest.approx(exact, abs=0.02)

    def test_three_objectives(self):
        hv = hypervolume_mc([(1.0, 1.0, 1.0)], samples=5000,
                            rng=np.random.default_rng(1))
        assert hv == pytest.approx(1.0)

    def test_empty(self):
        assert hypervolume_mc([]) == 0.0

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            hypervolume_mc([(0.5, 0.5)], reference=(1.0, 1.0), bound=(0.5, 0.5))


class TestDispatch:
    def test_dispatches_2d_exact(self):
        assert hypervolume([(0.5, 0.5)]) == pytest.approx(0.25)

    def test_dispatches_nd_mc(self):
        hv = hypervolume([(0.5, 0.5, 0.5)], samples=20000)
        assert hv == pytest.approx(0.125, abs=0.01)


class TestCoverage:
    def test_full_coverage(self):
        a = [(1.0, 1.0)]
        b = [(0.5, 0.5), (0.2, 0.9)]
        assert coverage(a, b) == 1.0

    def test_no_coverage(self):
        assert coverage([(0.1, 0.1)], [(0.5, 0.5)]) == 0.0

    def test_equal_points_count_as_covered(self):
        assert coverage([(0.5, 0.5)], [(0.5, 0.5)]) == 1.0

    def test_empty_b(self):
        assert coverage([(1.0, 1.0)], []) == 0.0

    def test_asymmetric(self):
        a = [(1.0, 0.0), (0.0, 1.0)]
        b = [(0.5, 0.5)]
        assert coverage(a, b) == 0.0
        assert coverage(b, a) == 0.0


class TestSpread:
    def test_fewer_than_two_points(self):
        assert spread([]) == 0.0
        assert spread([(0.5, 0.5)]) == 0.0

    def test_wider_front_has_larger_spread(self):
        narrow = [(0.5, 0.5), (0.52, 0.48)]
        wide = [(1.0, 0.0), (0.0, 1.0)]
        assert spread(wide) > spread(narrow)
