"""Tests for regret metrics."""

import math

import pytest

from repro.metrics.regret import (cumulative_regret, instantaneous_regret,
                                  normalised_regret, regret_slope,
                                  total_regret)


class TestInstantaneousRegret:
    def test_basic(self):
        assert instantaneous_regret([1.0, 1.0], [0.5, 1.0]) == [0.5, 0.0]

    def test_clipped_at_zero(self):
        assert instantaneous_regret([0.5], [1.0]) == [0.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            instantaneous_regret([1.0], [1.0, 2.0])


class TestCumulativeRegret:
    def test_running_sum(self):
        assert cumulative_regret([1, 1, 1], [0, 1, 0]) == [1.0, 1.0, 2.0]

    def test_total(self):
        assert total_regret([1, 1, 1], [0, 1, 0]) == 2.0
        assert total_regret([], []) == 0.0


class TestNormalisedRegret:
    def test_fraction_of_value_forgone(self):
        assert normalised_regret([1, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_zero_optimal(self):
        assert normalised_regret([0, 0], [0, 0]) == 0.0

    def test_perfect_play(self):
        assert normalised_regret([1, 2, 3], [1, 2, 3]) == 0.0


class TestRegretSlope:
    def test_converged_learner_has_flat_tail(self):
        optimal = [1.0] * 100
        achieved = [0.0] * 50 + [1.0] * 50  # converges at midpoint
        assert regret_slope(optimal, achieved, tail_fraction=0.25) == 0.0

    def test_nonlearner_keeps_paying(self):
        optimal = [1.0] * 100
        achieved = [0.5] * 100
        assert regret_slope(optimal, achieved) == pytest.approx(0.5)

    def test_empty_is_nan(self):
        assert math.isnan(regret_slope([], []))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            regret_slope([1.0], [1.0], tail_fraction=0.0)
