"""E14: the serving sweep's scoring, acceptance claim and replay."""

import json

import pytest

from repro.api import ServeConfig
from repro.experiments import e14_serving as e14

SHARD_KW = dict(steps=240, loads=(4.0, 16.0))


@pytest.fixture(scope="module")
def shard():
    """One seed at smoke size, shared across tests."""
    return e14.run_shard(0, **SHARD_KW)


class TestShardScores:
    def test_payload_shape(self, shard):
        assert set(shard) == set(e14.ARMS)
        for arm in e14.ARMS:
            assert set(shard[arm]) == {"4", "16"}
            for cell in shard[arm].values():
                assert set(cell) == {"goodput", "p95_latency",
                                     "shed_fraction", "mean_pool",
                                     "slo_attainment", "offered"}

    def test_shard_is_json_safe_and_deterministic(self):
        again = e14.run_shard(0, **SHARD_KW)
        first = e14.run_shard(0, **SHARD_KW)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_goodput_cannot_exceed_offered(self, shard):
        for arm in e14.ARMS:
            for cell in shard[arm].values():
                assert cell["goodput"] <= cell["offered"] + 1e-9

    def test_both_arms_serve_the_light_load(self, shard):
        """At 4 req/tick either pool keeps up; the arms only separate
        under pressure."""
        for arm in e14.ARMS:
            cell = shard[arm]["4"]
            assert cell["goodput"] > 0.8 * 4.0
            assert cell["shed_fraction"] < 0.2


class TestHeadlineClaim:
    """The PR's acceptance claim at full experiment size: at the highest
    offered load the governor sustains at least 1.5x the static pool's
    goodput while keeping p95 latency within the SLO."""

    def test_governor_beats_static_within_slo_at_full_size(self):
        top = max(e14.LOADS)
        shard = e14.run_shard(0, steps=e14.STEPS, loads=(top,))
        static = shard["static"][f"{top:g}"]
        governor = shard["governor"][f"{top:g}"]
        assert governor["goodput"] >= 1.5 * static["goodput"]
        assert governor["p95_latency"] <= ServeConfig().slo_p95


class TestReduce:
    def test_table_shape_and_values(self, shard):
        table = e14.reduce([shard], seeds=(0,), **SHARD_KW)
        assert table.experiment_id == "E14"
        assert len(table.rows) == len(SHARD_KW["loads"]) * len(e14.ARMS)
        first = table.rows[0]
        assert set(first) == {"offered_load", "arm", "goodput",
                              "p95_latency", "shed_fraction", "mean_pool",
                              "slo_attainment"}
        arms_per_load = {row["offered_load"] for row in table.rows}
        assert arms_per_load == {4.0, 16.0}

    def test_ratio_note_lands_in_the_table(self, shard):
        table = e14.reduce([shard], seeds=(0,), **SHARD_KW)
        assert "governor goodput is" in table.notes

    def test_seed_averaging(self, shard):
        """Averaging a shard with itself changes nothing."""
        once = e14.reduce([shard], seeds=(0,), **SHARD_KW)
        twice = e14.reduce([shard, shard], seeds=(0, 1), **SHARD_KW)
        for a, b in zip(once.rows, twice.rows):
            assert a == b
