"""E16: the cluster sweep's scoring, acceptance claim and replay."""

import json

import pytest

from repro.experiments import e16_cluster as e16

SHARD_KW = dict(steps=250, tiers=("skewed", "flash"))


@pytest.fixture(scope="module")
def shard():
    """One seed at smoke size, shared across tests."""
    return e16.run_shard(0, **SHARD_KW)


class TestShardScores:
    def test_payload_shape(self, shard):
        assert set(shard) == set(e16.ARMS)
        for arm in e16.ARMS:
            assert set(shard[arm]) == set(SHARD_KW["tiers"])
            for cell in shard[arm].values():
                assert set(cell) == set(e16.METRIC_KEYS)

    def test_shard_is_json_safe_and_deterministic(self):
        first = e16.run_shard(0, **SHARD_KW)
        again = e16.run_shard(0, **SHARD_KW)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_goodput_cannot_exceed_offered(self, shard):
        for arm in e16.ARMS:
            for cell in shard[arm].values():
                assert cell["goodput"] <= cell["offered"] + 1e-9

    def test_only_the_collective_arm_gossips_or_migrates(self, shard):
        for tier in SHARD_KW["tiers"]:
            assert shard["collective"][tier]["collective_fraction"] > 0.9
            for arm in ("per_node", "static"):
                assert shard[arm][tier]["collective_fraction"] == 0.0
                assert shard[arm][tier]["migrations"] == 0.0


class TestHeadlineClaim:
    """The PR's acceptance claim: under skewed traffic the collective
    arm sustains at least 1.3x the per-node arm's goodput from the same
    cluster-wide worker budget."""

    def test_collective_beats_per_node_under_skew_at_full_size(self):
        shard = e16.run_shard(0, steps=e16.STEPS, tiers=("skewed",))
        per_node = shard["per_node"]["skewed"]["goodput"]
        collective = shard["collective"]["skewed"]["goodput"]
        assert collective >= 1.3 * per_node

    def test_collective_beats_per_node_under_flash(self, shard):
        flash = shard["collective"]["flash"]["goodput"]
        per_node = shard["per_node"]["flash"]["goodput"]
        assert flash > per_node


class TestReduce:
    def test_table_shape_and_values(self, shard):
        table = e16.reduce([shard], seeds=(0,), **SHARD_KW)
        assert table.experiment_id == "E16"
        assert len(table.rows) == len(SHARD_KW["tiers"]) * len(e16.ARMS)
        first = table.rows[0]
        assert set(first) == {"traffic", "arm", "goodput", "p95_latency",
                              "shed_fraction", "mean_pool", "migrations",
                              "collective_fraction"}

    def test_ratio_note_lands_in_the_table(self, shard):
        table = e16.reduce([shard], seeds=(0,), **SHARD_KW)
        assert "collective goodput is" in table.notes

    def test_seed_averaging(self, shard):
        """Averaging a shard with itself changes nothing."""
        once = e16.reduce([shard], seeds=(0,), **SHARD_KW)
        twice = e16.reduce([shard, shard], seeds=(0, 1), **SHARD_KW)
        for a, b in zip(once.rows, twice.rows):
            assert a == b
