"""Tests for the experiment harness."""

import math

import pytest

from repro.experiments.harness import (ExperimentTable, format_table,
                                       print_tables, to_markdown,
                                       write_markdown_report)


@pytest.fixture
def table():
    t = ExperimentTable(experiment_id="EX", title="demo",
                        columns=["name", "score", "count"])
    t.add_row(name="a", score=0.5, count=3)
    t.add_row(name="b", score=0.9, count=1)
    return t


class TestExperimentTable:
    def test_add_row_rejects_unknown_columns(self, table):
        with pytest.raises(ValueError):
            table.add_row(name="c", bogus=1.0)

    def test_column_extraction(self, table):
        assert table.column("score") == [0.5, 0.9]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_row_by(self, table):
        assert table.row_by("name", "b")["score"] == 0.9
        with pytest.raises(KeyError):
            table.row_by("name", "zzz")

    def test_best_row(self, table):
        assert table.best_row("score")["name"] == "b"
        assert table.best_row("score", maximise=False)["name"] == "a"

    def test_best_row_ignores_nan(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a", v=math.nan)
        t.add_row(name="b", v=1.0)
        assert t.best_row("v")["name"] == "b"

    def test_best_row_all_nan_raises(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a", v=math.nan)
        with pytest.raises(ValueError):
            t.best_row("v")

    def test_missing_cell_renders_dash(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a")
        assert "-" in format_table(t)


class TestFormatting:
    def test_format_contains_all_cells(self, table):
        text = format_table(table)
        assert "EX" in text and "demo" in text
        assert "0.500" in text and "0.900" in text

    def test_nan_rendered(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=math.nan)
        assert "nan" in format_table(t)

    def test_large_values_use_scientific(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=123456.789)
        assert "e+" in format_table(t)

    def test_notes_appended(self, table):
        table.notes = "important caveat"
        assert "important caveat" in format_table(table)

    def test_print_tables(self, table, capsys):
        print_tables([table, table])
        out = capsys.readouterr().out
        assert out.count("== EX") == 2


class TestMarkdown:
    def test_to_markdown_structure(self, table):
        md = to_markdown(table)
        lines = md.splitlines()
        assert lines[0].startswith("## EX")
        assert "| name | score | count |" in md
        assert "| a | 0.500 | 3 |" in md

    def test_notes_italicised(self, table):
        table.notes = "caveat"
        assert "*caveat*" in to_markdown(table)

    def test_write_markdown_report(self, table, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report([table, table], str(path), title="Demo")
        content = path.read_text()
        assert content.startswith("# Demo")
        assert content.count("## EX") == 2
