"""Tests for the experiment harness."""

import math

import pytest

from repro.experiments.harness import (ExperimentTable, _format_cell,
                                       format_table, print_tables,
                                       run_with_provenance, to_markdown,
                                       write_markdown_report)
from repro.obs import TelemetrySession


@pytest.fixture
def table():
    t = ExperimentTable(experiment_id="EX", title="demo",
                        columns=["name", "score", "count"])
    t.add_row(name="a", score=0.5, count=3)
    t.add_row(name="b", score=0.9, count=1)
    return t


class TestExperimentTable:
    def test_add_row_rejects_unknown_columns(self, table):
        with pytest.raises(ValueError):
            table.add_row(name="c", bogus=1.0)

    def test_column_extraction(self, table):
        assert table.column("score") == [0.5, 0.9]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_row_by(self, table):
        assert table.row_by("name", "b")["score"] == 0.9
        with pytest.raises(KeyError):
            table.row_by("name", "zzz")

    def test_best_row(self, table):
        assert table.best_row("score")["name"] == "b"
        assert table.best_row("score", maximise=False)["name"] == "a"

    def test_best_row_ignores_nan(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a", v=math.nan)
        t.add_row(name="b", v=1.0)
        assert t.best_row("v")["name"] == "b"

    def test_best_row_all_nan_raises(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a", v=math.nan)
        with pytest.raises(ValueError):
            t.best_row("v")

    def test_missing_cell_renders_dash(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a")
        assert "-" in format_table(t)

    def test_add_row_stores_a_copy(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        values = {"name": "a", "v": 1.0}
        t.add_row(**values)
        values["v"] = 99.0
        values["name"] = "corrupted"
        assert t.rows[0] == {"name": "a", "v": 1.0}

    def test_rows_independent_across_calls(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=1.0)
        t.add_row(v=2.0)
        t.rows[0]["v"] = -1.0
        assert t.rows[1]["v"] == 2.0

    def test_row_by_missing_column_raises_keyerror(self):
        t = ExperimentTable("EX", "demo", columns=["name"])
        t.add_row(name="a")
        with pytest.raises(KeyError):
            t.row_by("nonexistent", "a")

    def test_best_row_non_numeric_column_raises(self):
        t = ExperimentTable("EX", "demo", columns=["name", "v"])
        t.add_row(name="a", v="not-a-number")
        t.add_row(name="b")  # missing entirely
        with pytest.raises(ValueError):
            t.best_row("v")

    def test_best_row_empty_table_raises(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        with pytest.raises(ValueError):
            t.best_row("v")

    def test_append_note_preserves_existing(self):
        t = ExperimentTable("EX", "demo", columns=["v"], notes="first")
        t.append_note("second")
        assert t.notes == "first; second"
        t2 = ExperimentTable("EX", "demo", columns=["v"])
        t2.append_note("only")
        assert t2.notes == "only"


class TestFormatCell:
    def test_none_is_dash(self):
        assert _format_cell(None) == "-"

    def test_nan_is_nan(self):
        assert _format_cell(math.nan) == "nan"

    def test_zero(self):
        assert _format_cell(0.0) == "0.000"

    def test_plain_range_fixed_point(self):
        assert _format_cell(0.001) == "0.001"
        assert _format_cell(9999.4) == "9999.400"

    def test_negative_floats(self):
        # Negative values use the same magnitude thresholds as positive.
        assert _format_cell(-0.5) == "-0.500"
        assert _format_cell(-9999.0) == "-9999.000"
        assert _format_cell(-123456.789) == "-1.23e+05"
        assert _format_cell(-0.0001) == "-1.00e-04"

    def test_large_magnitude_scientific(self):
        assert _format_cell(10000.0) == "1.00e+04"
        assert _format_cell(1e300) == "1.00e+300"

    def test_small_magnitude_scientific(self):
        assert _format_cell(0.0009) == "9.00e-04"

    def test_infinities(self):
        assert _format_cell(math.inf) == "inf"
        assert _format_cell(-math.inf) == "-inf"

    def test_ints_and_strings_pass_through(self):
        assert _format_cell(123456) == "123456"
        assert _format_cell("label") == "label"


class TestRunWithProvenance:
    def _table(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=1.0)
        return t

    def test_wall_clock_note_without_telemetry(self):
        result = run_with_provenance(lambda: self._table())
        assert "wall " in result.notes
        assert "steps" not in result.notes

    def test_existing_notes_preserved(self):
        def job():
            t = self._table()
            t.notes = "original"
            return t
        result = run_with_provenance(job)
        assert result.notes.startswith("original; wall ")

    def test_list_of_tables_all_stamped(self):
        result = run_with_provenance(lambda: [self._table(), self._table()])
        assert all("wall " in t.notes for t in result)

    def test_telemetry_adds_step_rate(self):
        def job():
            from repro.obs import get_registry
            get_registry().counter("steps", sim="fake").increment(500)
            return self._table()
        session = TelemetrySession()
        result = run_with_provenance(job, telemetry=session)
        assert "500 steps" in result.notes
        assert "steps/s [telemetry]" in result.notes

    def test_telemetry_counts_only_this_run(self):
        session = TelemetrySession()
        with session:
            session.registry.counter("steps", sim="earlier").increment(100)
            def job():
                session.registry.counter("steps", sim="now").increment(50)
                return self._table()
            result = run_with_provenance(job, telemetry=session)
        assert "50 steps" in result.notes

    def test_kwargs_forwarded(self):
        def job(v):
            t = ExperimentTable("EX", "demo", columns=["v"])
            t.add_row(v=v)
            return t
        result = run_with_provenance(job, v=42.0)
        assert result.rows[0]["v"] == 42.0


class TestFormatting:
    def test_format_contains_all_cells(self, table):
        text = format_table(table)
        assert "EX" in text and "demo" in text
        assert "0.500" in text and "0.900" in text

    def test_nan_rendered(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=math.nan)
        assert "nan" in format_table(t)

    def test_large_values_use_scientific(self):
        t = ExperimentTable("EX", "demo", columns=["v"])
        t.add_row(v=123456.789)
        assert "e+" in format_table(t)

    def test_notes_appended(self, table):
        table.notes = "important caveat"
        assert "important caveat" in format_table(table)

    def test_print_tables(self, table, capsys):
        print_tables([table, table])
        out = capsys.readouterr().out
        assert out.count("== EX") == 2


class TestMarkdown:
    def test_to_markdown_structure(self, table):
        md = to_markdown(table)
        lines = md.splitlines()
        assert lines[0].startswith("## EX")
        assert "| name | score | count |" in md
        assert "| a | 0.500 | 3 |" in md

    def test_notes_italicised(self, table):
        table.notes = "caveat"
        assert "*caveat*" in to_markdown(table)

    def test_write_markdown_report(self, table, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report([table, table], str(path), title="Demo")
        content = path.read_text()
        assert content.startswith("# Demo")
        assert content.count("## EX") == 2
