"""E15: explanation at scale -- sublinear queries, bounded store memory.

The acceptance claim behind ``repro.explain``: ``why_aggregate`` over a
million-event stream answers from rollups, never by replaying raw
events, so query time is sublinear in stream length and store state
stays bounded.  The headline test drives the full 1,000,000-event
stream; the rest pin the scoring machinery at smoke size.
"""

import json

import pytest

from repro.experiments import e15_explain_scale as e15
from repro.explain import ExplanationStore

SMOKE = dict(lengths=(20_000, 80_000), queries=8)


@pytest.fixture(scope="module")
def shard():
    return e15.run_shard(0, **SMOKE)


class TestShardScores:
    def test_payload_shape(self, shard):
        assert set(shard) == {"20000", "80000"}
        for cell in shard.values():
            assert set(cell) == {"ingest_eps", "query_seconds",
                                 "state_cells", "chain_complete",
                                 "decisions", "truncated"}

    def test_shard_is_json_safe_and_deterministic(self):
        first = e15.run_shard(0, **SMOKE)
        again = e15.run_shard(0, **SMOKE)
        for length, cell in first.items():
            # Scores carry wall times; only the stream-derived metrics
            # are reproducible.
            for key in ("decisions", "chain_complete", "truncated",
                        "state_cells"):
                assert cell[key] == again[length][key]
        json.dumps(first)

    def test_chains_are_complete_and_stream_clean(self, shard):
        for cell in shard.values():
            assert cell["chain_complete"] == 1.0
            assert cell["truncated"] == 0.0
            assert cell["decisions"] > 0

    def test_reduce_builds_table_with_sublinearity_note(self, shard):
        table = e15.reduce([shard], seeds=(0,), **SMOKE)
        assert table.experiment_id == "E15"
        assert len(table.rows) == 2
        assert "sublinear" in table.notes


class TestHeadlineClaim:
    """The acceptance criterion at full size: a 1,000,000-event stream,
    queried without replay."""

    def test_million_event_queries_sublinear_and_memory_bounded(self):
        store_small = ExplanationStore()
        store_large = ExplanationStore()
        small, large = 100_000, 1_000_000
        e15.synthesize_stream(store_small, small, seed=0)
        e15.synthesize_stream(store_large, large, seed=0)

        stats = store_large.stats()
        assert stats["events_seen"] == large
        # Bounded memory: index and rollups capped, not stream-sized.
        assert stats["indexed"] <= store_large.index_size
        assert stats["buckets"] <= store_large._buckets.max_buckets
        assert stats["rollup_cells"] < 100

        # Sublinear queries: 10x the stream must cost well under 10x the
        # query time.  One warm-up pass first -- building the 1M stream
        # evicts the small store's rollups from cache, and this measures
        # algorithmic cost, not cache residency.  The 6x bound leaves
        # generous headroom for timer noise on shared CI (warm ratio is
        # ~2.5x: bucket coalescing caps the scan).
        e15._time_queries(store_small, small, queries=3)
        e15._time_queries(store_large, large, queries=3)
        q_small = e15._time_queries(store_small, small, queries=12)
        q_large = e15._time_queries(store_large, large, queries=12)
        assert q_large < 6.0 * max(q_small, 1e-5), (
            f"10x stream cost {q_large / max(q_small, 1e-12):.1f}x query "
            f"time -- why_aggregate is replaying the stream")

        # And the chains at the tail of the million-event stream resolve.
        assert e15._chain_completeness(store_large, 32) == 1.0

    def test_answers_match_between_sizes_where_streams_agree(self):
        """The first 100k events of the large stream are the small stream:
        windowed aggregates over that prefix must agree exactly."""
        store_small = ExplanationStore()
        store_large = ExplanationStore()
        e15.synthesize_stream(store_small, 100_000, seed=0)
        e15.synthesize_stream(store_large, 300_000, seed=0)
        window = (0, 50_000)
        small = store_small.why_aggregate(kind="serve.scale", window=window,
                                          axis="seq")
        large = store_large.why_aggregate(kind="serve.scale", window=window,
                                          axis="seq")
        assert small["decisions"] == large["decisions"]
        assert small["causes"] == large["causes"]
