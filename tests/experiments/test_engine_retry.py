"""Shard failure handling: surfaced tracebacks, bounded retry, timeouts.

The flaky shard is a real importable module (written to ``tmp_path``)
whose first execution leaves a sentinel file and raises; the second
succeeds.  That makes "fails once, recovers on retry" reproducible in
both the in-process path and the worker pool (workers are forked, so
the temporary ``sys.path`` entry carries over).
"""

import sys
import textwrap

import pytest

from repro.experiments.engine import RetryPolicy, SuiteJob, run_suite

FLAKY_SOURCE = textwrap.dedent("""\
    import os

    from repro.experiments.harness import ExperimentTable


    def run_shard(seed, sentinel=None, always_fail=False, sleep=0.0):
        if sleep:
            import time
            time.sleep(sleep)
        if always_fail:
            raise RuntimeError("boom (permanent)")
        marker = f"{sentinel}.{seed}"
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            raise RuntimeError("boom (transient)")
        return {"seed": seed}


    def reduce(shards, seeds=(), sentinel=None, always_fail=False,
               sleep=0.0):
        table = ExperimentTable(experiment_id="FLAKY", title="flaky",
                                columns=["seed"])
        for shard in shards:
            table.add_row(seed=float(shard["seed"]))
        return table
""")


@pytest.fixture
def flaky_job(tmp_path, monkeypatch):
    (tmp_path / "flaky_shard_mod.py").write_text(FLAKY_SOURCE)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("flaky_shard_mod", None)

    def make(seeds=(0,), **params):
        params.setdefault("sentinel", str(tmp_path / "sentinel"))
        return [SuiteJob(name="FLAKY", module="flaky_shard_mod",
                         shard_fn="run_shard", reduce_fn="reduce",
                         seeds=seeds, params=params)]

    yield make
    sys.modules.pop("flaky_shard_mod", None)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0.0)

    def test_exponential_delay(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]


class TestTracebackSurfacing:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_failure_carries_worker_traceback(self, flaky_job, n_jobs):
        # Two seeds so n_jobs=2 really exercises the pool branch (one
        # pending shard short-circuits to the in-process path).
        with pytest.raises(RuntimeError) as exc_info:
            run_suite(flaky_job(seeds=(0, 1), always_fail=True),
                      n_jobs=n_jobs)
        message = str(exc_info.value)
        # Which shard, how often it was tried, and the real traceback.
        assert "FLAKY" in message and "seed 0" in message
        assert "failed after 1 attempt" in message
        assert "worker traceback follows" in message
        assert "boom (permanent)" in message
        assert "flaky_shard_mod" in message  # frames, not just the message

    def test_no_retry_by_default(self, flaky_job):
        with pytest.raises(RuntimeError, match="boom"):
            run_suite(flaky_job(), n_jobs=1)


class TestRetryRecovery:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_transient_failure_recovers(self, flaky_job, n_jobs):
        retry = RetryPolicy(max_attempts=2, backoff=0.0)
        report = run_suite(flaky_job(seeds=(0, 1)), n_jobs=n_jobs,
                           retry=retry)
        assert report.executed_shards == 2
        assert [row["seed"] for row in report.tables[0].rows] == [0.0, 1.0]

    def test_attempts_exhausted_still_raises(self, flaky_job):
        retry = RetryPolicy(max_attempts=3, backoff=0.0)
        with pytest.raises(RuntimeError, match="failed after 3 attempt"):
            run_suite(flaky_job(always_fail=True), n_jobs=1, retry=retry)


class TestTimeout:
    def test_hung_shard_times_out_in_pool(self, flaky_job):
        # Two shards: a single pending shard would take the in-process
        # path, where a hung shard cannot be pre-empted.
        retry = RetryPolicy(max_attempts=1, backoff=0.0, timeout=0.5)
        with pytest.raises(RuntimeError, match="timed out after 0.5s"):
            run_suite(flaky_job(seeds=(0, 1), sleep=30.0), n_jobs=2,
                      retry=retry)
