"""The parallel engine: determinism, caching, telemetry merge.

The two guarantees the engine makes -- tables are byte-identical at any
worker count, and a warm cache satisfies every shard without executing
anything -- are exactly what these tests pin down, on small real
experiments (E3 and E9, both fully deterministic).  Timing-derived
values (the wall/step-rate provenance note, E11's measured overhead
column) honestly vary run to run and sit outside the guarantee; the
``canonical_*`` helpers strip the note before comparing.
"""

import math

import pytest

from repro.experiments.engine import (EngineReport, ShardCache, ShardSpec,
                                      SuiteJob, canonical_suite_text,
                                      canonical_table_text, code_fingerprint,
                                      run_suite, shard_cache_key)
from repro.experiments.harness import ExperimentTable, format_table
from repro.obs import TelemetrySession
from repro.obs.metrics import MergedHistogram, MetricsRegistry


def _small_jobs():
    """Two real, deterministic experiments at smoke size."""
    return [
        SuiteJob(name="E3", module="repro.experiments.e3_cloud",
                 shard_fn="run_shard", reduce_fn="reduce",
                 seeds=(0, 1), params={"steps": 120}),
        SuiteJob(name="E9", module="repro.experiments.e9_collective",
                 shard_fn="run_shard", reduce_fn="reduce",
                 seeds=(0, 1), params={"sizes": (10,), "gossip_rounds": 10}),
    ]


class TestDeterminismAcrossJobs:
    def test_serial_and_parallel_tables_identical(self):
        serial = run_suite(_small_jobs(), n_jobs=1)
        parallel = run_suite(_small_jobs(), n_jobs=4)
        assert serial.executed_shards == parallel.executed_shards == 4
        assert (canonical_suite_text(serial.tables)
                == canonical_suite_text(parallel.tables))

    def test_parallel_matches_module_run(self):
        """The engine path reproduces the plain run() entry point."""
        from repro.experiments import e3_cloud
        direct = e3_cloud.run(seeds=(0, 1), steps=120)
        engine = run_suite(_small_jobs()[:1], n_jobs=4).tables[0]
        assert canonical_table_text(direct) == canonical_table_text(engine)

    def test_telemetry_identical_serial_vs_parallel(self):
        with TelemetrySession() as s1:
            run_suite(_small_jobs(), n_jobs=1, telemetry=s1)
        with TelemetrySession() as s2:
            run_suite(_small_jobs(), n_jobs=4, telemetry=s2)
        snap1, snap2 = s1.snapshot(), s2.snapshot()
        assert snap1["counters"] == snap2["counters"]
        assert snap1["gauges"] == snap2["gauges"]
        events1 = [(e.name, e.fields) for e in s1.bus.events()]
        events2 = [(e.name, e.fields) for e in s2.bus.events()]
        assert events1 == events2


class TestShardCache:
    def test_warm_cache_executes_zero_shards(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_suite(_small_jobs(), n_jobs=1, cache=True,
                         cache_dir=cache_dir)
        assert cold.executed_shards == 4 and cold.cached_shards == 0
        warm = run_suite(_small_jobs(), n_jobs=1, cache=True,
                         cache_dir=cache_dir)
        assert warm.executed_shards == 0 and warm.cached_shards == 4
        assert (canonical_suite_text(cold.tables)
                == canonical_suite_text(warm.tables))

    def test_cached_tables_note_reuse(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_suite(_small_jobs()[:1], cache=True, cache_dir=cache_dir)
        warm = run_suite(_small_jobs()[:1], cache=True, cache_dir=cache_dir)
        assert "2/2 shards cached" in warm.tables[0].notes

    def test_param_change_misses(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_suite(_small_jobs()[:1], cache=True, cache_dir=cache_dir)
        bumped = [SuiteJob(name="E3", module="repro.experiments.e3_cloud",
                           shard_fn="run_shard", reduce_fn="reduce",
                           seeds=(0, 1), params={"steps": 121})]
        again = run_suite(bumped, cache=True, cache_dir=cache_dir)
        assert again.executed_shards == 2 and again.cached_shards == 0

    def test_key_depends_on_code_fingerprint_and_inputs(self):
        spec = ShardSpec(job_name="E3", module="repro.experiments.e3_cloud",
                         shard_fn="run_shard", seed=0,
                         params=(("steps", 120),))
        other_seed = ShardSpec(job_name="E3",
                               module="repro.experiments.e3_cloud",
                               shard_fn="run_shard", seed=1,
                               params=(("steps", 120),))
        key = shard_cache_key(spec, "fp-a")
        assert key != shard_cache_key(spec, "fp-b")
        assert key != shard_cache_key(other_seed, "fp-a")
        assert key == shard_cache_key(spec, "fp-a")

    def test_code_fingerprint_tracks_sources(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        before = code_fingerprint(str(pkg))
        assert before == code_fingerprint(str(pkg))
        (pkg / "a.py").write_text("x = 2\n")
        assert before != code_fingerprint(str(pkg))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ShardCache(root=str(tmp_path), fingerprint="fp")
        spec = ShardSpec(job_name="J", module="m", shard_fn="f", seed=0,
                         params=())
        assert cache.load(spec) is None
        path = cache._path(spec)
        import os
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.load(spec) is None
        assert cache.misses == 2


class TestTelemetryMerge:
    def test_merge_snapshot_counters_and_gauges(self):
        worker = MetricsRegistry()
        worker.counter("steps", sim="cloud").increment(100.0)
        worker.gauge("servers").set(7.0)
        parent = MetricsRegistry()
        parent.counter("steps", sim="cloud").increment(50.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.total("steps") == 150.0
        assert parent.gauge("servers").value == 7.0

    def test_merge_snapshot_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            a.histogram("latency").observe(value)
        for value in (10.0, 20.0, 30.0):
            b.histogram("latency").observe(value)
        parent = MetricsRegistry()
        parent.merge_snapshot(a.snapshot())
        parent.merge_snapshot(b.snapshot())
        summary = parent.snapshot()["histograms"]["latency"]
        assert summary["count"] == 6.0
        assert summary["sum"] == pytest.approx(66.0)
        assert summary["min"] == 1.0 and summary["max"] == 30.0
        assert summary["mean"] == pytest.approx(11.0)

    def test_merged_histogram_quantiles_weighted(self):
        merged = MergedHistogram()
        merged.absorb_summary({"count": 1.0, "sum": 1.0, "min": 1.0,
                               "max": 1.0, "p50": 1.0})
        merged.absorb_summary({"count": 3.0, "sum": 15.0, "min": 5.0,
                               "max": 5.0, "p50": 5.0})
        assert merged.quantile(0.5) == pytest.approx(4.0)
        assert merged.summary()["p50"] == pytest.approx(4.0)

    def test_merged_histogram_empty(self):
        merged = MergedHistogram()
        merged.absorb_summary({"count": 0.0, "sum": 0.0})
        assert merged.count == 0
        assert math.isnan(merged.mean)

    def test_session_absorb_replays_events(self):
        with TelemetrySession() as session:
            session.absorb([{"event": "sim.tick", "seq": 9, "t": 1},
                            {"event": "sim.tick", "seq": 10, "t": 2}])
        events = session.bus.events("sim.tick")
        assert [e.fields["t"] for e in events] == [1, 2]
        # Parent assigns fresh sequence numbers.
        assert [e.seq for e in events] == [0, 1]


class TestCanonicalText:
    def test_strips_only_volatile_notes(self):
        table = ExperimentTable(experiment_id="T", title="t",
                                columns=["a"], rows=[{"a": 1.0}],
                                notes="fixed context; more context")
        table.append_note("wall 1.23s, 500 steps, 405 steps/s [telemetry]")
        text = canonical_table_text(table)
        assert "wall" not in text
        assert "fixed context; more context" in text
        assert format_table(table) != text

    def test_note_free_table_passthrough(self):
        table = ExperimentTable(experiment_id="T", title="t",
                                columns=["a"], rows=[{"a": 1.0}])
        assert canonical_table_text(table) == format_table(table)


class TestEngineReport:
    def test_total_shards(self):
        report = EngineReport(tables=[], executed_shards=3, cached_shards=2)
        assert report.total_shards == 5
