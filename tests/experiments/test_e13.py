"""E13: the resilience sweep's scoring, acceptance claims and replay."""

import math

import pytest

from repro.experiments import e13_resilience as e13
from repro.experiments.engine import (SuiteJob, canonical_suite_text,
                                      run_suite)
from repro.obs import TelemetrySession

STEPS = 120
SHARD_KW = dict(steps=STEPS, intensities=(0.0, 0.5))


@pytest.fixture(scope="module")
def shard():
    """One seed of the sweep at smoke size, shared across tests."""
    return e13.run_shard(0, **SHARD_KW)


class TestPlans:
    def test_zero_intensity_means_no_plan(self):
        assert e13.camera_plan(100, 0.0, seed=0) is None
        assert e13.cloud_plan(100, 0.0, seed=0) is None

    def test_plans_cover_the_window(self):
        for make_plan in (e13.camera_plan, e13.cloud_plan):
            plan = make_plan(100, 0.5, seed=3)
            assert plan.seed == 3
            assert not plan.is_inert()
            lo, hi = plan.window()
            assert (lo, hi) == (e13.WINDOW[0] * 100, e13.WINDOW[1] * 100)


class TestRecoverySteps:
    def _series(self, steps=100, dip=(40, 60), recover_at=None):
        series = [1.0] * steps
        stop = steps if recover_at is None else recover_at
        for t in range(dip[0], min(stop, steps)):
            series[t] = 0.0
        return series

    def test_immediate_recovery_is_zero(self):
        series = self._series(recover_at=60)  # healthy as the window ends
        assert e13.recovery_steps(series, 100, smooth=5) == 0.0

    def test_delayed_recovery_counts_steps(self):
        series = self._series(recover_at=75)
        value = e13.recovery_steps(series, 100, smooth=5)
        assert value == 15.0  # smoothed mean regains 90% at offset 75-60

    def test_never_recovering_is_nan(self):
        assert math.isnan(e13.recovery_steps(
            self._series(recover_at=None), 100, smooth=5))

    def test_too_short_tail_is_nan(self):
        assert math.isnan(e13.recovery_steps([1.0] * 62, 100, smooth=5))


class TestShardScores:
    def test_payload_shape(self, shard):
        assert set(shard) == set(e13.SUBSTRATES)
        for substrate in shard:
            assert set(shard[substrate]) == set(e13.ARMS)
            for arm in e13.ARMS:
                assert set(shard[substrate][arm]) == {"0", "0.5"}
                for cell in shard[substrate][arm].values():
                    assert set(cell) == {"overall", "retained", "recovery"}

    def test_zero_intensity_retains_everything_exactly(self, shard):
        """The inertness acceptance: retained == 1.0, not approximately."""
        for substrate in shard:
            for arm in e13.ARMS:
                assert shard[substrate][arm]["0"]["retained"] == 1.0

    def test_faults_actually_hurt(self, shard):
        for substrate in shard:
            for arm in e13.ARMS:
                assert (shard[substrate][arm]["0.5"]["overall"]
                        < shard[substrate][arm]["0"]["overall"])

    def test_self_aware_cloud_keeps_higher_performance_under_faults(
            self, shard):
        cloud = shard["cloud"]
        assert (cloud["self-aware"]["0.5"]["overall"]
                > cloud["baseline"]["0.5"]["overall"])


class TestHeadlineClaim:
    """The acceptance claim at production size: the self-aware scaler
    retains more of its clean-run performance through the fault window
    than the well-provisioned static baseline -- and stays ahead in
    absolute terms.  Cloud only (four runs), camera rides in ``shard``.
    """

    def test_self_aware_retains_more_at_full_size(self):
        steps, seed, intensity = 500, 0, 0.5
        plan = e13.cloud_plan(steps, intensity, seed)
        scores = {}
        for arm in e13.ARMS:
            clean = e13._run_cloud(arm, steps, seed, None)
            faulted = e13._run_cloud(arm, steps, seed, plan)
            scores[arm] = (faulted["overall"] / clean["overall"],
                           faulted["overall"])
        assert scores["self-aware"][0] > scores["baseline"][0]
        assert scores["self-aware"][1] > scores["baseline"][1]


class TestReduce:
    def test_table_shape_and_values(self, shard):
        table = e13.reduce([shard], seeds=(0,), **SHARD_KW)
        assert table.experiment_id == "E13"
        assert len(table.rows) == len(e13.SUBSTRATES) * 2 * len(e13.ARMS)
        first = table.rows[0]
        assert set(first) == {"substrate", "controller", "intensity",
                              "performance", "retained", "recovery_steps"}
        zero_rows = [r for r in table.rows if r["intensity"] == 0.0]
        assert all(r["retained"] == 1.0 for r in zero_rows)

    def test_reduce_averages_across_shards(self, shard):
        table_one = e13.reduce([shard], seeds=(0,), **SHARD_KW)
        table_two = e13.reduce([shard, shard], seeds=(0, 0), **SHARD_KW)
        for a, b in zip(table_one.rows, table_two.rows):
            assert a["performance"] == pytest.approx(b["performance"],
                                                     nan_ok=True)


class TestEngineReplay:
    """Satellite acceptance: byte-identical sweep at any worker count."""

    def _job(self):
        return [SuiteJob(name="E13", module="repro.experiments.e13_resilience",
                         shard_fn="run_shard", reduce_fn="reduce",
                         seeds=(0, 1), params=dict(SHARD_KW))]

    def test_serial_and_parallel_identical(self):
        with TelemetrySession() as serial_session:
            serial = run_suite(self._job(), n_jobs=1,
                               telemetry=serial_session)
        with TelemetrySession() as parallel_session:
            parallel = run_suite(self._job(), n_jobs=4,
                                 telemetry=parallel_session)
        assert serial.executed_shards == parallel.executed_shards == 2
        assert (canonical_suite_text(serial.tables)
                == canonical_suite_text(parallel.tables))
        serial_events = [(e.name, e.fields)
                         for e in serial_session.bus.events()]
        parallel_events = [(e.name, e.fields)
                           for e in parallel_session.bus.events()]
        assert serial_events == parallel_events
        assert any(name == "fault.start" for name, _ in serial_events)
