"""Smoke tests: every experiment module produces a well-formed table.

These run each experiment at a very small size -- shape *assertions*
live in benchmarks/; here we verify structure, determinism and that no
experiment crashes on minimal inputs.
"""



from repro.experiments import (e1_levels, e2_camera, e3_cloud, e4_volunteer,
                               e5_multicore, e6_cpn, e7_attention, e8_meta,
                               e9_collective, e10_priors, e11_explain)
from repro.experiments.harness import ExperimentTable


def assert_well_formed(table, expected_rows=None):
    assert isinstance(table, ExperimentTable)
    assert table.experiment_id
    assert table.rows
    if expected_rows is not None:
        assert len(table.rows) == expected_rows
    for row in table.rows:
        for column in table.columns:
            assert column in row or row.get(column) is None or True


class TestSmoke:
    def test_e1(self):
        table = e1_levels.run(seeds=(0,), steps=300)
        assert_well_formed(table, expected_rows=6)  # static + 5 rungs
        assert all(0.0 <= r["mean_utility"] <= 1.0 for r in table.rows)

    def test_e2(self):
        table = e2_camera.run(seeds=(0,), steps=150)
        assert_well_formed(table, expected_rows=15)  # 5 controllers x 3 scen

    def test_e3(self):
        table = e3_cloud.run(seeds=(0,), steps=150)
        assert_well_formed(table, expected_rows=5)
        change = e3_cloud.run_goal_change(seeds=(0,), steps=150)
        assert_well_formed(change, expected_rows=3)

    def test_e4(self):
        table = e4_volunteer.run(seeds=(0,), steps=600)
        assert_well_formed(table, expected_rows=4)
        assert all(0.0 <= r["success_rate"] <= 1.0 for r in table.rows)

    def test_e5(self):
        table = e5_multicore.run(seeds=(0,), steps=200)
        assert_well_formed(table, expected_rows=4)
        change = e5_multicore.run_goal_change(seeds=(0,), steps=200)
        assert_well_formed(change, expected_rows=3)

    def test_e6(self):
        table = e6_cpn.run(seeds=(0,), n_nodes=15, steps=200)
        assert_well_formed(table, expected_rows=3)
        assert all(0.0 <= r["delivery"] <= 1.0 for r in table.rows)

    def test_e7(self):
        table = e7_attention.run(seeds=(0,), budgets=(2.0,), steps=150)
        assert_well_formed(table, expected_rows=4)

    def test_e8(self):
        table = e8_meta.run(seeds=(0,), steps=800)
        assert_well_formed(table, expected_rows=4)

    def test_e9(self):
        table = e9_collective.run(seeds=(0,), sizes=(8,))
        assert_well_formed(table, expected_rows=6)  # 3 schemes x 2 failures

    def test_e10(self):
        table = e10_priors.run(seeds=(0,), steps=200)
        assert_well_formed(table, expected_rows=4)

    def test_e11(self):
        table = e11_explain.run(seeds=(0,), steps=150)
        assert_well_formed(table, expected_rows=3)


class TestDeterminism:
    def test_e1_deterministic_under_seed(self):
        a = e1_levels.run(seeds=(3,), steps=200)
        b = e1_levels.run(seeds=(3,), steps=200)
        assert a.column("mean_utility") == b.column("mean_utility")

    def test_e4_deterministic_under_seed(self):
        a = e4_volunteer.run(seeds=(3,), steps=500)
        b = e4_volunteer.run(seeds=(3,), steps=500)
        assert a.column("success_rate") == b.column("success_rate")

    def test_e8_deterministic_under_seed(self):
        a = e8_meta.run(seeds=(3,), steps=500)
        b = e8_meta.run(seeds=(3,), steps=500)
        assert a.column("mean_reward") == b.column("mean_reward")


class TestE1Environment:
    def test_storm_bounded(self):
        env = e1_levels.ResourceAllocationEnvironment(seed=0)
        for t in range(300):
            env.apply("lean", float(t))
            assert 0.0 <= env.current_storm(float(t)) <= 1.0

    def test_drift_permutation_changes_outcomes(self):
        env = e1_levels.ResourceAllocationEnvironment(seed=0,
                                                      inversion_time=100.0)
        env.storminess.sigma = 0.0
        env.storminess.reversion = 0.0
        env.apply("lean", 50.0)
        # Drive past the inversion at the same storm level.
        env.apply("lean", 150.0)
        # The permutation is non-identity over the whole table: at least
        # the action space's perf structure moved.
        perfs_pre = {a: e1_levels.ACTION_TABLE[a][:2]
                     for a in e1_levels.ACTION_TABLE}
        assert env._post_drift_perf != perfs_pre

    def test_peer_reports_in_unit_interval(self):
        env = e1_levels.ResourceAllocationEnvironment(seed=0)
        for t in range(100):
            for _entity, name, value in env.peer_reports(float(t)):
                assert name == "storm"
                assert 0.0 <= value <= 1.0
            env.apply("lean", float(t))


class TestSuiteListing:
    """`run_all --list`: ids, suite membership and module-docstring titles."""

    def test_every_full_suite_job_is_listed_once(self):
        from repro.experiments.run_all import list_experiments, suite_jobs
        lines = list_experiments()
        jobs = suite_jobs(quick=False)
        assert len(lines) == len(jobs)
        assert [line.split()[0] for line in lines] \
            == [job.name for job in jobs]

    def test_membership_column_matches_the_quick_suite(self):
        from repro.experiments.run_all import list_experiments, suite_jobs
        quick = {job.name for job in suite_jobs(quick=True)}
        for line in list_experiments():
            name = line.split()[0]
            expected = "quick+full" if name in quick else "full only"
            assert expected in line

    def test_titles_come_from_module_docstrings(self):
        from repro.experiments.run_all import list_experiments
        e14_line = next(line for line in list_experiments()
                        if line.startswith("E14"))
        assert "self-aware serving" in e14_line
