"""E18: twin fidelity -- scoring, rank agreement, engine byte-identity."""

import json

import pytest

from repro.experiments import e18_twin as e18

SHARD_KW = dict(steps=300, scenario="flash_crowd")


@pytest.fixture(scope="module")
def shard():
    """One seed at quick-suite size, shared across tests."""
    return e18.run_shard(0, **SHARD_KW)


class TestShardScores:
    def test_payload_shape(self, shard):
        assert set(shard) == {"live", "twin", "trace", "live_ranking",
                              "twin_ranking", "rank_agreement"}
        for leg in ("live", "twin"):
            assert set(shard[leg]) == set(e18.ARMS)
        for cell in shard["live"].values():
            assert set(cell) == set(e18.METRIC_KEYS)

    def test_shard_is_json_safe_and_deterministic(self):
        first = e18.run_shard(0, **SHARD_KW)
        again = e18.run_shard(0, **SHARD_KW)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_trace_covers_the_run(self, shard):
        assert shard["trace"]["ticks"] == SHARD_KW["steps"]
        assert shard["trace"]["total_offered"] > 0


class TestHeadlineClaim:
    """The PR's acceptance claim: the twin is predictive -- replaying
    the recorded trace ranks the governor arms exactly as the live runs
    that produced it did (quick-suite floor, seed 0)."""

    def test_twin_ranks_arms_like_live(self, shard):
        assert shard["rank_agreement"] == 1.0
        assert shard["live_ranking"] == shard["twin_ranking"]

    def test_rankings_cover_every_arm(self, shard):
        assert sorted(shard["live_ranking"]) == sorted(e18.ARMS)
        assert sorted(shard["twin_ranking"]) == sorted(e18.ARMS)

    def test_twin_goodput_tracks_live_for_static_arms(self, shard):
        """Static arms have no adaptive state: replaying the recorded
        arrivals through the same pool should land near the live score
        (only the service-demand rng stream differs)."""
        for arm in ("static:4", "static:2"):
            live = shard["live"][arm]["goodput"]
            twin = shard["twin"][arm]["goodput"]
            assert twin == pytest.approx(live, rel=0.2)

    def test_twin_offered_matches_the_trace_exactly(self, shard):
        ticks = SHARD_KW["steps"]
        warmup = min(80, ticks // 5)
        window = ticks - warmup
        for arm in e18.ARMS:
            # metrics()["offered"] is per-tick over the scored window;
            # the trace total covers all ticks, so compare totals is
            # impossible -- but every arm must see identical arrivals.
            assert shard["twin"][arm]["offered"] \
                == shard["twin"][e18.ARMS[0]]["offered"]
        assert window > 0


class TestReduce:
    def test_table_shape_and_notes(self, shard):
        table = e18.reduce([shard], seeds=(0,), **SHARD_KW)
        assert table.experiment_id == "E18"
        assert len(table.rows) == len(e18.ARMS)
        assert set(table.rows[0]) == {"arm", "live_goodput", "twin_goodput",
                                      "live_rank", "twin_rank", "shed_live",
                                      "shed_twin"}
        assert "rank agreement" in table.notes

    def test_ranks_are_a_permutation(self, shard):
        table = e18.reduce([shard], seeds=(0,), **SHARD_KW)
        for column in ("live_rank", "twin_rank"):
            assert sorted(r[column] for r in table.rows) \
                == [1.0, 2.0, 3.0]

    def test_seed_averaging(self, shard):
        once = e18.reduce([shard], seeds=(0,), **SHARD_KW)
        twice = e18.reduce([shard, shard], seeds=(0, 1), **SHARD_KW)
        for a, b in zip(once.rows, twice.rows):
            assert a == b


class TestEngineByteIdentity:
    def test_jobs_1_vs_4_tables_are_byte_identical(self):
        """E18 shards fan out over the engine like any other experiment:
        the reduced table must not depend on the worker count."""
        from repro.experiments.engine import SuiteJob, run_suite
        job = SuiteJob(name="E18", module="repro.experiments.e18_twin",
                       shard_fn="run_shard", reduce_fn="reduce",
                       seeds=(0, 1), params=dict(steps=120,
                                                 scenario="flash_crowd"))
        serial = run_suite([job], n_jobs=1).tables[0]
        parallel = run_suite([job], n_jobs=4).tables[0]
        assert serial.rows == parallel.rows
        assert serial.columns == parallel.columns
        # The engine appends wall-clock provenance to the notes; the
        # experiment's own notes must match exactly up to that point.
        assert serial.notes.rsplit("; wall", 1)[0] \
            == parallel.notes.rsplit("; wall", 1)[0]
