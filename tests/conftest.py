"""Shared test configuration.

``REPRO_FORCE_NAIVE=1`` flips every module-level fast-path default to
the naive reference implementation before tests import anything.  CI's
``perf-equivalence`` job runs the whole ``tests/perf`` suite under both
settings, so the golden tables and equivalence fixtures are checked
against the scalar paths too -- a vectorisation bug can never land as
"tests passed on the fast path only".
"""

import os


def _force_naive_paths() -> None:
    from repro.core import knowledge
    from repro.learning import bandits
    from repro.sensornet import field, node
    from repro.smartcamera import network
    from repro.smartcamera import sim as camera_sim
    from repro.swarm import robots, sim

    sim.USE_WITNESS_GRID = False
    robots.USE_FAST_SWARM = False
    bandits.USE_FAST_BANDIT = False
    knowledge.set_fast_window_stats(False)
    network.USE_SPATIAL_GRID = False
    network.USE_FAST_SCANS = False
    camera_sim.USE_FAST_CAMERA = False
    field.USE_FAST_FIELD = False
    node.USE_FAST_SENSORNET = False


if os.environ.get("REPRO_FORCE_NAIVE") == "1":
    _force_naive_paths()
