"""Unit tests for the uniform spatial hash."""

import math

import pytest

from repro.geom import SpatialGrid


def brute_force_disc_hits(discs, x, y):
    return sorted(key for key, (cx, cy, r) in discs.items()
                  if math.hypot(x - cx, y - cy) <= r)


class TestDiscMode:
    def _populated(self):
        discs = {0: (0.1, 0.1, 0.2), 1: (0.5, 0.5, 0.25),
                 2: (0.52, 0.48, 0.1), 3: (0.9, 0.9, 0.15),
                 4: (-0.2, 0.3, 0.3)}
        grid = SpatialGrid(0.25)
        for key, (x, y, r) in discs.items():
            grid.insert_disc(key, x, y, r)
        return grid.finalise(), discs

    def test_candidates_are_supersets_of_true_hits(self):
        grid, discs = self._populated()
        for x, y in [(0.1, 0.1), (0.5, 0.5), (0.55, 0.45), (0.99, 0.99),
                     (-0.1, 0.2), (0.0, 0.0), (2.0, 2.0)]:
            cand = grid.candidates_at(x, y)
            assert cand == sorted(cand)
            hits = brute_force_disc_hits(discs, x, y)
            assert set(hits) <= set(cand)

    def test_candidate_set_matches_list(self):
        grid, _ = self._populated()
        for x, y in [(0.1, 0.1), (0.5, 0.5), (3.0, -3.0)]:
            assert grid.candidate_set_at(x, y) == frozenset(
                grid.candidates_at(x, y))

    def test_candidate_set_cache_reused_and_invalidated(self):
        grid, _ = self._populated()
        first = grid.candidate_set_at(0.5, 0.5)
        assert grid.candidate_set_at(0.5, 0.5) is first  # cached
        grid.insert_disc(99, 0.5, 0.5, 0.05)
        assert 99 in grid.candidate_set_at(0.5, 0.5)

    def test_negative_coordinates(self):
        grid, discs = self._populated()
        cand = grid.candidates_at(-0.2, 0.3)
        assert 4 in cand
        assert set(brute_force_disc_hits(discs, -0.25, 0.35)) <= set(cand)


class TestPointMode:
    def test_candidates_near_superset_and_sorted(self):
        points = {i: (0.1 * i, 0.05 * i) for i in range(20)}
        grid = SpatialGrid(0.2)
        for key, (x, y) in points.items():
            grid.insert_point(key, x, y)
        for qx, qy, r in [(0.5, 0.25, 0.2), (0.0, 0.0, 0.1), (5.0, 5.0, 0.3)]:
            cand = grid.candidates_near(qx, qy, r)
            assert cand == sorted(set(cand))
            true_hits = {k for k, (x, y) in points.items()
                         if math.hypot(qx - x, qy - y) <= r}
            assert true_hits <= set(cand)


class TestValidation:
    def test_rejects_bad_cell_size(self):
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError):
                SpatialGrid(bad)

    def test_rejects_negative_disc_radius(self):
        with pytest.raises(ValueError):
            SpatialGrid(1.0).insert_disc(0, 0.0, 0.0, -0.1)
