"""The struct-of-arrays camera step against the object-graph reference.

Byte-identity here means *all* visible state, not just the records: the
ownership map, the market statistics, the controllers' learned usage
counts and the simulation RNG's stream position.  Any divergence --
one reordered float, one extra draw -- would silently skew every
downstream E2 number, so these tests compare exact equality.
"""

import math

import numpy as np
import pytest

from repro.smartcamera.controller import (FixedStrategyController,
                                          SelfAwareStrategyController)
from repro.smartcamera.network import CameraNetwork
from repro.smartcamera.objects import MovingObject
from repro.smartcamera.sim import CameraSimConfig, CameraSimulation
from repro.smartcamera.soa import (CameraColumns, best_observer_row,
                                   possible_rows, seeing_rows)
from repro.smartcamera.strategies import Strategy


def _config(seed, **overrides):
    kwargs = dict(rows=4, cols=4, radius=0.24, n_objects=14,
                  object_speed=0.035, detection_rate=0.1,
                  random_placement=True, seed=seed)
    kwargs.update(overrides)
    return CameraSimConfig(**kwargs)


def _run(config, fast, use_grid=True, self_aware=True, steps=150):
    sim = CameraSimulation(
        config,
        controller_factory=(
            (lambda cid, rng: SelfAwareStrategyController(
                cid, epsilon=0.05, rng=rng)) if self_aware else
            (lambda cid, rng: FixedStrategyController(
                cid, Strategy.ACTIVE_SMOOTH))),
        fast=fast)
    if not fast:
        sim.network = CameraNetwork(list(sim.network.cameras.values()),
                                    use_grid=use_grid, fast=False)
    for t in range(steps):
        sim.step(float(t))
    return sim


def _visible_state(sim):
    return (
        [(r.time, r.tracking_utility, r.messages, r.handovers,
          r.owned_objects, r.lost_objects, r.comm_weight)
         for r in sim.records],
        dict(sim.ownership),
        (sim.market.auctions_run, sim.market.trades, sim.market.volume),
        {cid: dict(c.usage) for cid, c in sim.controllers.items()},
        sim._rng.bit_generator.state,
    )


class TestCameraStepEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fast_matches_naive_both_grid_variants(self, seed):
        config = _config(seed)
        fast = _visible_state(_run(_config(seed), fast=True))
        naive_grid = _visible_state(_run(config, fast=False,
                                         use_grid=True))
        naive_scan = _visible_state(_run(_config(seed), fast=False,
                                         use_grid=False))
        assert fast == naive_grid == naive_scan

    def test_fixed_strategy_and_price_break_runs_match(self):
        config = dict(comm_cost_weight=0.003,
                      comm_weight_breaks=[(60.0, 0.03)])
        fast = _visible_state(_run(_config(7, **config), fast=True,
                                   self_aware=False))
        naive = _visible_state(_run(_config(7, **config), fast=False,
                                    self_aware=False))
        assert fast == naive


class TestColumnScans:
    """The vectorised scans against the naive network queries."""

    def _network_and_points(self, seed):
        network = CameraNetwork.random(40, radius=0.2, seed=seed,
                                       use_grid=False, fast=False)
        rng = np.random.default_rng(seed + 100)
        points = rng.random((200, 2)).tolist()
        # Points exactly on a rim exercise the EXACT_REL band re-check.
        cam = next(iter(network.cameras.values()))
        points.append([cam.x + cam.radius, cam.y])
        points.append([cam.x, cam.y + cam.radius * (1 - 1e-13)])
        return network, points

    @pytest.mark.parametrize("seed", [1, 5])
    def test_seeing_and_best_rows_match_naive(self, seed):
        network, points = self._network_and_points(seed)
        cols = CameraColumns(network)
        for x, y in points:
            obj = MovingObject(object_id=0, x=x, y=y)
            assert [cols.id_list[r] for r in seeing_rows(cols, x, y)] \
                == network.observers(obj)
            row = best_observer_row(cols, x, y)
            assert (None if row < 0 else cols.id_list[row]) \
                == network.best_observer(obj)

    def test_possible_rows_is_a_superset_of_seeing(self):
        network, points = self._network_and_points(9)
        cols = CameraColumns(network)
        for x, y in points:
            possible = set(possible_rows(cols, x, y).tolist())
            seen = set(seeing_rows(cols, x, y))
            assert seen <= possible
            # ...and excluded rows provably cannot see the point.
            for r in set(range(cols.n)) - possible:
                assert math.hypot(x - cols.x_list[r],
                                  y - cols.y_list[r]) \
                    > cols.radius_list[r]

    def test_network_fast_queries_dispatch_to_columns(self):
        network = CameraNetwork.random(25, radius=0.22, seed=2,
                                       use_grid=True, fast=True)
        reference = CameraNetwork(list(network.cameras.values()),
                                  use_grid=True, fast=False)
        assert network.fast
        rng = np.random.default_rng(77)
        for i in range(100):
            x, y = rng.random(2)
            obj = MovingObject(object_id=i, x=float(x), y=float(y))
            assert network.observers(obj) == reference.observers(obj)
            assert network.best_observer(obj) == reference.best_observer(obj)
