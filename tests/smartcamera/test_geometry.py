"""Tests for camera geometry, the vision graph, and object mobility."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smartcamera.network import Camera, CameraNetwork
from repro.smartcamera.objects import MovingObject, ObjectPopulation


class TestCamera:
    def test_visibility_peaks_at_centre(self):
        cam = Camera(0, 0.5, 0.5, radius=0.2)
        obj = MovingObject(0, 0.5, 0.5, rng=np.random.default_rng(0))
        assert cam.visibility(obj) == pytest.approx(1.0)

    def test_visibility_zero_at_rim_and_beyond(self):
        cam = Camera(0, 0.5, 0.5, radius=0.2)
        at_rim = MovingObject(0, 0.7, 0.5, rng=np.random.default_rng(0))
        outside = MovingObject(1, 0.9, 0.5, rng=np.random.default_rng(0))
        assert cam.visibility(at_rim) == pytest.approx(0.0, abs=1e-9)
        assert cam.visibility(outside) == 0.0
        assert not cam.sees(outside)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Camera(0, 0.5, 0.5, radius=0.0)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_visibility_in_unit_interval(self, x, y):
        cam = Camera(0, 0.5, 0.5, radius=0.3)
        obj = MovingObject(0, x, y, rng=np.random.default_rng(0))
        assert 0.0 <= cam.visibility(obj) <= 1.0


class TestCameraNetwork:
    def test_grid_layout(self):
        net = CameraNetwork.grid(2, 3, radius=0.2)
        assert len(net) == 6
        assert net.ids() == list(range(6))

    def test_vision_graph_edges_from_overlap(self):
        # Two cameras 0.4 apart with radius 0.25 overlap; radius 0.15 do not.
        near = CameraNetwork([Camera(0, 0.3, 0.5, 0.25), Camera(1, 0.7, 0.5, 0.25)])
        far = CameraNetwork([Camera(0, 0.3, 0.5, 0.15), Camera(1, 0.7, 0.5, 0.15)])
        assert near.vision_graph.has_edge(0, 1)
        assert not far.vision_graph.has_edge(0, 1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            CameraNetwork([Camera(0, 0.1, 0.1, 0.2), Camera(0, 0.9, 0.9, 0.2)])

    def test_observers_and_best_observer(self):
        net = CameraNetwork([Camera(0, 0.2, 0.5, 0.3), Camera(1, 0.8, 0.5, 0.3)])
        obj = MovingObject(0, 0.25, 0.5, rng=np.random.default_rng(0))
        assert net.observers(obj) == [0]
        assert net.best_observer(obj) == 0
        unseen = MovingObject(1, 0.5, 0.0, rng=np.random.default_rng(0))
        assert net.best_observer(unseen) is None

    def test_coverage_increases_with_radius(self):
        small = CameraNetwork.grid(2, 2, radius=0.1).coverage_fraction()
        large = CameraNetwork.grid(2, 2, radius=0.4).coverage_fraction()
        assert large > small

    def test_random_placement_reproducible(self):
        a = CameraNetwork.random(5, seed=7)
        b = CameraNetwork.random(5, seed=7)
        assert all(a.cameras[i].x == b.cameras[i].x for i in range(5))


class TestMovingObject:
    def test_moves_toward_waypoint(self):
        rng = np.random.default_rng(0)
        obj = MovingObject(0, 0.5, 0.5, speed=0.01, rng=rng)
        x0, y0 = obj.position
        obj.step()
        dist = math.hypot(obj.x - x0, obj.y - y0)
        assert dist == pytest.approx(0.01, abs=1e-9)

    def test_stays_in_unit_square(self):
        obj = MovingObject(0, 0.5, 0.5, speed=0.05,
                           rng=np.random.default_rng(1))
        for _ in range(500):
            obj.step()
            assert 0.0 <= obj.x <= 1.0 and 0.0 <= obj.y <= 1.0

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            MovingObject(0, 0.5, 0.5, speed=0.0)


class TestObjectPopulation:
    def test_churn_replaces_objects(self):
        pop = ObjectPopulation(5, churn_rate=1.0, rng=np.random.default_rng(0))
        replaced = pop.step()
        assert len(replaced) == 1
        assert pop.replacements == 1
        assert len(pop) == 5
        assert pop.by_id(replaced[0]) is None

    def test_no_churn_keeps_ids(self):
        pop = ObjectPopulation(3, churn_rate=0.0, rng=np.random.default_rng(0))
        ids_before = {o.object_id for o in pop}
        for _ in range(10):
            assert pop.step() == []
        assert {o.object_id for o in pop} == ids_before

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectPopulation(0)
        with pytest.raises(ValueError):
            ObjectPopulation(3, churn_rate=1.5)
