"""Tests for the handover market and sociality strategies."""

import pytest

from repro.smartcamera.market import Bid, HandoverMarket
from repro.smartcamera.network import CameraNetwork
from repro.smartcamera.strategies import (ALL_STRATEGIES, Strategy,
                                          advertisement_targets,
                                          should_auction)


class TestHandoverMarket:
    def test_highest_bidder_wins_pays_second_price(self):
        market = HandoverMarket()
        outcome = market.run_auction(
            0, seller=9, bids=[Bid(1, 0.8), Bid(2, 0.5)], reserve=0.2)
        assert outcome.winner == 1
        assert outcome.price == pytest.approx(0.5)
        assert outcome.sold

    def test_single_bid_pays_reserve(self):
        market = HandoverMarket()
        outcome = market.run_auction(0, seller=9, bids=[Bid(1, 0.8)], reserve=0.3)
        assert outcome.winner == 1
        assert outcome.price == pytest.approx(0.3)

    def test_bids_below_reserve_rejected(self):
        market = HandoverMarket()
        outcome = market.run_auction(0, seller=9, bids=[Bid(1, 0.1)], reserve=0.5)
        assert outcome.winner is None
        assert not outcome.sold

    def test_seller_cannot_win_own_auction(self):
        market = HandoverMarket()
        outcome = market.run_auction(0, seller=1, bids=[Bid(1, 0.9)], reserve=0.0)
        assert outcome.winner is None

    def test_tie_breaks_to_lowest_id(self):
        market = HandoverMarket()
        outcome = market.run_auction(
            0, seller=9, bids=[Bid(5, 0.5), Bid(2, 0.5)], reserve=0.0)
        assert outcome.winner == 2

    def test_statistics(self):
        market = HandoverMarket()
        market.run_auction(0, 9, [Bid(1, 0.8)], reserve=0.0)
        market.run_auction(1, 9, [], reserve=0.0)
        assert market.auctions_run == 2
        assert market.trades == 1
        assert market.trade_rate == pytest.approx(0.5)

    def test_negative_bid_rejected(self):
        with pytest.raises(ValueError):
            Bid(1, -0.1)

    def test_negative_reserve_rejected(self):
        with pytest.raises(ValueError):
            HandoverMarket().run_auction(0, 9, [], reserve=-1.0)


class TestStrategies:
    def test_four_strategies_on_two_axes(self):
        assert len(ALL_STRATEGIES) == 4
        actives = [s for s in ALL_STRATEGIES if s.is_active]
        broadcasts = [s for s in ALL_STRATEGIES if s.is_broadcast]
        assert len(actives) == 2 and len(broadcasts) == 2

    def test_active_always_auctions(self):
        assert should_auction(Strategy.ACTIVE_BROADCAST, visibility=0.99)
        assert should_auction(Strategy.ACTIVE_SMOOTH, visibility=0.99)

    def test_passive_auctions_only_below_threshold(self):
        assert not should_auction(Strategy.PASSIVE_SMOOTH, 0.9, threshold=0.3)
        assert should_auction(Strategy.PASSIVE_SMOOTH, 0.1, threshold=0.3)

    def test_broadcast_targets_everyone(self):
        net = CameraNetwork.grid(2, 2, radius=0.2)
        targets = advertisement_targets(Strategy.ACTIVE_BROADCAST, 0, net)
        assert sorted(targets) == [1, 2, 3]

    def test_smooth_targets_vision_neighbours(self):
        net = CameraNetwork.grid(1, 3, radius=0.2)  # chain: 0-1-2
        targets = advertisement_targets(Strategy.PASSIVE_SMOOTH, 0, net)
        assert 0 not in targets
        assert set(targets) <= set(net.neighbours(0))
