"""Integration tests for the smart-camera simulation."""

import numpy as np
import pytest

from repro.smartcamera.controller import (FixedStrategyController,
                                          SelfAwareStrategyController,
                                          strategy_entropy)
from repro.smartcamera.sim import (CameraSimConfig, CameraSimulation,
                                   run_homogeneous, run_self_aware)
from repro.smartcamera.strategies import ALL_STRATEGIES, Strategy


def small_config(**kwargs):
    defaults = dict(rows=2, cols=2, n_objects=4, steps=100, seed=0)
    defaults.update(kwargs)
    return CameraSimConfig(**defaults)


class TestSimulationMechanics:
    def test_run_produces_records(self):
        result = run_homogeneous(small_config(), Strategy.PASSIVE_SMOOTH)
        assert len(result.records) == 100
        assert all(r.tracking_utility >= 0 for r in result.records)

    def test_ownership_conservation(self):
        sim = CameraSimulation(
            small_config(),
            controller_factory=lambda cid, rng: FixedStrategyController(
                cid, Strategy.ACTIVE_BROADCAST))
        for t in range(50):
            record = sim.step(float(t))
            # Every object is either owned or lost, never double-counted.
            assert record.owned_objects + record.lost_objects == 4
            # Owners must currently see their objects.
            for object_id, cam_id in sim.ownership.items():
                obj = sim.population.by_id(object_id)
                assert obj is not None
                assert sim.network.cameras[cam_id].sees(obj)

    def test_broadcast_sends_more_messages_than_smooth(self):
        loud = run_homogeneous(small_config(), Strategy.ACTIVE_BROADCAST)
        quiet = run_homogeneous(small_config(), Strategy.PASSIVE_SMOOTH)
        assert loud.mean_messages() > quiet.mean_messages()

    def test_active_tracks_no_worse_than_passive(self):
        active = run_homogeneous(small_config(steps=300, seed=3),
                                 Strategy.ACTIVE_BROADCAST)
        passive = run_homogeneous(small_config(steps=300, seed=3),
                                  Strategy.PASSIVE_SMOOTH)
        assert (active.mean_tracking_utility()
                >= passive.mean_tracking_utility() - 0.1)

    def test_comm_weight_breaks_apply(self):
        config = small_config(comm_cost_weight=0.01,
                              comm_weight_breaks=[(50.0, 0.5)])
        assert config.comm_weight_at(0.0) == 0.01
        assert config.comm_weight_at(60.0) == 0.5
        result = run_homogeneous(config, Strategy.ACTIVE_BROADCAST)
        weights = {r.comm_weight for r in result.records}
        assert weights == {0.01, 0.5}

    def test_comm_weight_breaks_unsorted_input(self):
        # Breakpoints are sorted once at construction; out-of-order input
        # must give the same schedule as sorted input, and the caller's
        # list must not be reordered under them.
        breaks = [(200.0, 0.9), (50.0, 0.5)]
        config = small_config(comm_cost_weight=0.01,
                              comm_weight_breaks=breaks)
        assert config.comm_weight_at(0.0) == 0.01
        assert config.comm_weight_at(50.0) == 0.5
        assert config.comm_weight_at(199.9) == 0.5
        assert config.comm_weight_at(200.0) == 0.9
        assert config.comm_weight_at(1e9) == 0.9
        assert breaks == [(200.0, 0.9), (50.0, 0.5)]

    def test_comm_weight_no_breaks_is_constant(self):
        config = small_config(comm_cost_weight=0.07)
        assert config.comm_weight_at(0.0) == 0.07
        assert config.comm_weight_at(1e6) == 0.07

    def test_detection_rate_zero_loses_objects_forever(self):
        # With no auctions (passive_smooth threshold 0 disables them) and no
        # re-detection, objects that escape their owner stay lost.
        config = small_config(detection_rate=0.0, auction_threshold=0.0,
                              steps=300, object_speed=0.05)
        result = run_homogeneous(config, Strategy.PASSIVE_SMOOTH)
        assert result.records[-1].lost_objects > 0

    def test_reproducible_under_seed(self):
        a = run_self_aware(small_config(seed=5))
        b = run_self_aware(small_config(seed=5))
        assert a.mean_tracking_utility() == b.mean_tracking_utility()
        assert a.mean_messages() == b.mean_messages()


class TestSelfAwareLearning:
    def test_learner_develops_diversity(self):
        result = run_self_aware(small_config(steps=400, seed=2))
        assert result.diversity_bits() > 0.5

    def test_homogeneous_network_has_zero_entropy(self):
        result = run_homogeneous(small_config(), Strategy.PASSIVE_SMOOTH)
        assert result.diversity_bits() == 0.0

    def test_learner_efficiency_is_competitive(self):
        # The self-aware network must land within 15% of the best
        # homogeneous assignment without knowing which one it is.
        config_kwargs = dict(steps=600, seed=4, random_placement=True,
                             rows=3, cols=3, n_objects=8)
        best = max(
            run_homogeneous(small_config(**config_kwargs), s).efficiency()
            for s in ALL_STRATEGIES)
        learned = run_self_aware(small_config(**config_kwargs),
                                 epsilon=0.05).efficiency()
        assert learned > 0.85 * best

    def test_preferred_strategy_reported(self):
        ctrl = SelfAwareStrategyController(0, rng=np.random.default_rng(0))
        for _ in range(40):
            s = ctrl.choose(0.0)
            ctrl.feedback(1.0 if s is Strategy.PASSIVE_SMOOTH else 0.0)
        assert ctrl.preferred_strategy() is Strategy.PASSIVE_SMOOTH

    def test_strategy_entropy_bounds(self):
        c1 = FixedStrategyController(0, Strategy.ACTIVE_SMOOTH)
        for _ in range(10):
            c1.record_usage(c1.strategy)
        assert strategy_entropy([c1]) == 0.0
        c2 = FixedStrategyController(1, Strategy.PASSIVE_SMOOTH)
        for _ in range(10):
            c2.record_usage(c2.strategy)
        assert strategy_entropy([c1, c2]) == pytest.approx(1.0)
