"""Tests for per-flow QoS classes in the CPN router."""

import networkx as nx
import numpy as np
import pytest

from repro.cpn.routing import (CPNRouter, DEFAULT_QOS, DELAY_SENSITIVE,
                               LOSS_SENSITIVE, QoSClass)
from repro.cpn.sim import Flow, forward_packet, run_routing
from repro.cpn.topology import CPNetwork
from repro.experiments.e6_cpn import make_theta_network


class TestQoSClass:
    def test_ready_made_classes_ordered(self):
        assert DELAY_SENSITIVE.loss_equivalent_delay \
            < DEFAULT_QOS.loss_equivalent_delay \
            < LOSS_SENSITIVE.loss_equivalent_delay

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSClass(name="x", loss_equivalent_delay=-1.0)

    def test_flow_carries_qos(self):
        flow = Flow(source=0, dest=1, qos=DELAY_SENSITIVE)
        assert flow.qos is DELAY_SENSITIVE
        assert Flow(source=0, dest=1).qos is None


class TestPerClassScoring:
    def _router_with_lossy_entry(self):
        net = make_theta_network(seed=0)
        router = CPNRouter(net, rng=np.random.default_rng(0))
        # Teach the router: via node 1 is fast but lossy.
        for _ in range(20):
            router.observe_hop(0, 1, 5, delay=1.0, t=0.0)
            router.observe_hop(1, 5, 5, delay=1.0, t=0.0)
            router.observe_hop(0, 2, 5, delay=1.5, t=0.0)
            router.observe_hop(2, 3, 5, delay=1.5, t=0.0)
            router.observe_hop(3, 4, 5, delay=1.5, t=0.0)
            router.observe_hop(4, 5, 5, delay=1.5, t=0.0)
        for _ in range(5):
            router.observe_loss(0, 1, 5, t=0.0)
            router.observe_hop(0, 1, 5, delay=1.0, t=0.0)
        return router

    def test_classes_pick_different_hops(self):
        router = self._router_with_lossy_entry()
        assert router.next_hop(0, 5, 0.0, qos=DELAY_SENSITIVE) == 1
        assert router.next_hop(0, 5, 0.0, qos=LOSS_SENSITIVE) == 2

    def test_default_qos_matches_none(self):
        router = self._router_with_lossy_entry()
        # loss_penalty default equals DEFAULT_QOS weight, so the two
        # spellings agree.
        assert router.next_hop(0, 5, 0.0) == \
            router.next_hop(0, 5, 0.0, qos=DEFAULT_QOS)


class TestNoBacktrack:
    def test_avoid_excludes_previous_node(self):
        net = make_theta_network(seed=1)
        router = CPNRouter(net, rng=np.random.default_rng(1))
        hop = router.next_hop(1, 5, 0.0, avoid=0)
        assert hop != 0

    def test_avoid_relaxed_when_only_option(self):
        g = nx.path_graph(3)  # 0-1-2; from 1, dest 0, avoiding 0 -> stuck?
        net = CPNetwork(g, rng=np.random.default_rng(2))
        router = CPNRouter(net, rng=np.random.default_rng(3))
        # From node 0, dest 2, avoiding 1: node 1 is the only neighbour.
        assert router.next_hop(0, 2, 0.0, avoid=1) == 1

    def test_packets_do_not_ping_pong(self):
        net = make_theta_network(seed=4)
        router = CPNRouter(net, epsilon=0.0, rng=np.random.default_rng(4))
        outcome = forward_packet(net, router, 0, 5, 0.0)
        # The worst simple path is 4 hops; without backtracking a greedy
        # packet cannot wander much beyond it.
        assert outcome.hops <= 6


class TestEndToEndClasses:
    def test_class_aware_routing_separates_flows(self):
        net = make_theta_network(seed=5)
        router = CPNRouter(net, epsilon=0.2, rng=np.random.default_rng(5))
        flows = [Flow(source=0, dest=5, qos=DELAY_SENSITIVE),
                 Flow(source=0, dest=5, qos=LOSS_SENSITIVE)]
        run_routing(net, router, flows, steps=300, smart_packets_per_flow=3)
        # Converged: the two classes take different first hops.
        assert router.next_hop(0, 5, 300.0, qos=DELAY_SENSITIVE) == 1
        assert router.next_hop(0, 5, 300.0, qos=LOSS_SENSITIVE) == 2
