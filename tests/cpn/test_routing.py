"""Tests for the routers and the forwarding simulation."""


import networkx as nx
import numpy as np
import pytest

from repro.cpn.routing import CPNRouter, OracleRouter, StaticRouter
from repro.cpn.sim import (Flow, default_flows, forward_packet, run_routing)
from repro.cpn.topology import CPNetwork, LinkDisturbance


def simple_net(seed=0):
    return CPNetwork.grid(3, 3, seed=seed)


class TestStaticRouter:
    def test_routes_along_shortest_path(self):
        net = simple_net()
        router = StaticRouter(net)
        outcome = forward_packet(net, router, 0, 8, 0.0)
        assert outcome.delivered
        assert outcome.hops == 4  # Manhattan distance on 3x3 grid

    def test_ignores_dynamics(self):
        net = simple_net()
        router = StaticRouter(net)
        hop_before = router.next_hop(0, 8, 0.0)
        net.add_disturbance(LinkDisturbance(edge=(0, hop_before), start=0.0,
                                            duration=100.0, delay_factor=100.0))
        assert router.next_hop(0, 8, 50.0) == hop_before


class TestOracleRouter:
    def test_reroutes_around_disturbance(self):
        g = nx.cycle_graph(4)
        net = CPNetwork(g, rng=np.random.default_rng(0))
        router = OracleRouter(net)
        router.new_step(0.0)
        net.add_disturbance(LinkDisturbance(edge=(0, 1), start=10.0,
                                            duration=100.0, delay_factor=50.0))
        router.new_step(50.0)
        assert router.next_hop(0, 2, 50.0) == 3


class TestCPNRouter:
    def test_converges_to_near_shortest_paths(self):
        net = CPNetwork.random_geometric(n=20, seed=1)
        router = CPNRouter(net, epsilon=0.2, rng=np.random.default_rng(2))
        flows = default_flows(net, n_flows=4, seed=1)
        run_routing(net, router, flows, steps=500)
        for flow in flows:
            true_delay = nx.shortest_path_length(net.graph, flow.source,
                                                 flow.dest, weight="delay")
            node, total, hops = flow.source, 0.0, 0
            while node != flow.dest and hops < 100:
                nxt = router.next_hop(node, flow.dest, 0.0)
                total += net.base_delay(node, nxt)
                node = nxt
                hops += 1
            assert node == flow.dest
            assert total <= 2.0 * true_delay + 0.5

    def test_loss_estimate_rises_on_losses(self):
        net = simple_net()
        router = CPNRouter(net, loss_alpha=0.5, rng=np.random.default_rng(3))
        for _ in range(5):
            router.observe_loss(0, 1, 8, 0.0)
        assert router.loss_estimate(0, 8, 1) > 0.9
        router.observe_hop(0, 1, 8, delay=1.0, t=0.0)
        assert router.loss_estimate(0, 8, 1) < 0.9  # successes decay it

    def test_lossy_link_avoided(self):
        g = nx.cycle_graph(4)
        net = CPNetwork(g, rng=np.random.default_rng(4))
        router = CPNRouter(net, loss_penalty=20.0, loss_alpha=0.5,
                           rng=np.random.default_rng(5))
        # Hammer the 0->1 entry with losses toward dest 2.
        for _ in range(10):
            router.observe_loss(0, 1, 2, 0.0)
        assert router.next_hop(0, 2, 0.0) == 3

    def test_q_backup_moves_toward_target(self):
        net = simple_net()
        router = CPNRouter(net, learning_rate=1.0,
                           rng=np.random.default_rng(6))
        router.observe_hop(0, 1, 8, delay=2.0, t=0.0)
        expected = 2.0 + router.best_remaining(1, 8)
        assert router.q_value(0, 8, 1) == pytest.approx(expected)

    def test_param_validation(self):
        net = simple_net()
        with pytest.raises(ValueError):
            CPNRouter(net, learning_rate=0.0)
        with pytest.raises(ValueError):
            CPNRouter(net, epsilon=1.5)
        with pytest.raises(ValueError):
            CPNRouter(net, loss_alpha=0.0)


class TestForwardPacket:
    def test_ttl_expiry(self):
        net = simple_net()
        router = StaticRouter(net)
        outcome = forward_packet(net, router, 0, 8, 0.0, max_hops=2)
        assert not outcome.delivered
        assert outcome.hops == 2

    def test_certain_loss_drops_packet(self):
        g = nx.path_graph(2)
        g[0][1]["loss"] = 1.0
        net = CPNetwork(g, rng=np.random.default_rng(7))
        outcome = forward_packet(net, StaticRouter(net), 0, 1, 0.0)
        assert not outcome.delivered


class TestRunRouting:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(source=1, dest=1)
        with pytest.raises(ValueError):
            Flow(source=0, dest=1, packets_per_step=0)
        net = simple_net()
        with pytest.raises(ValueError):
            run_routing(net, StaticRouter(net), [], steps=10)

    def test_records_and_windows(self):
        net = simple_net()
        net.launch_attack(victim=4, start=5.0, duration=5.0)
        result = run_routing(net, StaticRouter(net), [Flow(0, 8)], steps=20)
        assert len(result.records) == 20
        assert result.attack_window() == (5.0, 10.0)
        assert 0.0 <= result.delivery_rate() <= 1.0

    def test_cpn_resists_attack_better_than_static(self):
        def scenario(seed):
            net = CPNetwork.random_geometric(n=25, seed=seed)
            centrality = nx.betweenness_centrality(net.graph)
            victim = max(centrality, key=centrality.get)
            net.launch_attack(victim, start=150.0, duration=150.0,
                              loss_add=0.4)
            return net

        static_rates, cpn_rates = [], []
        for seed in range(2):
            net = scenario(seed)
            flows = default_flows(net, n_flows=5, seed=seed)
            static_rates.append(run_routing(
                net, StaticRouter(net), flows,
                steps=300).delivery_rate(150, 300))
            net = scenario(seed)
            cpn = CPNRouter(net, epsilon=0.2, rng=np.random.default_rng(seed))
            cpn_rates.append(run_routing(
                net, cpn, flows, steps=300).delivery_rate(150, 300))
        assert np.mean(cpn_rates) > np.mean(static_rates)
