"""Tests for the CPN topology and dynamics."""

import networkx as nx
import numpy as np
import pytest

from repro.cpn.topology import CPNetwork, LinkDisturbance


def line3():
    g = nx.path_graph(3)
    g[0][1]["delay"] = 2.0
    g[1][2]["delay"] = 3.0
    return CPNetwork(g, rng=np.random.default_rng(0))


class TestConstruction:
    def test_requires_connected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            CPNetwork(g)

    def test_defaults_applied(self):
        net = CPNetwork(nx.path_graph(3))
        assert net.base_delay(0, 1) == 1.0
        assert net.current_loss(0, 1, 0.0) == pytest.approx(0.005)

    def test_random_geometric_connected(self):
        net = CPNetwork.random_geometric(n=25, seed=3)
        assert nx.is_connected(net.graph)

    def test_grid(self):
        net = CPNetwork.grid(3, 4)
        assert net.graph.number_of_nodes() == 12


class TestDynamics:
    def test_disturbance_window(self):
        net = line3()
        net.add_disturbance(LinkDisturbance(edge=(0, 1), start=10.0,
                                            duration=5.0, delay_factor=10.0))
        assert net.current_delay(0, 1, 5.0) == pytest.approx(2.0)
        assert net.current_delay(0, 1, 12.0) == pytest.approx(20.0)
        assert net.current_delay(0, 1, 15.0) == pytest.approx(2.0)
        # Edge order does not matter.
        assert net.current_delay(1, 0, 12.0) == pytest.approx(20.0)

    def test_disturbance_on_missing_edge_rejected(self):
        net = line3()
        with pytest.raises(ValueError):
            net.add_disturbance(LinkDisturbance(edge=(0, 2), start=0.0,
                                                duration=1.0))

    def test_attack_inflates_victim_neighbourhood(self):
        net = line3()
        net.launch_attack(victim=1, start=10.0, duration=10.0,
                          delay_factor=4.0, loss_add=0.5)
        assert net.current_delay(0, 1, 15.0) == pytest.approx(8.0)
        assert net.current_delay(1, 2, 15.0) == pytest.approx(12.0)
        assert net.current_loss(0, 1, 15.0) == pytest.approx(0.505)
        assert not net.attack_active(25.0)
        assert net.current_delay(0, 1, 25.0) == pytest.approx(2.0)

    def test_attack_on_missing_node_rejected(self):
        with pytest.raises(ValueError):
            line3().launch_attack(victim=99, start=0.0, duration=1.0)

    def test_schedule_random_disturbances(self):
        net = CPNetwork.grid(3, 3, seed=1)
        net.schedule_random_disturbances(horizon=100.0, count=5)
        assert len(net.disturbances) == 5
        assert all(0.0 <= d.start < 100.0 for d in net.disturbances)


class TestRoutingTables:
    def test_static_table_follows_base_delays(self):
        net = line3()
        table = net.static_shortest_paths(dest=2)
        assert table[0] == 1 and table[1] == 2
        assert 2 not in table

    def test_oracle_table_follows_current_delays(self):
        g = nx.cycle_graph(4)  # 0-1-2-3-0
        net = CPNetwork(g, rng=np.random.default_rng(0))
        # Clockwise route 0->1->2 normally shortest (2 hops either way);
        # disturb 0-1 so the oracle flips to 0->3->2.
        net.add_disturbance(LinkDisturbance(edge=(0, 1), start=0.0,
                                            duration=100.0, delay_factor=10.0))
        table = net.oracle_shortest_paths(dest=2, t=50.0)
        assert table[0] == 3
