"""Cross-module integration tests: the framework wired end-to-end."""


import numpy as np

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, SimulationClock, build_node,
                        build_static_node, private, run_control_loop)
from repro.core.levels import SelfAwarenessLevel
from repro.core.meta import MetaReasoner
from repro.envgen.processes import RegimeSequence


class SwitchingWorld:
    """Best action flips with a scheduled regime; sensors see the regime."""

    def __init__(self, change_at=150.0, noise=0.02, seed=0):
        self.regimes = RegimeSequence([(0.0, 0.0), (change_at, 1.0)])
        self._rng = np.random.default_rng(seed)
        self._now = 0.0

    def regime(self):
        return self.regimes.value(self._now)

    def candidate_actions(self, now):
        return ["alpha", "beta"]

    def apply(self, action, now):
        self._now = now
        regime = self.regimes.value(now)
        if action == "alpha":
            perf = 0.9 - 0.8 * regime
        else:
            perf = 0.1 + 0.8 * regime
        return {"perf": perf + float(self._rng.normal(0, 0.02))}


def make_goal():
    return Goal([Objective("perf")], name="integration")


def make_node(profile, world, seed=0):
    sensors = SensorSuite([Sensor(private("regime"), world.regime,
                                  noise_std=0.02)])
    return build_node("n", profile, sensors, make_goal(),
                      rng=np.random.default_rng(seed))


class TestEndToEndAdaptation:
    def test_full_stack_node_adapts_to_regime_change(self):
        world = SwitchingWorld(seed=1)
        goal = make_goal()
        node = make_node(CapabilityProfile.full_stack(), world, seed=1)
        trace = run_control_loop(node, world, goal, steps=400)
        # Converged behaviour in each regime.
        early = [s.action for s in trace.steps if 100 <= s.time < 150]
        late = [s.action for s in trace.steps if 350 <= s.time]
        assert early.count("alpha") > len(early) * 0.7
        assert late.count("beta") > len(late) * 0.7

    def test_static_node_cannot_adapt(self):
        world = SwitchingWorld(seed=2)
        goal = make_goal()
        sensors = SensorSuite([Sensor(private("regime"), world.regime)])
        node = build_static_node("s", sensors, action="alpha")
        trace = run_control_loop(node, world, goal, steps=400)
        late = trace.mean_utility_between(300.0, 401.0)
        assert late < 0.3  # alpha is wrong after the change

    def test_adaptation_beats_static_overall(self):
        results = {}
        for name, builder in [
            ("aware", lambda w: make_node(CapabilityProfile.full_stack(), w,
                                          seed=3)),
            ("static", lambda w: build_static_node(
                "s", SensorSuite([Sensor(private("regime"), w.regime)]),
                action="alpha")),
        ]:
            world = SwitchingWorld(seed=3)
            goal = make_goal()
            trace = run_control_loop(builder(world), world, goal, steps=400)
            results[name] = trace.mean_utility()
        assert results["aware"] > results["static"] + 0.1

    def test_meta_node_reports_its_own_state(self):
        world = SwitchingWorld(seed=4)
        goal = make_goal()
        node = make_node(CapabilityProfile.full_stack(), world, seed=4)
        run_control_loop(node, world, goal, steps=200)
        assert isinstance(node.reasoner, MetaReasoner)
        explanation = node.explain()
        assert "Meta: active strategy" in explanation

    def test_journal_covers_whole_run(self):
        world = SwitchingWorld(seed=5)
        goal = make_goal()
        node = make_node(CapabilityProfile.full_stack(), world, seed=5)
        run_control_loop(node, world, goal, steps=150)
        assert node.log.total_logged == 150
        report = node.log.report()
        assert report.coverage == 1.0
        assert report.evidence_rate == 1.0

    def test_knowledge_accumulates_history(self):
        world = SwitchingWorld(seed=6)
        goal = make_goal()
        node = make_node(CapabilityProfile.full_stack(), world, seed=6)
        run_control_loop(node, world, goal, steps=200)
        history = node.knowledge.history(private("regime"))
        assert len(history) == 200
        # The regime stepped 0 -> 1 at t=150, inside this window.
        assert history.trend() > 0.0

    def test_two_episodes_share_one_clock(self):
        world = SwitchingWorld(seed=7)
        goal = make_goal()
        node = make_node(CapabilityProfile.full_stack(), world, seed=7)
        clock = SimulationClock()
        t1 = run_control_loop(node, world, goal, steps=50, clock=clock)
        t2 = run_control_loop(node, world, goal, steps=50, clock=clock)
        assert t2.steps[0].time == t1.steps[-1].time + 1.0


class TestCapabilityGatingEndToEnd:
    def test_stimulus_node_underperforms_contextual_node(self):
        # The regime is visible, but only contextual (interaction+) nodes
        # can condition their model on it.
        utilities = {}
        for name, level in [("stimulus", SelfAwarenessLevel.STIMULUS),
                            ("time", SelfAwarenessLevel.TIME)]:
            totals = []
            for seed in range(3):
                world = SwitchingWorld(seed=seed)
                goal = make_goal()
                node = make_node(CapabilityProfile.up_to(level), world,
                                 seed=seed)
                trace = run_control_loop(node, world, goal, steps=400)
                totals.append(trace.mean_utility())
            utilities[name] = float(np.mean(totals))
        assert utilities["time"] > utilities["stimulus"] + 0.01
