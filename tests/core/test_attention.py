"""Tests for attention policies."""

import numpy as np
import pytest

from repro.core.attention import (FullAttention, RandomAttention,
                                  RoundRobinAttention, SalienceAttention)
from repro.core.knowledge import KnowledgeBase
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import private


def make_suite(costs):
    return SensorSuite([
        Sensor(private(name), lambda v=i: float(v), cost=c)
        for i, (name, c) in enumerate(costs.items())
    ])


class TestFullAttention:
    def test_unbounded_budget_takes_all(self):
        suite = make_suite({"a": 1.0, "b": 1.0, "c": 1.0})
        chosen = FullAttention().select(suite, KnowledgeBase(), 0.0, float("inf"))
        assert len(chosen) == 3

    def test_budget_truncates(self):
        suite = make_suite({"a": 1.0, "b": 1.0, "c": 1.0})
        chosen = FullAttention().select(suite, KnowledgeBase(), 0.0, 2.0)
        assert len(chosen) == 2

    def test_zero_cost_sensors_always_included(self):
        suite = make_suite({"a": 0.0, "b": 5.0})
        chosen = FullAttention().select(suite, KnowledgeBase(), 0.0, 0.0)
        assert chosen == [private("a")]


class TestRoundRobinAttention:
    def test_cycles_fairly_under_budget_one(self):
        suite = make_suite({"a": 1.0, "b": 1.0, "c": 1.0})
        policy = RoundRobinAttention()
        kb = KnowledgeBase()
        seen = []
        for t in range(6):
            chosen = policy.select(suite, kb, float(t), 1.0)
            assert len(chosen) == 1
            seen.append(chosen[0].name)
        # Each scope visited twice over two full cycles.
        assert sorted(seen) == ["a", "a", "b", "b", "c", "c"]

    def test_empty_suite(self):
        assert RoundRobinAttention().select(SensorSuite(), KnowledgeBase(), 0.0, 1.0) == []


class TestRandomAttention:
    def test_respects_budget(self):
        suite = make_suite({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        policy = RandomAttention(rng=np.random.default_rng(0))
        for t in range(20):
            chosen = policy.select(suite, KnowledgeBase(), float(t), 2.0)
            assert len(chosen) == 2

    def test_covers_all_scopes_eventually(self):
        suite = make_suite({"a": 1.0, "b": 1.0, "c": 1.0})
        policy = RandomAttention(rng=np.random.default_rng(1))
        seen = set()
        for t in range(50):
            seen.update(s.name for s in policy.select(suite, KnowledgeBase(), float(t), 1.0))
        assert seen == {"a", "b", "c"}


class TestSalienceAttention:
    def test_unobserved_scopes_get_novelty_bonus(self):
        suite = make_suite({"a": 1.0})
        policy = SalienceAttention(novelty_bonus=2.0)
        kb = KnowledgeBase()
        assert policy.salience(private("a"), suite, kb, 0.0) == pytest.approx(2.0)

    def test_volatile_scope_preferred_over_stable(self):
        suite = make_suite({"volatile": 1.0, "stable": 1.0})
        policy = SalienceAttention()
        kb = KnowledgeBase()
        rng = np.random.default_rng(0)
        for t in range(20):
            kb.observe(private("volatile"), float(t), float(rng.normal(0, 5)))
            kb.observe(private("stable"), float(t), 1.0)
        chosen = policy.select(suite, kb, 25.0, budget=1.0)
        assert chosen == [private("volatile")]

    def test_staleness_raises_salience(self):
        suite = make_suite({"a": 1.0})
        policy = SalienceAttention(staleness_scale=2.0)
        kb = KnowledgeBase()
        for t in range(10):
            kb.observe(private("a"), float(t), float(t % 3))
        fresh = policy.salience(private("a"), suite, kb, now=9.0)
        stale = policy.salience(private("a"), suite, kb, now=50.0)
        assert stale > fresh

    def test_relevance_reweights(self):
        suite = make_suite({"a": 1.0, "b": 1.0})
        kb = KnowledgeBase()
        rng = np.random.default_rng(0)
        for t in range(20):
            kb.observe(private("a"), float(t), float(rng.normal(0, 1)))
            kb.observe(private("b"), float(t), float(rng.normal(0, 1)))
        policy = SalienceAttention(relevance={private("b"): 100.0})
        chosen = policy.select(suite, kb, 25.0, budget=1.0)
        assert chosen == [private("b")]

    def test_set_relevance_at_runtime(self):
        policy = SalienceAttention()
        policy.set_relevance(private("x"), 5.0)
        assert policy.relevance[private("x")] == 5.0

    def test_invalid_staleness_scale(self):
        with pytest.raises(ValueError):
            SalienceAttention(staleness_scale=0.0)
