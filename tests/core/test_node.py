"""Tests for the assembled self-aware node."""


import numpy as np
import pytest

from repro.core.actuators import Actuator, ExpressionEngine, Guard
from repro.core.goals import Goal, Objective
from repro.core.levels import CapabilityProfile, SelfAwarenessLevel
from repro.core.models import EmpiricalActionModel
from repro.core.node import SelfAwareNode
from repro.core.reasoner import StaticPolicy, UtilityReasoner
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import private, public


class World:
    """Tiny mutable world the test sensors read."""

    def __init__(self):
        self.load = 0.5


@pytest.fixture
def world():
    return World()


def make_node(world, profile, reasoner=None):
    suite = SensorSuite([Sensor(private("load"), lambda: world.load)])
    if reasoner is None:
        goal = Goal([Objective("perf")])
        reasoner = UtilityReasoner(goal, EmpiricalActionModel(), epsilon=0.0,
                                   rng=np.random.default_rng(0))
    return SelfAwareNode(name="n", profile=profile, sensors=suite,
                         reasoner=reasoner)


class TestPerception:
    def test_perceive_populates_knowledge(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        node.perceive(1.0)
        assert node.knowledge.value(private("load")) == 0.5

    def test_context_empty_without_stimulus_level(self, world):
        node = make_node(world, CapabilityProfile.of())
        node.perceive(1.0)
        assert node.context(1.0) == {}

    def test_stimulus_context_has_current_values(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        node.perceive(1.0)
        ctx = node.context(1.0)
        assert ctx == {"load": 0.5}

    def test_time_level_adds_trend_features(self, world):
        profile = CapabilityProfile.up_to(SelfAwarenessLevel.TIME)
        node = make_node(world, profile)
        for t in range(5):
            world.load = 0.1 * t
            node.perceive(float(t))
        ctx = node.context(5.0)
        assert "load.trend" in ctx and "load.mean" in ctx
        assert ctx["load.trend"] == pytest.approx(0.1)

    def test_social_knowledge_gated_by_interaction_level(self, world):
        stim = make_node(world, CapabilityProfile.minimal())
        inter = make_node(world, CapabilityProfile.up_to(SelfAwarenessLevel.INTERACTION))
        for node in (stim, inter):
            node.perceive(1.0)
            node.receive_report("peer", "load", 1.0, 0.9)
        assert "load@peer" not in stim.context(1.0)
        assert inter.context(1.0)["load@peer"] == 0.9


class TestStepAndFeedback:
    def test_step_produces_decision_and_journal(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        result = node.step(1.0, ["a", "b"])
        assert result.decision.action in ("a", "b")
        assert len(node.log) == 1

    def test_feedback_without_decision_raises(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        with pytest.raises(RuntimeError):
            node.feedback({"perf": 1.0})

    def test_feedback_trains_model(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        node.step(1.0, ["a"])
        node.feedback({"perf": 0.7})
        assert node.reasoner.model.predict({}, "a")["perf"] == pytest.approx(0.7)

    def test_feedback_attaches_outcome_to_journal(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        node.step(1.0, ["a"])
        node.feedback({"perf": 0.7})
        assert node.log.last().outcome == {"perf": 0.7}

    def test_expression_engine_applies_action(self, world):
        applied = []
        expression = ExpressionEngine()
        for a in ("a", "b"):
            expression.add_actuator(Actuator(a, effect=lambda a=a: applied.append(a)))
        node = make_node(world, CapabilityProfile.minimal())
        node.expression = expression
        result = node.step(1.0, ["a", "b"])
        assert result.actuation.applied
        assert applied

    def test_guard_veto_reported_in_step(self, world):
        expression = ExpressionEngine()
        expression.add_actuator(Actuator("a", effect=lambda: None))
        expression.add_guard(Guard("no", lambda a, c: "never"))
        node = make_node(world, CapabilityProfile.minimal(),
                         reasoner=StaticPolicy("a"))
        node.expression = expression
        result = node.step(1.0, ["a"])
        assert not result.actuation.applied


class TestIntrospection:
    def test_explain_references_last_decision(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        node.step(1.0, ["a"])
        assert "t=1" in node.explain()

    def test_describe_mentions_profile(self, world):
        node = make_node(world, CapabilityProfile.minimal())
        assert "stimulus" in node.describe()

    def test_share_belief_only_public(self, world):
        suite = SensorSuite([
            Sensor(private("secret"), lambda: 1.0),
            Sensor(public("visible"), lambda: 2.0),
        ])
        node = SelfAwareNode("n", CapabilityProfile.minimal(), suite,
                             StaticPolicy("a"))
        node.perceive(1.0)
        assert node.share_belief(private("secret")) is None
        assert node.share_belief(public("visible")) == 2.0

    def test_sensing_cost_accumulates(self, world):
        suite = SensorSuite([Sensor(private("load"), lambda: world.load, cost=2.0)])
        node = SelfAwareNode("n", CapabilityProfile.minimal(), suite,
                             StaticPolicy("a"))
        node.step(1.0, ["a"])
        node.step(2.0, ["a"])
        assert node.total_sensing_cost == pytest.approx(4.0)
