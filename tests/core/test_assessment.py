"""Tests for node self-assessment."""

import math

import numpy as np
import pytest

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, build_static_node, private,
                        run_control_loop)
from repro.core.assessment import assess


class ToyWorld:
    def candidate_actions(self, now):
        return ["a", "b"]

    def apply(self, action, now):
        return {"perf": 0.8 if action == "a" else 0.2}


def make_node(profile=None, failure_rate=0.0, seed=0):
    profile = profile if profile is not None else CapabilityProfile.full_stack()
    sensors = SensorSuite([
        Sensor(private("x"), lambda: 1.0, failure_rate=failure_rate,
               rng=np.random.default_rng(seed)),
        Sensor(private("y"), lambda: 2.0),
    ])
    goal = Goal([Objective("perf")])
    return build_node("n", profile, sensors, goal,
                      rng=np.random.default_rng(seed)), goal


class TestAssess:
    def test_fresh_node_has_no_knowledge(self):
        node, _goal = make_node()
        report = assess(node, now=0.0)
        assert report.knowledge_coverage == 0.0
        assert math.isinf(report.worst_staleness)
        assert report.decisions == 0
        assert not report.healthy(min_coverage=0.5)

    def test_running_node_reports_full_coverage(self):
        node, goal = make_node()
        run_control_loop(node, ToyWorld(), goal, steps=50)
        report = assess(node, now=50.0)
        assert report.knowledge_coverage == 1.0
        assert report.worst_staleness == pytest.approx(0.0)
        assert report.decisions == 50
        assert report.healthy(max_staleness=1.0)

    def test_dead_sensor_shows_in_coverage(self):
        node, goal = make_node(failure_rate=1.0)
        run_control_loop(node, ToyWorld(), goal, steps=30)
        report = assess(node, now=30.0)
        assert report.knowledge_coverage == pytest.approx(0.5)

    def test_exploration_rate_tracked(self):
        node, goal = make_node()
        run_control_loop(node, ToyWorld(), goal, steps=200)
        report = assess(node, now=200.0)
        # build_node uses epsilon=0.1 with confidence scaling: nonzero
        # but far from dominant.
        assert 0.0 < report.exploration_rate < 0.5

    def test_meta_node_includes_strategy_view(self):
        node, goal = make_node()
        run_control_loop(node, ToyWorld(), goal, steps=60)
        report = assess(node, now=60.0)
        assert report.strategy_assessment is not None
        assert set(report.strategy_assessment) == {"stable", "plastic"}
        assert report.strategy_switches is not None

    def test_non_meta_node_omits_strategy_view(self):
        from repro.core.levels import SelfAwarenessLevel
        node, goal = make_node(
            profile=CapabilityProfile.up_to(SelfAwarenessLevel.GOAL))
        run_control_loop(node, ToyWorld(), goal, steps=20)
        report = assess(node, now=20.0)
        assert report.strategy_assessment is None

    def test_static_node_assessable_too(self):
        sensors = SensorSuite([Sensor(private("x"), lambda: 1.0)])
        node = build_static_node("s", sensors, action="a")
        goal = Goal([Objective("perf")])
        run_control_loop(node, ToyWorld(), goal, steps=20)
        report = assess(node, now=20.0)
        assert report.decision_stability == 1.0
        assert report.exploration_rate == 0.0

    def test_describe_is_narrative(self):
        node, goal = make_node()
        run_control_loop(node, ToyWorld(), goal, steps=30)
        text = assess(node, now=30.0).describe()
        assert "node 'n'" in text
        assert "decisions" in text
        assert "Strategy self-assessment" in text

    def test_describe_handles_empty_node(self):
        node, _goal = make_node()
        text = assess(node, now=0.0).describe()
        assert "nothing observed yet" in text
