"""Tests for hierarchical supervision of self-aware nodes."""

import numpy as np
import pytest

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, private)
from repro.core.hierarchy import Supervisor
from repro.core.levels import SelfAwarenessLevel


class FlippingWorld:
    """Rewards flip at ``change_at``: action values swap."""

    def __init__(self, change_at=300.0, seed=0):
        self.change_at = change_at
        self._rng = np.random.default_rng(seed)

    def candidate_actions(self, now):
        return ["a", "b"]

    def apply(self, action, now):
        good = "a" if now < self.change_at else "b"
        perf = 0.9 if action == good else 0.1
        return {"perf": perf + float(self._rng.normal(0, 0.02))}


def make_child(name, seed=0, epsilon=0.3):
    sensors = SensorSuite([Sensor(private("x"), lambda: 0.5)])
    goal = Goal([Objective("perf")])
    # forgetting=1.0 builds the pathological case: a count-frozen model
    # that hundreds of warm-up samples render immune to new evidence.
    node = build_node(name,
                      CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
                      sensors, goal, epsilon=epsilon, forgetting=1.0,
                      rng=np.random.default_rng(seed))
    return node, goal


def drive(node, goal, world, supervisor, steps, start=0):
    utilities = []
    for t in range(start, start + steps):
        now = float(t)
        node.step(now, world.candidate_actions(now))
        decision = node.log.last().decision
        metrics = world.apply(decision.action, now)
        utility = goal.utility(metrics)
        node.feedback(metrics, utility=utility)
        if supervisor is not None:
            supervisor.observe_child(node.name, now, utility)
        utilities.append(utility)
    return utilities


def stuck_scenario(seed, supervised, total=700, warm=150, flip=300.0):
    """Warm both actions' records, then freeze exploration, then flip.

    After the flip the child's frozen model still says the old action is
    best; with near-zero exploration it stays stuck -- unless supervised.
    """
    node, goal = make_child(f"c{seed}", seed=seed, epsilon=0.3)
    world = FlippingWorld(change_at=flip, seed=seed)
    utilities = drive(node, goal, world, None, steps=warm)
    node.reasoner.epsilon = 0.01
    supervisor = Supervisor([node]) if supervised else None
    utilities += drive(node, goal, world, supervisor, steps=total - warm,
                       start=warm)
    return utilities, supervisor


class TestSupervisorMechanics:
    def test_validation(self):
        node, _ = make_child("c")
        with pytest.raises(ValueError):
            Supervisor([])
        with pytest.raises(ValueError):
            Supervisor([node, node])
        with pytest.raises(ValueError):
            Supervisor([node], jolt_epsilon=2.0)
        supervisor = Supervisor([node])
        with pytest.raises(KeyError):
            supervisor.observe_child("zzz", 0.0, 0.5)

    def test_collapse_triggers_jolt(self):
        _utilities, supervisor = stuck_scenario(seed=1, supervised=True)
        kinds = [i.kind for i in supervisor.interventions]
        assert "exploration-jolt" in kinds

    def test_jolt_raises_then_restores_epsilon(self):
        node, goal = make_child("c", seed=2)
        world = FlippingWorld(change_at=300.0, seed=2)
        drive(node, goal, world, None, steps=150)
        node.reasoner.epsilon = 0.01
        supervisor = Supervisor([node], jolt_duration=30)
        drive(node, goal, world, supervisor, steps=170, start=150)
        # Flip at 300, detection shortly after: jolting by t=320.
        assert supervisor.is_jolting("c")
        assert node.reasoner.epsilon == supervisor.jolt_epsilon
        drive(node, goal, world, supervisor, steps=80, start=320)
        assert not supervisor.is_jolting("c")
        assert node.reasoner.epsilon == 0.01

    def test_jolt_resets_the_model_when_configured(self):
        node, goal = make_child("c", seed=3)
        world = FlippingWorld(change_at=300.0, seed=3)
        drive(node, goal, world, None, steps=150)
        node.reasoner.epsilon = 0.01
        supervisor = Supervisor([node], reset_models=True)
        drive(node, goal, world, supervisor, steps=250, start=150)
        assert supervisor.interventions
        # The reset wiped the stale record: the model cannot still hold
        # hundreds of pre-flip samples for action 'a'.
        confidence = node.reasoner.model.confidence({"x": 0.5}, "a")
        assert confidence < 0.99

    def test_no_intervention_on_stable_child(self):
        node, goal = make_child("c", seed=4, epsilon=0.05)
        world = FlippingWorld(change_at=1e9, seed=4)  # never flips
        supervisor = Supervisor([node])
        drive(node, goal, world, supervisor, steps=400)
        assert not [i for i in supervisor.interventions
                    if i.kind == "exploration-jolt"]

    def test_escalation_after_repeated_collapses(self):
        node, _goal = make_child("c", seed=5)
        supervisor = Supervisor([node], escalate_after=2, jolt_duration=5)
        t = 0.0
        for _round in range(3):
            for _ in range(40):
                supervisor.observe_child("c", t, 0.9)
                t += 1
            for _ in range(40):
                supervisor.observe_child("c", t, 0.1)
                t += 1
        assert "c" in supervisor.escalations

    def test_describe(self):
        node, _ = make_child("c")
        supervisor = Supervisor([node])
        assert "supervising 1 node(s)" in supervisor.describe()


class TestSupervisionHelps:
    def test_supervised_child_recovers_unsupervised_stays_stuck(self):
        supervised_tail, unsupervised_tail = [], []
        for seed in range(3):
            utilities, _sup = stuck_scenario(seed=10 + seed, supervised=True)
            supervised_tail.append(float(np.mean(utilities[500:])))
            utilities, _ = stuck_scenario(seed=10 + seed, supervised=False)
            unsupervised_tail.append(float(np.mean(utilities[500:])))
        assert float(np.mean(supervised_tail)) > \
            float(np.mean(unsupervised_tail)) + 0.3
