"""Tests for the generic control loop and traces."""

import math

import numpy as np
import pytest

from repro.core.goals import Goal, Objective
from repro.core.levels import CapabilityProfile
from repro.core.loop import SimulationClock, Trace, TraceStep, run_control_loop
from repro.core.models import EmpiricalActionModel
from repro.core.node import SelfAwareNode
from repro.core.reasoner import StaticPolicy, UtilityReasoner
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import private, public


class ToyEnvironment:
    """Two actions; 'good' pays 0.9, 'bad' pays 0.1 on metric 'perf'."""

    def __init__(self):
        self.applied = []

    def candidate_actions(self, now):
        return ["good", "bad"]

    def apply(self, action, now):
        self.applied.append(action)
        return {"perf": 0.9 if action == "good" else 0.1}


class TestSimulationClock:
    def test_ticks_advance_time(self):
        clock = SimulationClock(start=0.0, dt=0.5)
        assert clock.tick() == 0.5
        assert clock.tick() == 1.0
        assert clock.ticks == 2

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            SimulationClock(dt=0.0)


class TestTrace:
    def _trace(self):
        t = Trace(node_name="n")
        for i, (a, u) in enumerate([("x", 0.1), ("x", 0.2), ("y", 0.6)]):
            t.append(TraceStep(time=float(i), action=a, metrics={"perf": u},
                               utility=u, explored=False, sensing_cost=1.0))
        return t

    def test_mean_utility(self):
        assert self._trace().mean_utility() == pytest.approx(0.3)

    def test_mean_utility_between(self):
        assert self._trace().mean_utility_between(1.0, 3.0) == pytest.approx(0.4)
        assert math.isnan(self._trace().mean_utility_between(10.0, 20.0))

    def test_empty_trace_mean_is_nan(self):
        assert math.isnan(Trace(node_name="n").mean_utility())

    def test_action_changes(self):
        assert self._trace().action_changes() == 1

    def test_metric_series(self):
        assert self._trace().metric_series("perf") == [0.1, 0.2, 0.6]
        assert all(math.isnan(v) for v in self._trace().metric_series("missing"))

    def test_total_sensing_cost(self):
        assert self._trace().total_sensing_cost() == pytest.approx(3.0)


class TestRunControlLoop:
    def _node(self, reasoner):
        suite = SensorSuite([Sensor(private("tick"), lambda: 0.0)])
        return SelfAwareNode("n", CapabilityProfile.minimal(), suite, reasoner)

    def test_learning_node_converges_to_good_action(self):
        goal = Goal([Objective("perf")])
        reasoner = UtilityReasoner(goal, EmpiricalActionModel(), epsilon=0.1,
                                   rng=np.random.default_rng(0))
        env = ToyEnvironment()
        trace = run_control_loop(self._node(reasoner), env, goal, steps=100)
        # Late in the run the good action dominates.
        late = [s.action for s in trace.steps[-20:]]
        assert late.count("good") >= 16
        assert trace.mean_utility() > 0.5

    def test_static_node_never_adapts(self):
        goal = Goal([Objective("perf")])
        env = ToyEnvironment()
        trace = run_control_loop(self._node(StaticPolicy("bad")), env, goal, steps=30)
        assert all(s.action == "bad" for s in trace.steps)
        assert trace.mean_utility() == pytest.approx(0.1)

    def test_trace_length_matches_steps(self):
        goal = Goal([Objective("perf")])
        trace = run_control_loop(self._node(StaticPolicy("good")),
                                 ToyEnvironment(), goal, steps=17)
        assert len(trace) == 17

    def test_invalid_steps(self):
        goal = Goal([Objective("perf")])
        with pytest.raises(ValueError):
            run_control_loop(self._node(StaticPolicy("good")),
                             ToyEnvironment(), goal, steps=0)

    def test_plain_loop_matches_general_loop_with_inert_injector(self):
        """``faults=None`` dispatches the specialised plain loop; an
        armed-but-dormant injector keeps the general loop.  Their traces
        must be indistinguishable, RNG decisions included."""
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import CRASH, SENSOR_NOISE, FaultPlan, FaultSpec

        dormant = FaultPlan(specs=(
            FaultSpec(kind=CRASH, start=1e8, end=1e9, intensity=0.8),
            FaultSpec(kind=SENSOR_NOISE, start=1e8, end=1e9, intensity=2.0),
        ), seed=13)

        def run(faults):
            goal = Goal([Objective("perf")])
            reasoner = UtilityReasoner(goal, EmpiricalActionModel(),
                                       epsilon=0.2,
                                       rng=np.random.default_rng(3))
            return run_control_loop(self._node(reasoner), ToyEnvironment(),
                                    goal, steps=60, faults=faults)

        plain = run(None)
        general = run(FaultInjector(dormant, run_seed=1))
        assert ([(s.time, s.action, s.metrics, s.utility, s.explored,
                  s.sensing_cost) for s in plain.steps]
                == [(s.time, s.action, s.metrics, s.utility, s.explored,
                     s.sensing_cost) for s in general.steps])

    def test_plain_loop_emits_identical_telemetry(self):
        from repro.obs.export import TelemetrySession

        def run(steps):
            goal = Goal([Objective("perf")])
            reasoner = UtilityReasoner(goal, EmpiricalActionModel(),
                                       epsilon=0.2,
                                       rng=np.random.default_rng(3))
            with TelemetrySession() as session:
                trace = run_control_loop(self._node(reasoner),
                                         ToyEnvironment(), goal, steps=steps)
            events = [(e.name, e.fields) for e in session.bus.events()
                      if e.name == "loop.step"]  # phase timings are wall clock
            return trace, events, session.registry.snapshot()

        trace, events, metrics = run(25)
        assert len(trace) == 25
        assert len(events) == 25
        # Determinism of the telemetry-enabled plain path.
        trace2, events2, metrics2 = run(25)
        assert events == events2
        assert metrics["counters"] == metrics2["counters"]

    def test_clock_is_respected(self):
        goal = Goal([Objective("perf")])
        clock = SimulationClock(start=100.0, dt=2.0)
        trace = run_control_loop(self._node(StaticPolicy("good")),
                                 ToyEnvironment(), goal, steps=3, clock=clock)
        assert [s.time for s in trace.steps] == [102.0, 104.0, 106.0]

    def test_peer_reports_are_delivered(self):
        class ReportingEnvironment(ToyEnvironment):
            def peer_reports(self, now):
                yield ("peer-7", "load", 0.42)

        goal = Goal([Objective("perf")])
        node = self._node(StaticPolicy("good"))
        run_control_loop(node, ReportingEnvironment(), goal, steps=5)
        scope = public("load", entity="peer-7")
        assert node.knowledge.has(scope)
        assert node.knowledge.value(scope) == 0.42
        assert len(node.knowledge.history(scope)) == 5
