"""Tests for self-explanation: journals, narration, reports."""

import pytest

from repro.core.actuators import ActuationResult
from repro.core.explanation import ExplanationLog, narrate
from repro.core.goals import Goal, Objective
from repro.core.reasoner import Decision


def make_decision(action="a", explored=False, considered=None, time=1.0):
    goal = Goal([Objective("x")])
    considered = considered if considered is not None else {
        "a": {"x": 0.9}, "b": {"x": 0.1}}
    evaluations = {k: goal.evaluate(v) for k, v in considered.items()}
    return Decision(action=action, time=time, reason="highest predicted utility",
                    explored=explored, considered=considered,
                    evaluations=evaluations, goal_version=1)


class TestNarrate:
    def test_mentions_action_and_reason(self):
        log = ExplanationLog()
        step = log.log(make_decision())
        text = narrate(step)
        assert "'a'" in text and "highest predicted utility" in text

    def test_mentions_exploration(self):
        log = ExplanationLog()
        step = log.log(make_decision(explored=True))
        assert "exploratory" in narrate(step)

    def test_mentions_veto(self):
        log = ExplanationLog()
        veto = ActuationResult(action="a", applied=False, vetoed_by="guard: hot")
        step = log.log(make_decision(), veto)
        assert "vetoed" in narrate(step)

    def test_reports_prediction_error_when_outcome_known(self):
        log = ExplanationLog()
        log.log(make_decision())
        log.attach_outcome({"x": 0.4})
        text = narrate(log.last())
        assert "deviated" in text and "0.500" in text

    def test_margin_in_narrative(self):
        log = ExplanationLog()
        step = log.log(make_decision())
        assert "runner-up" in narrate(step)


class TestExplanationLog:
    def test_empty_log_explains_gracefully(self):
        assert "not made any decisions" in ExplanationLog().explain_last()

    def test_bounded_retention(self):
        log = ExplanationLog(maxlen=3)
        for t in range(10):
            log.log(make_decision(time=float(t)))
        assert len(log) == 3
        assert log.total_logged == 10

    def test_attach_outcome_requires_step(self):
        with pytest.raises(IndexError):
            ExplanationLog().attach_outcome({"x": 1.0})

    def test_explain_window(self):
        log = ExplanationLog()
        for t in range(5):
            log.log(make_decision(time=float(t)))
        narratives = log.explain_window(3)
        assert len(narratives) == 3
        assert "t=2" in narratives[0]

    def test_report_statistics(self):
        log = ExplanationLog()
        log.log(make_decision())
        log.log(make_decision(explored=True))
        log.log(make_decision(),
                ActuationResult(action="a", applied=False, vetoed_by="g"))
        report = log.report()
        assert report.steps == 3
        assert report.coverage == 1.0
        assert report.evidence_rate == 1.0
        assert report.exploratory == 1
        assert report.vetoed == 1
        assert report.mean_candidates == pytest.approx(2.0)

    def test_report_on_empty_log(self):
        report = ExplanationLog().report()
        assert report.steps == 0 and report.coverage == 0.0

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            ExplanationLog(maxlen=0)
