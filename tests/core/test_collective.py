"""Tests for collective self-awareness: gossip, central, hierarchical."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core.collective import (CentralAggregator, CommunicationNetwork,
                                   GossipEstimator, HierarchicalAggregator)


def names(n):
    return [f"n{i}" for i in range(n)]


@pytest.fixture
def ring8():
    return CommunicationNetwork.ring(names(8), rng=np.random.default_rng(0))


def values_for(ns):
    return {name: float(i) for i, name in enumerate(ns)}


class TestCommunicationNetwork:
    def test_ring_degree(self, ring8):
        assert all(len(list(ring8.graph.neighbors(n))) == 2 for n in ring8.graph)

    def test_star_topology(self):
        net = CommunicationNetwork.star("hub", names(4))
        assert len(list(net.graph.neighbors("hub"))) == 4

    def test_transmit_counts_messages(self, ring8):
        assert ring8.transmit("n0", "n1")
        assert ring8.messages_sent == 1
        assert ring8.messages_delivered == 1

    def test_transmit_fails_on_non_edge(self, ring8):
        assert not ring8.transmit("n0", "n4")

    def test_failed_node_isolated(self, ring8):
        ring8.fail_node("n1")
        assert not ring8.transmit("n0", "n1")
        assert "n1" not in ring8.neighbours("n0")
        ring8.restore_node("n1")
        assert ring8.transmit("n0", "n1")

    def test_loss_rate(self):
        net = CommunicationNetwork.ring(names(4), loss_rate=1.0,
                                        rng=np.random.default_rng(0))
        assert not net.transmit("n0", "n1")
        assert net.messages_sent == 1 and net.messages_delivered == 0

    def test_geometric_is_connected(self):
        net = CommunicationNetwork.random_geometric(names(30), seed=3)
        assert nx.is_connected(net.graph)


class TestGossipEstimator:
    def test_converges_to_mean(self, ring8):
        vals = values_for(names(8))  # mean 3.5
        gossip = GossipEstimator(ring8, rng=np.random.default_rng(1))
        result = gossip.run(vals, rounds=60)
        assert result.truth == pytest.approx(3.5)
        assert result.max_error < 0.1

    def test_mass_conservation(self, ring8):
        vals = values_for(names(8))
        gossip = GossipEstimator(ring8, rng=np.random.default_rng(1))
        result = gossip.run(vals, rounds=10)
        # Pairwise averaging conserves the sum exactly (no loss configured).
        assert sum(result.estimates.values()) == pytest.approx(sum(vals.values()))

    def test_survives_any_single_failure(self, ring8):
        vals = values_for(names(8))
        ring8.fail_node("n3")
        gossip = GossipEstimator(ring8, rng=np.random.default_rng(2))
        result = gossip.run(vals, rounds=80)
        live_vals = [v for n, v in vals.items() if n != "n3"]
        assert result.truth == pytest.approx(sum(live_vals) / len(live_vals))
        assert "n3" not in result.estimates
        assert result.max_error < 0.2

    def test_rounds_to_converge_decreases_with_connectivity(self):
        vals = values_for(names(16))
        ring = CommunicationNetwork.ring(names(16))
        complete = CommunicationNetwork(
            nx.complete_graph(16), rng=np.random.default_rng(0))
        complete.graph = nx.relabel_nodes(complete.graph,
                                          dict(enumerate(names(16))))
        slow = GossipEstimator(ring, rng=np.random.default_rng(3)).rounds_to_converge(
            vals, tolerance=0.5)
        fast = GossipEstimator(complete, rng=np.random.default_rng(3)).rounds_to_converge(
            vals, tolerance=0.5)
        assert fast <= slow


class TestCentralAggregator:
    def test_exact_when_hub_alive(self):
        net = CommunicationNetwork.star("hub", names(5))
        vals = {**values_for(names(5)), "hub": 10.0}
        result = CentralAggregator(net, "hub").run(vals)
        assert result.max_error == pytest.approx(0.0)
        # (N-1) up + (N-1) down messages.
        assert result.messages == 10

    def test_hub_failure_blinds_everyone(self):
        net = CommunicationNetwork.star("hub", names(5))
        net.fail_node("hub")
        vals = {**values_for(names(5)), "hub": 10.0}
        result = CentralAggregator(net, "hub").run(vals)
        assert result.estimates == {}
        assert math.isnan(result.mean_error)


class TestHierarchicalAggregator:
    def _net(self, n):
        # Fully connected so logical tree links always exist physically.
        g = nx.complete_graph(n)
        g = nx.relabel_nodes(g, dict(enumerate(names(n))))
        return CommunicationNetwork(g)

    def test_exact_aggregation(self):
        ns = names(7)
        net = self._net(7)
        result = HierarchicalAggregator(net, ns, fanout=2).run(values_for(ns))
        assert result.max_error == pytest.approx(0.0)
        assert set(result.estimates) == set(ns)

    def test_subtree_failure_partial_blindness(self):
        ns = names(7)
        net = self._net(7)
        net.fail_node(ns[1])  # internal node: children 3 and 4 lost
        result = HierarchicalAggregator(net, ns, fanout=2).run(values_for(ns))
        assert ns[1] not in result.estimates
        assert ns[3] not in result.estimates and ns[4] not in result.estimates
        # Remaining subtree still gets an answer.
        assert ns[0] in result.estimates and ns[2] in result.estimates

    def test_root_failure_blinds_everyone(self):
        ns = names(7)
        net = self._net(7)
        net.fail_node(ns[0])
        result = HierarchicalAggregator(net, ns, fanout=2).run(values_for(ns))
        assert result.estimates == {}

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            HierarchicalAggregator(self._net(3), names(3), fanout=1)
