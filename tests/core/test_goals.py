"""Tests for goals, objectives, constraints and Pareto machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goals import (Constraint, Goal, Objective, dominates,
                              knee_point, pareto_front)


class TestObjective:
    def test_score_normalises_maximise(self):
        o = Objective("perf", maximise=True, lo=0.0, hi=10.0)
        assert o.score(0.0) == 0.0
        assert o.score(10.0) == 1.0
        assert o.score(5.0) == pytest.approx(0.5)

    def test_score_normalises_minimise(self):
        o = Objective("cost", maximise=False, lo=0.0, hi=10.0)
        assert o.score(0.0) == 1.0
        assert o.score(10.0) == 0.0

    def test_score_clips_out_of_range(self):
        o = Objective("x", lo=0.0, hi=1.0)
        assert o.score(-5.0) == 0.0
        assert o.score(5.0) == 1.0

    def test_nan_scores_zero(self):
        assert Objective("x").score(math.nan) == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Objective("x", lo=1.0, hi=1.0)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_score_always_in_unit_interval(self, raw):
        o = Objective("x", lo=-2.0, hi=7.0)
        assert 0.0 <= o.score(raw) <= 1.0


class TestConstraint:
    def test_max_constraint(self):
        c = Constraint("temp", "max", 80.0)
        assert c.satisfied(75.0)
        assert not c.satisfied(85.0)
        assert c.violation(85.0) == pytest.approx(5.0)

    def test_min_constraint(self):
        c = Constraint("throughput", "min", 100.0)
        assert c.satisfied(150.0)
        assert c.violation(80.0) == pytest.approx(20.0)

    def test_nan_counts_as_violated(self):
        assert math.isinf(Constraint("x", "max", 1.0).violation(math.nan))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Constraint("x", "equals", 1.0)


class TestGoal:
    @pytest.fixture
    def goal(self):
        return Goal(
            objectives=[Objective("perf", maximise=True, lo=0, hi=100),
                        Objective("cost", maximise=False, lo=0, hi=10)],
            weights={"perf": 3.0, "cost": 1.0},
            constraints=[Constraint("temp", "max", 80.0)],
            name="test")

    def test_weights_normalised(self, goal):
        w = goal.weights
        assert w["perf"] == pytest.approx(0.75)
        assert w["cost"] == pytest.approx(0.25)

    def test_utility_weighted_sum(self, goal):
        # perf=100 -> 1.0, cost=0 -> 1.0 => utility 1.0
        assert goal.utility({"perf": 100.0, "cost": 0.0, "temp": 50.0}) == pytest.approx(1.0)
        # perf=50 -> .5, cost=10 -> 0 => 0.75*0.5 = 0.375
        assert goal.utility({"perf": 50.0, "cost": 10.0}) == pytest.approx(0.375)

    def test_missing_metric_scores_zero(self, goal):
        assert goal.utility({"cost": 0.0}) == pytest.approx(0.25)

    def test_evaluate_feasibility(self, goal):
        ev_ok = goal.evaluate({"perf": 50, "cost": 5, "temp": 70})
        ev_bad = goal.evaluate({"perf": 50, "cost": 5, "temp": 90})
        assert ev_ok.feasible
        assert not ev_bad.feasible
        assert ev_bad.total_violation == pytest.approx(10.0)

    def test_reweight_bumps_version(self, goal):
        v0 = goal.version
        goal.reweight(perf=1.0)
        assert goal.version == v0 + 1
        assert goal.weights["perf"] == pytest.approx(0.5)

    def test_add_constraint_bumps_version(self, goal):
        v0 = goal.version
        goal.add_constraint(Constraint("cost", "max", 8.0))
        assert goal.version == v0 + 1
        assert len(goal.constraints) == 2

    def test_invalid_weights_rejected(self, goal):
        with pytest.raises(ValueError):
            goal.set_weights({"perf": 1.0})  # missing cost
        with pytest.raises(ValueError):
            goal.set_weights({"perf": 1.0, "cost": 1.0, "bogus": 1.0})
        with pytest.raises(ValueError):
            goal.set_weights({"perf": -1.0, "cost": 1.0})
        with pytest.raises(ValueError):
            goal.set_weights({"perf": 0.0, "cost": 0.0})

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ValueError):
            Goal(objectives=[Objective("x"), Objective("x")])

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            Goal(objectives=[])

    def test_score_vector_order_matches_objectives(self, goal):
        vec = goal.score_vector({"perf": 100, "cost": 10})
        assert vec == pytest.approx((1.0, 0.0))

    def test_describe_mentions_constraints(self, goal):
        text = goal.describe()
        assert "perf" in text and "temp max 80" in text


class TestPareto:
    def test_dominates_basic(self):
        assert dominates((1.0, 1.0), (0.5, 0.5))
        assert dominates((1.0, 0.5), (0.5, 0.5))
        assert not dominates((1.0, 0.4), (0.5, 0.5))
        assert not dominates((0.5, 0.5), (0.5, 0.5))  # equal: no strict gain

    def test_dominates_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_pareto_front_extraction(self):
        pts = [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5), (0.4, 0.4)]
        front = pareto_front(pts)
        assert set(front) == {0, 1, 2}

    def test_pareto_front_keeps_duplicates(self):
        pts = [(1.0, 1.0), (1.0, 1.0)]
        assert set(pareto_front(pts)) == {0, 1}

    def test_knee_point_prefers_balance(self):
        pts = [(1.0, 0.0), (0.0, 1.0), (0.8, 0.8)]
        assert knee_point(pts) == 2

    def test_knee_point_empty(self):
        assert knee_point([]) is None

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_nondominated(self, pts):
        front = pareto_front(pts)
        assert front  # never empty for non-empty input
        for i in front:
            for j in front:
                if i != j:
                    assert not dominates(pts[i], pts[j])
