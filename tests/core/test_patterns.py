"""Tests for the architectural pattern builders."""

import numpy as np
import pytest

from repro.core.goals import Goal, Objective
from repro.core.levels import CapabilityProfile, SelfAwarenessLevel, ladder
from repro.core.meta import MetaReasoner
from repro.core.models import ContextualActionModel, EmpiricalActionModel
from repro.core.patterns import (build_model, build_node, build_reasoner,
                                 build_static_node, clone_goal)
from repro.core.reasoner import StaticPolicy, UtilityReasoner
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import private


@pytest.fixture
def goal():
    return Goal([Objective("perf"), Objective("cost", maximise=False)],
                name="live")


@pytest.fixture
def sensors():
    return SensorSuite([Sensor(private("load"), lambda: 0.5)])


class TestCloneGoal:
    def test_clone_snapshot_is_insulated(self, goal):
        frozen = clone_goal(goal)
        goal.set_weights({"perf": 10.0, "cost": 1.0})
        assert frozen.weights["perf"] == pytest.approx(0.5)
        assert goal.weights["perf"] != frozen.weights["perf"]

    def test_clone_preserves_structure(self, goal):
        frozen = clone_goal(goal)
        assert frozen.objective_names == goal.objective_names
        assert "design-time" in frozen.name


class TestBuildModel:
    def test_contextfree_below_interaction(self):
        m = build_model(CapabilityProfile.minimal())
        assert isinstance(m, EmpiricalActionModel)

    def test_contextual_with_time_or_interaction(self):
        for level in (SelfAwarenessLevel.INTERACTION, SelfAwarenessLevel.TIME):
            m = build_model(CapabilityProfile.up_to(level))
            assert isinstance(m, ContextualActionModel)


class TestBuildReasoner:
    def test_non_meta_profiles_get_utility_reasoner(self, goal):
        r = build_reasoner(CapabilityProfile.minimal(), goal,
                           rng=np.random.default_rng(0))
        assert isinstance(r, UtilityReasoner)

    def test_goal_unaware_reasoner_uses_frozen_goal(self, goal):
        r = build_reasoner(CapabilityProfile.up_to(SelfAwarenessLevel.TIME),
                           goal, rng=np.random.default_rng(0))
        assert r.goal is not goal
        goal.set_weights({"perf": 100.0, "cost": 1.0})
        assert r.goal.weights["perf"] == pytest.approx(0.5)

    def test_goal_aware_reasoner_reads_live_goal(self, goal):
        r = build_reasoner(CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
                           goal, rng=np.random.default_rng(0))
        assert r.goal is goal

    def test_meta_profile_gets_meta_reasoner(self, goal):
        r = build_reasoner(CapabilityProfile.full_stack(), goal,
                           rng=np.random.default_rng(0))
        assert isinstance(r, MetaReasoner)
        assert set(r.strategies) == {"stable", "plastic"}


class TestBuildNode:
    def test_ladder_nodes_have_matching_profiles(self, goal, sensors):
        for profile in ladder():
            node = build_node("n", profile, sensors, goal,
                              rng=np.random.default_rng(0))
            assert node.profile == profile

    def test_static_node_has_empty_profile(self, sensors):
        node = build_static_node("s", sensors, action="a")
        assert len(node.profile) == 0
        assert isinstance(node.reasoner, StaticPolicy)

    def test_built_node_runs_a_step(self, goal, sensors):
        node = build_node("n", CapabilityProfile.full_stack(), sensors, goal,
                          rng=np.random.default_rng(0))
        result = node.step(1.0, ["a", "b"])
        node.feedback({"perf": 0.5, "cost": 0.2}, utility=0.6)
        assert result.decision.action in ("a", "b")
