"""Tests for self-knowledge: observations, histories, beliefs."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knowledge import Belief, History, KnowledgeBase
from repro.core.spans import Span, private, public


class TestBelief:
    def test_confidence_bounds_enforced(self):
        with pytest.raises(ValueError):
            Belief(private("x"), 1.0, confidence=1.5, time=0.0)
        with pytest.raises(ValueError):
            Belief(private("x"), 1.0, confidence=-0.1, time=0.0)

    def test_discount_halves_at_half_life(self):
        b = Belief(private("x"), 1.0, confidence=0.8, time=0.0)
        aged = b.discounted(now=10.0, half_life=10.0)
        assert aged.confidence == pytest.approx(0.4)
        assert aged.value == b.value

    def test_discount_disabled_with_nonpositive_half_life(self):
        b = Belief(private("x"), 1.0, confidence=0.8, time=0.0)
        assert b.discounted(now=100.0, half_life=0.0).confidence == 0.8

    def test_discount_never_increases_confidence(self):
        b = Belief(private("x"), 1.0, confidence=0.8, time=5.0)
        assert b.discounted(now=1.0, half_life=2.0).confidence == 0.8


class TestHistory:
    def test_records_in_time_order(self):
        h = History(private("x"))
        h.record(1.0, 10.0)
        h.record(2.0, 20.0)
        with pytest.raises(ValueError):
            h.record(1.5, 15.0)

    def test_bounded_retention(self):
        h = History(private("x"), maxlen=3)
        for t in range(10):
            h.record(float(t), float(t))
        assert len(h) == 3
        assert h.values() == [7.0, 8.0, 9.0]

    def test_maxlen_must_be_positive(self):
        with pytest.raises(ValueError):
            History(private("x"), maxlen=0)

    def test_latest_none_when_empty(self):
        assert History(private("x")).latest is None

    def test_mean_and_std(self):
        h = History(private("x"))
        for t, v in enumerate([2.0, 4.0, 6.0]):
            h.record(float(t), v)
        assert h.mean() == pytest.approx(4.0)
        assert h.std() == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(History(private("x")).mean())

    def test_trend_recovers_linear_slope(self):
        h = History(private("x"))
        for t in range(10):
            h.record(float(t), 3.0 * t + 1.0)
        assert h.trend() == pytest.approx(3.0)

    def test_trend_zero_for_short_history(self):
        h = History(private("x"))
        h.record(0.0, 5.0)
        assert h.trend() == 0.0

    def test_windowed_stats_use_tail(self):
        h = History(private("x"))
        for t, v in enumerate([100.0, 1.0, 2.0, 3.0]):
            h.record(float(t), v)
        assert h.mean(window=3) == pytest.approx(2.0)

    def test_since_filters_strictly(self):
        h = History(private("x"))
        for t in range(5):
            h.record(float(t), float(t))
        assert [o.time for o in h.since(2.0)] == [3.0, 4.0]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mean_within_min_max(self, values):
        h = History(private("x"), maxlen=100)
        for t, v in enumerate(values):
            h.record(float(t), v)
        assert min(values) - 1e-6 <= h.mean() <= max(values) + 1e-6


class TestKnowledgeBase:
    def test_observe_creates_history_and_fresh_belief(self):
        kb = KnowledgeBase()
        kb.observe(private("x"), 1.0, 42.0)
        assert kb.has(private("x"))
        b = kb.belief(private("x"))
        assert b.value == 42.0 and b.confidence == 1.0

    def test_value_default_for_unknown(self):
        kb = KnowledgeBase()
        assert math.isnan(kb.value(private("missing")))
        assert kb.value(private("missing"), default=-1.0) == -1.0

    def test_belief_age_discounting(self):
        kb = KnowledgeBase()
        kb.observe(private("x"), 0.0, 1.0)
        b = kb.belief(private("x"), now=10.0, half_life=10.0)
        assert b.confidence == pytest.approx(0.5)

    def test_scopes_partitioned_by_span(self):
        kb = KnowledgeBase()
        kb.observe(private("a"), 0.0, 1.0)
        kb.observe(public("b"), 0.0, 2.0)
        assert kb.scopes(Span.PRIVATE) == [private("a")]
        assert kb.scopes(Span.PUBLIC) == [public("b")]
        assert len(kb.scopes()) == 2

    def test_social_scopes(self):
        kb = KnowledgeBase()
        kb.observe(public("load", entity="n1"), 0.0, 1.0)
        kb.observe(private("load"), 0.0, 2.0)
        assert kb.social_scopes() == [public("load", entity="n1")]

    def test_staleness(self):
        kb = KnowledgeBase()
        assert math.isinf(kb.staleness(private("x"), now=5.0))
        kb.observe(private("x"), 2.0, 1.0)
        assert kb.staleness(private("x"), now=5.0) == pytest.approx(3.0)

    def test_coverage(self):
        kb = KnowledgeBase()
        kb.observe(private("a"), 0.0, 1.0)
        expected = [private("a"), private("b")]
        assert kb.coverage(expected) == pytest.approx(0.5)
        assert kb.coverage([]) == 1.0

    def test_snapshot_flattens_beliefs(self):
        kb = KnowledgeBase()
        kb.observe(private("a"), 0.0, 1.5)
        snap = kb.snapshot()
        assert snap == {"private:a": 1.5}

    def test_believe_installs_derived_belief(self):
        kb = KnowledgeBase()
        kb.believe(Belief(private("x"), 3.0, confidence=0.4, time=1.0))
        assert kb.value(private("x")) == 3.0
        # No history though: a belief is not an observation.
        assert not kb.has(private("x"))

    def test_history_bound_propagates(self):
        kb = KnowledgeBase(history_maxlen=2)
        for t in range(5):
            kb.observe(private("x"), float(t), float(t))
        assert len(kb.history(private("x"))) == 2
