"""Tests for reasoners: static, reactive, utility-based."""

import math

import numpy as np
import pytest

from repro.core.goals import Constraint, Goal, Objective
from repro.core.models import EmpiricalActionModel
from repro.core.reasoner import (ReactiveRulePolicy, Rule, StaticPolicy,
                                 UtilityReasoner)


@pytest.fixture
def goal():
    return Goal(objectives=[Objective("perf", maximise=True, lo=0, hi=10),
                            Objective("cost", maximise=False, lo=0, hi=10)],
                name="g")


class TestStaticPolicy:
    def test_always_same_action(self):
        p = StaticPolicy("a")
        for t in range(5):
            assert p.decide(float(t), {}, ["a", "b"]).action == "a"

    def test_falls_back_when_action_unavailable(self):
        p = StaticPolicy("z")
        assert p.decide(0.0, {}, ["a", "b"]).action == "a"

    def test_empty_actions_rejected(self):
        with pytest.raises(ValueError):
            StaticPolicy("a").decide(0.0, {}, [])


class TestReactiveRulePolicy:
    def test_first_matching_rule_wins(self):
        p = ReactiveRulePolicy(
            rules=[Rule("load", ">", 0.8, "scale_up"),
                   Rule("load", "<", 0.2, "scale_down")],
            default="hold")
        assert p.decide(0.0, {"load": 0.9}, ["scale_up", "scale_down", "hold"]).action == "scale_up"
        assert p.decide(0.0, {"load": 0.1}, ["scale_up", "scale_down", "hold"]).action == "scale_down"
        assert p.decide(0.0, {"load": 0.5}, ["scale_up", "scale_down", "hold"]).action == "hold"

    def test_missing_metric_does_not_fire(self):
        p = ReactiveRulePolicy([Rule("load", ">", 0.8, "up")], default="hold")
        assert p.decide(0.0, {}, ["up", "hold"]).action == "hold"

    def test_nan_metric_does_not_fire(self):
        p = ReactiveRulePolicy([Rule("load", ">", 0.8, "up")], default="hold")
        assert p.decide(0.0, {"load": math.nan}, ["up", "hold"]).action == "hold"

    def test_rule_action_must_be_available(self):
        p = ReactiveRulePolicy([Rule("load", ">", 0.8, "up")], default="hold")
        assert p.decide(0.0, {"load": 0.9}, ["hold"]).action == "hold"

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            Rule("x", ">=", 1.0, "a")

    def test_reason_mentions_rule(self):
        p = ReactiveRulePolicy([Rule("load", ">", 0.8, "up")], default="hold")
        d = p.decide(0.0, {"load": 0.9}, ["up", "hold"])
        assert "load" in d.reason


class TestUtilityReasoner:
    def _trained_reasoner(self, goal, epsilon=0.0):
        model = EmpiricalActionModel()
        # 'good' dominates 'bad' in both objectives.
        for _ in range(20):
            model.update({}, "good", {"perf": 9.0, "cost": 1.0})
            model.update({}, "bad", {"perf": 1.0, "cost": 9.0})
        return UtilityReasoner(goal, model, epsilon=epsilon,
                               rng=np.random.default_rng(0))

    def test_greedy_picks_dominant_action(self, goal):
        r = self._trained_reasoner(goal)
        d = r.decide(0.0, {}, ["good", "bad"])
        assert d.action == "good"
        assert not d.explored
        assert d.evaluations["good"].utility > d.evaluations["bad"].utility

    def test_decision_carries_evidence(self, goal):
        r = self._trained_reasoner(goal)
        d = r.decide(0.0, {}, ["good", "bad"])
        assert set(d.considered) == {"good", "bad"}
        assert d.goal_version == goal.version
        assert math.isfinite(d.margin())

    def test_exploration_rate_respected(self, goal):
        r = self._trained_reasoner(goal, epsilon=1.0)
        d = r.decide(0.0, {}, ["good", "bad"])
        assert d.explored and d.action == "bad"

    def test_low_confidence_doubles_exploration(self, goal):
        model = EmpiricalActionModel(confidence_scale=1e6)  # always unconfident
        r = UtilityReasoner(goal, model, epsilon=0.4, confidence_floor=0.5,
                            rng=np.random.default_rng(3))
        explored = sum(r.decide(0.0, {}, ["a", "b"]).explored for _ in range(500))
        assert 0.7 < explored / 500 < 0.9  # ~0.8 effective rate

    def test_constraint_filtering(self):
        goal = Goal(objectives=[Objective("perf", lo=0, hi=10)],
                    constraints=[Constraint("temp", "max", 50.0)])
        model = EmpiricalActionModel()
        for _ in range(10):
            model.update({}, "hot", {"perf": 9.0, "temp": 90.0})
            model.update({}, "cool", {"perf": 5.0, "temp": 30.0})
        r = UtilityReasoner(goal, model, epsilon=0.0, rng=np.random.default_rng(0))
        d = r.decide(0.0, {}, ["hot", "cool"])
        assert d.action == "cool"  # feasible beats higher-utility infeasible

    def test_least_violation_when_all_infeasible(self):
        goal = Goal(objectives=[Objective("perf", lo=0, hi=10)],
                    constraints=[Constraint("temp", "max", 50.0)])
        model = EmpiricalActionModel()
        for _ in range(10):
            model.update({}, "hot", {"perf": 9.0, "temp": 90.0})
            model.update({}, "warm", {"perf": 5.0, "temp": 60.0})
        r = UtilityReasoner(goal, model, epsilon=0.0, rng=np.random.default_rng(0))
        assert r.decide(0.0, {}, ["hot", "warm"]).action == "warm"

    def test_knee_mode_picks_balanced_tradeoff(self, goal):
        model = EmpiricalActionModel()
        for _ in range(10):
            model.update({}, "extreme_perf", {"perf": 10.0, "cost": 10.0})
            model.update({}, "extreme_cost", {"perf": 0.0, "cost": 0.0})
            model.update({}, "balanced", {"perf": 8.0, "cost": 2.0})
        r = UtilityReasoner(goal, model, epsilon=0.0, use_knee=True,
                            rng=np.random.default_rng(0))
        d = r.decide(0.0, {}, ["extreme_perf", "extreme_cost", "balanced"])
        assert d.action == "balanced"

    def test_live_goal_change_takes_effect(self, goal):
        model = EmpiricalActionModel()
        for _ in range(20):
            model.update({}, "fast", {"perf": 9.0, "cost": 9.0})
            model.update({}, "cheap", {"perf": 1.0, "cost": 1.0})
        r = UtilityReasoner(goal, model, epsilon=0.0, rng=np.random.default_rng(0))
        goal.set_weights({"perf": 1.0, "cost": 0.001})
        assert r.decide(0.0, {}, ["fast", "cheap"]).action == "fast"
        goal.set_weights({"perf": 0.001, "cost": 1.0})
        assert r.decide(1.0, {}, ["fast", "cheap"]).action == "cheap"

    def test_learn_feeds_model(self, goal):
        model = EmpiricalActionModel()
        r = UtilityReasoner(goal, model, epsilon=0.0, rng=np.random.default_rng(0))
        r.learn({}, "a", {"perf": 5.0})
        assert model.predict({}, "a")["perf"] == 5.0

    def test_invalid_epsilon(self, goal):
        with pytest.raises(ValueError):
            UtilityReasoner(goal, EmpiricalActionModel(), epsilon=1.5)
