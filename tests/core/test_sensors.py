"""Tests for sensors and sensor suites."""


import numpy as np
import pytest

from repro.core.knowledge import KnowledgeBase
from repro.core.sensors import Sensor, SensorSuite
from repro.core.spans import private, public


def constant(value):
    return lambda: value


class TestSensor:
    def test_noiseless_sample_is_exact(self):
        s = Sensor(private("x"), constant(5.0))
        r = s.sample(1.0)
        assert r.is_valid() and r.value == 5.0

    def test_noise_is_applied(self):
        rng = np.random.default_rng(0)
        s = Sensor(private("x"), constant(0.0), noise_std=1.0, rng=rng)
        values = [s.sample(float(t)).value for t in range(200)]
        assert np.std(values) == pytest.approx(1.0, rel=0.2)
        assert np.mean(values) == pytest.approx(0.0, abs=0.2)

    def test_failures_produce_invalid_readings(self):
        rng = np.random.default_rng(1)
        s = Sensor(private("x"), constant(1.0), failure_rate=1.0, rng=rng)
        r = s.sample(0.0)
        assert not r.is_valid()
        assert s.observed_failure_rate == 1.0

    def test_observed_failure_rate_tracks_empirical(self):
        rng = np.random.default_rng(2)
        s = Sensor(private("x"), constant(1.0), failure_rate=0.3, rng=rng)
        for t in range(500):
            s.sample(float(t))
        assert s.observed_failure_rate == pytest.approx(0.3, abs=0.07)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Sensor(private("x"), constant(1.0), noise_std=-1.0)
        with pytest.raises(ValueError):
            Sensor(private("x"), constant(1.0), failure_rate=2.0)
        with pytest.raises(ValueError):
            Sensor(private("x"), constant(1.0), cost=-0.1)


class TestSensorSuite:
    def test_duplicate_scope_rejected(self):
        suite = SensorSuite([Sensor(private("x"), constant(1.0))])
        with pytest.raises(ValueError):
            suite.add(Sensor(private("x"), constant(2.0)))

    def test_sample_into_records_valid_readings(self):
        suite = SensorSuite([
            Sensor(private("a"), constant(1.0)),
            Sensor(public("b"), constant(2.0)),
        ])
        kb = KnowledgeBase()
        readings = suite.sample_into(kb, time=1.0)
        assert len(readings) == 2
        assert kb.value(private("a")) == 1.0
        assert kb.value(public("b")) == 2.0

    def test_sample_into_subset(self):
        suite = SensorSuite([
            Sensor(private("a"), constant(1.0)),
            Sensor(private("b"), constant(2.0)),
        ])
        kb = KnowledgeBase()
        suite.sample_into(kb, time=1.0, scopes=[private("a")])
        assert kb.has(private("a"))
        assert not kb.has(private("b"))

    def test_failed_reading_not_recorded(self):
        suite = SensorSuite([
            Sensor(private("a"), constant(1.0), failure_rate=1.0,
                   rng=np.random.default_rng(0)),
        ])
        kb = KnowledgeBase()
        readings = suite.sample_into(kb, time=1.0)
        assert len(readings) == 1 and not readings[0].is_valid()
        assert not kb.has(private("a"))

    def test_total_cost(self):
        suite = SensorSuite([
            Sensor(private("a"), constant(1.0), cost=2.0),
            Sensor(private("b"), constant(1.0), cost=3.0),
        ])
        assert suite.total_cost() == 5.0
        assert suite.total_cost([private("a")]) == 2.0

    def test_scopes_sorted(self):
        suite = SensorSuite([
            Sensor(private("z"), constant(1.0)),
            Sensor(private("a"), constant(1.0)),
        ])
        assert suite.scopes() == [private("a"), private("z")]
