"""Tests for meta-self-awareness: strategy monitoring and switching."""

import math

import pytest

from repro.core.meta import MetaReasoner
from repro.core.reasoner import Decision, Reasoner
from repro.learning.drift import PageHinkley


class FixedReasoner(Reasoner):
    """Test double: always proposes the same action; records learn calls."""

    def __init__(self, action):
        self.action = action
        self.learned = []

    def decide(self, time, context, actions):
        return Decision(action=self.action, time=time, reason=f"always {self.action}")

    def learn(self, context, action, outcome):
        self.learned.append((action, dict(outcome)))


def make_meta(probe_interval=0, cooldown=2, margin=0.05, detector_factory=None):
    return MetaReasoner(
        strategies={"a": FixedReasoner("a"), "b": FixedReasoner("b")},
        initial="a", probe_interval=probe_interval, cooldown=cooldown,
        switch_margin=margin, detector_factory=detector_factory)


class TestMetaReasonerBasics:
    def test_delegates_to_active_strategy(self):
        meta = make_meta()
        d = meta.decide(1.0, {}, ["a", "b"])
        assert d.action == "a"
        assert "meta" in d.reason

    def test_learn_feeds_all_strategies(self):
        meta = make_meta()
        meta.learn({}, "a", {"x": 1.0})
        assert all(len(s.learned) == 1 for s in meta.strategies.values())

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            MetaReasoner(strategies={})

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            MetaReasoner(strategies={"a": FixedReasoner("a")}, initial="zzz")

    def test_probing_visits_rivals(self):
        meta = make_meta(probe_interval=3)
        actions_seen = []
        for t in range(9):
            d = meta.decide(float(t), {}, ["a", "b"])
            actions_seen.append(d.action)
            meta.observe_utility(float(t), 0.5)
        assert "b" in actions_seen  # every 3rd decision probes

    def test_self_assessment_reports_all_strategies(self):
        meta = make_meta()
        assessment = meta.self_assessment()
        assert set(assessment) == {"a", "b"}
        assert all(math.isnan(v) for v in assessment.values())


class TestSwitching:
    def test_window_comparison_switch(self):
        meta = make_meta(probe_interval=2, cooldown=3, margin=0.05)
        # Strategy 'a' earns 0.2; strategy 'b' (probed) earns 0.9.
        switched = False
        for t in range(60):
            d = meta.decide(float(t), {}, ["a", "b"])
            utility = 0.9 if d.action == "b" else 0.2
            if meta.observe_utility(float(t), utility):
                switched = True
                break
        assert switched
        assert meta.active == "b"
        assert meta.switches[0].from_strategy == "a"

    def test_cooldown_blocks_immediate_switch(self):
        meta = make_meta(probe_interval=0, cooldown=100, margin=0.0)
        for t in range(50):
            meta.decide(float(t), {}, ["a", "b"])
            assert meta.observe_utility(float(t), 0.1) is None
        assert meta.active == "a"

    def test_drift_detector_triggers_switch(self):
        meta = make_meta(
            probe_interval=0, cooldown=1, margin=10.0,  # disable window switch
            detector_factory=lambda: PageHinkley(delta=0.01, threshold=1.0,
                                                 direction="decrease",
                                                 min_samples=5))
        # High utility, then collapse.
        switched_at = None
        for t in range(100):
            meta.decide(float(t), {}, ["a", "b"])
            utility = 0.9 if t < 40 else 0.1
            if meta.observe_utility(float(t), utility):
                switched_at = t
                break
        assert switched_at is not None and switched_at >= 40
        assert "drift" in meta.switches[0].reason

    def test_single_strategy_never_switches(self):
        meta = MetaReasoner(strategies={"only": FixedReasoner("x")}, cooldown=0)
        for t in range(20):
            meta.decide(float(t), {}, ["x"])
            assert meta.observe_utility(float(t), 0.0) is None

    def test_describe_mentions_active_strategy(self):
        meta = make_meta()
        assert "'a'" in meta.describe()

    def test_hysteresis_margin(self):
        # Rival better, but within the margin: no switch.
        meta = make_meta(probe_interval=2, cooldown=1, margin=0.5)
        for t in range(60):
            d = meta.decide(float(t), {}, ["a", "b"])
            utility = 0.6 if d.action == "b" else 0.5
            meta.observe_utility(float(t), utility)
        assert meta.active == "a"
        assert not meta.switches
