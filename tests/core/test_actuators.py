"""Tests for self-expression: actuators, guards, the expression engine."""

import pytest

from repro.core.actuators import Actuator, ExpressionEngine, Guard


class TestExpressionEngine:
    def _engine(self, log):
        eng = ExpressionEngine()
        for name, cost in [("a", 1.0), ("b", 2.0)]:
            eng.add_actuator(Actuator(name, effect=lambda n=name: log.append(n),
                                      switching_cost=cost))
        return eng

    def test_express_applies_effect(self):
        log = []
        eng = self._engine(log)
        result = eng.express("a", {})
        assert result.applied and log == ["a"]
        assert eng.current_action == "a"

    def test_first_expression_has_no_switching_cost(self):
        eng = self._engine([])
        assert eng.express("a", {}).cost == 0.0

    def test_switching_cost_on_change_only(self):
        log = []
        eng = self._engine(log)
        eng.express("a", {})
        r2 = eng.express("b", {})
        assert r2.cost == 2.0
        assert eng.switches == 1
        r3 = eng.express("b", {})  # idempotent re-expression
        assert r3.cost == 0.0 and r3.applied
        assert eng.switches == 1
        assert log == ["a", "b"]  # no re-invocation on repeat

    def test_guard_vetoes(self):
        log = []
        eng = self._engine(log)
        eng.add_guard(Guard("safety", lambda a, ctx: "unsafe" if a == "b" else None))
        r = eng.express("b", {})
        assert not r.applied
        assert "safety" in r.vetoed_by
        assert log == []
        assert eng.guards[0].vetoes_issued == 1

    def test_guard_sees_context(self):
        eng = self._engine([])
        eng.add_guard(Guard("ctx", lambda a, ctx: "hot" if ctx.get("temp", 0) > 80 else None))
        assert not eng.express("a", {"temp": 90}).applied
        assert eng.express("a", {"temp": 50}).applied

    def test_unknown_action_raises(self):
        eng = self._engine([])
        with pytest.raises(KeyError):
            eng.express("zzz", {})

    def test_duplicate_actuator_rejected(self):
        eng = self._engine([])
        with pytest.raises(ValueError):
            eng.add_actuator(Actuator("a", effect=lambda: None))

    def test_available_actions(self):
        eng = self._engine([])
        assert set(eng.available_actions()) == {"a", "b"}

    def test_total_switching_cost_accumulates(self):
        eng = self._engine([])
        eng.express("a", {})
        eng.express("b", {})
        eng.express("a", {})
        assert eng.total_switching_cost == pytest.approx(3.0)  # 2.0 + 1.0
