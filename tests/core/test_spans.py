"""Tests for public/private spans and scopes."""

from repro.core.spans import Span, private, public


class TestSpan:
    def test_morin_pronouns(self):
        assert Span.PRIVATE.morin_pronoun == "I"
        assert Span.PUBLIC.morin_pronoun == "me"

    def test_descriptions_mention_internal_external(self):
        assert "internal" in Span.PRIVATE.describe()
        assert "external" in Span.PUBLIC.describe()


class TestScope:
    def test_private_helper(self):
        s = private("cpu.load")
        assert s.span is Span.PRIVATE
        assert s.entity is None
        assert not s.is_social()

    def test_public_helper_with_entity_is_social(self):
        s = public("load", entity="node-3")
        assert s.span is Span.PUBLIC
        assert s.is_social()

    def test_qualified_name_unique_across_spans(self):
        assert private("x").qualified_name() != public("x").qualified_name()

    def test_qualified_name_includes_entity(self):
        assert "@n1" in public("load", entity="n1").qualified_name()

    def test_scope_hashable_and_equal_by_value(self):
        assert private("a") == private("a")
        assert len({private("a"), private("a"), public("a")}) == 2

    def test_same_name_different_entity_distinct(self):
        assert public("load", entity="a") != public("load", entity="b")
