"""Failure-injection tests: the framework under broken inputs.

Self-aware systems operate in uncertain worlds; the framework must stay
well-behaved when sensors die, metrics go missing, peers disappear and
messages are lost.
"""


import numpy as np
import pytest

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, private, run_control_loop)
from repro.core.collective import CommunicationNetwork, GossipEstimator
from repro.core.knowledge import KnowledgeBase
from repro.core.node import SelfAwareNode
from repro.core.reasoner import StaticPolicy


class MissingMetricsWorld:
    """Environment that sometimes omits metrics entirely."""

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)

    def candidate_actions(self, now):
        return ["a", "b"]

    def apply(self, action, now):
        if self._rng.random() < 0.3:
            return {}  # telemetry outage
        return {"perf": 0.5}


class TestDeadSensors:
    def _node(self, failure_rate, seed=0):
        sensors = SensorSuite([
            Sensor(private("x"), lambda: 1.0, failure_rate=failure_rate,
                   rng=np.random.default_rng(seed)),
        ])
        goal = Goal([Objective("perf")])
        return build_node("n", CapabilityProfile.full_stack(), sensors, goal,
                          rng=np.random.default_rng(seed)), goal

    def test_node_decides_despite_total_sensor_failure(self):
        node, goal = self._node(failure_rate=1.0)
        world = MissingMetricsWorld()
        trace = run_control_loop(node, world, goal, steps=50)
        assert len(trace) == 50
        # No knowledge ever arrived, context is empty, but decisions flow.
        assert not node.knowledge.has(private("x"))

    def test_intermittent_sensor_still_builds_knowledge(self):
        node, goal = self._node(failure_rate=0.5, seed=1)
        world = MissingMetricsWorld(seed=1)
        run_control_loop(node, world, goal, steps=100)
        history = node.knowledge.history(private("x"))
        assert 20 < len(history) < 80  # roughly half the samples landed


class TestMissingMetrics:
    def test_goal_scores_missing_metrics_as_worst(self):
        goal = Goal([Objective("perf")])
        assert goal.utility({}) == 0.0

    def test_loop_survives_telemetry_outages(self):
        sensors = SensorSuite([Sensor(private("x"), lambda: 1.0)])
        goal = Goal([Objective("perf")])
        node = build_node("n", CapabilityProfile.full_stack(), sensors, goal,
                          rng=np.random.default_rng(2))
        trace = run_control_loop(node, MissingMetricsWorld(seed=2), goal,
                                 steps=100)
        assert len(trace) == 100
        assert all(0.0 <= s.utility <= 1.0 for s in trace.steps)


class TestLossyCollective:
    def test_gossip_converges_despite_message_loss(self):
        names = [f"n{i}" for i in range(12)]
        net = CommunicationNetwork.ring(names, loss_rate=0.3,
                                        rng=np.random.default_rng(3))
        gossip = GossipEstimator(net, rng=np.random.default_rng(4))
        values = {name: float(i) for i, name in enumerate(names)}
        result = gossip.run(values, rounds=150)
        assert result.max_error < 0.5
        # Loss never corrupts mass: pairwise swaps are all-or-nothing.
        assert sum(result.estimates.values()) == pytest.approx(
            sum(values.values()))

    def test_gossip_with_multiple_failures(self):
        names = [f"n{i}" for i in range(10)]
        net = CommunicationNetwork.random_geometric(
            names, seed=5, rng=np.random.default_rng(5))
        for name in names[:3]:
            net.fail_node(name)
        gossip = GossipEstimator(net, rng=np.random.default_rng(6))
        values = {name: float(i) for i, name in enumerate(names)}
        result = gossip.run(values, rounds=100)
        assert set(result.estimates) == set(names[3:])


class TestStaleKnowledge:
    def test_old_beliefs_lose_confidence_not_value(self):
        kb = KnowledgeBase()
        kb.observe(private("x"), 0.0, 42.0)
        stale = kb.belief(private("x"), now=1000.0, half_life=10.0)
        assert stale.value == 42.0
        assert stale.confidence < 1e-6

    def test_node_with_prefilled_knowledge_is_consistent(self):
        sensors = SensorSuite([Sensor(private("x"), lambda: 1.0)])
        node = SelfAwareNode("n", CapabilityProfile.minimal(), sensors,
                             StaticPolicy("a"))
        # A peer report arrives before any own observation: fine.
        node.receive_report("peer", "load", 0.0, 0.7)
        result = node.step(1.0, ["a"])
        assert result.decision.action == "a"
