"""Property-based tests on the framework's core invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.goals import Constraint, Goal, Objective, dominates, pareto_front
from repro.core.knowledge import KnowledgeBase
from repro.core.models import EmpiricalActionModel
from repro.core.spans import private
from repro.metrics.pareto import coverage, hypervolume_2d

metric_values = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=0, max_size=3)

weight_triples = st.tuples(
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=0.01, max_value=10.0))


class TestGoalProperties:
    @given(metric_values, weight_triples)
    @settings(max_examples=80, deadline=None)
    def test_utility_always_in_unit_interval(self, metrics, weights):
        goal = Goal(objectives=[Objective("a"), Objective("b"),
                                Objective("c", maximise=False)],
                    weights=dict(zip("abc", weights)))
        assert 0.0 <= goal.utility(metrics) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0), weight_triples)
    @settings(max_examples=50, deadline=None)
    def test_utility_monotone_in_maximised_objective(self, value, weights):
        goal = Goal(objectives=[Objective("a"), Objective("b"),
                                Objective("c", maximise=False)],
                    weights=dict(zip("abc", weights)))
        base = {"a": value, "b": 0.5, "c": 0.5}
        better = dict(base, a=min(1.0, value + 0.1))
        assert goal.utility(better) >= goal.utility(base) - 1e-12

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=2,
                    max_size=2),
           st.lists(st.floats(min_value=0, max_value=1), min_size=2,
                    max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_dominance_is_antisymmetric(self, a, b):
        if dominates(a, b):
            assert not dominates(b, a)

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_pareto_front_is_complete(self, points):
        # Every point outside the front is dominated by some front member.
        front = set(pareto_front(points))
        for i, p in enumerate(points):
            if i not in front:
                assert any(dominates(points[j], p) for j in front)


class TestConstraintProperties:
    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=-100, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_violation_nonnegative_and_consistent(self, bound, raw):
        for kind in ("max", "min"):
            constraint = Constraint("x", kind, bound)
            violation = constraint.violation(raw)
            assert violation >= 0.0
            assert constraint.satisfied(raw) == (violation == 0.0)


class TestModelProperties:
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1,
                    max_size=40),
           st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_empirical_prediction_within_observed_range(self, outcomes,
                                                        forgetting):
        model = EmpiricalActionModel(forgetting=forgetting)
        for value in outcomes:
            model.update({}, "a", {"m": value})
        predicted = model.predict({}, "a")["m"]
        assert min(outcomes) - 1e-9 <= predicted <= max(outcomes) + 1e-9

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_confidence_monotone_in_experience(self, n):
        model = EmpiricalActionModel(forgetting=1.0)
        last = model.confidence({}, "a")
        for _ in range(n):
            model.update({}, "a", {"m": 1.0})
            current = model.confidence({}, "a")
            assert current >= last
            last = current
        assert 0.0 <= last < 1.0


class TestKnowledgeProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_belief_matches_latest_observation(self, values):
        kb = KnowledgeBase()
        for t, value in enumerate(values):
            kb.observe(private("x"), float(t), value)
        assert kb.value(private("x")) == values[-1]
        assert kb.belief(private("x")).confidence == 1.0


class TestParetoMetricProperties:
    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_hypervolume_bounded_by_unit_box(self, points):
        assert 0.0 <= hypervolume_2d(points) <= 1.0 + 1e-9

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=8),
           st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_coverage_in_unit_interval(self, a, b):
        assert 0.0 <= coverage(a, b) <= 1.0

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                    min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_self_coverage_is_total(self, points):
        assert coverage(points, points) == 1.0
