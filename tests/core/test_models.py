"""Tests for self-models: empirical, contextual, prior, blended."""

import math

import pytest

from repro.core.models import (BlendedModel, ContextualActionModel,
                               EmpiricalActionModel, ModelQualityTracker,
                               PriorModel)


class TestEmpiricalActionModel:
    def test_learns_running_mean(self):
        m = EmpiricalActionModel()
        for v in [1.0, 2.0, 3.0]:
            m.update({}, "a", {"perf": v})
        assert m.predict({}, "a")["perf"] == pytest.approx(2.0)

    def test_unknown_action_predicts_empty(self):
        assert EmpiricalActionModel().predict({}, "never") == {}

    def test_confidence_grows_with_experience(self):
        m = EmpiricalActionModel(confidence_scale=5.0)
        assert m.confidence({}, "a") == 0.0
        for _ in range(5):
            m.update({}, "a", {"x": 1.0})
        assert m.confidence({}, "a") == pytest.approx(0.5)
        for _ in range(100):
            m.update({}, "a", {"x": 1.0})
        assert m.confidence({}, "a") > 0.9

    def test_forgetting_tracks_regime_change(self):
        plastic = EmpiricalActionModel(forgetting=0.7)
        stale = EmpiricalActionModel(forgetting=1.0)
        for _ in range(50):
            plastic.update({}, "a", {"x": 0.0})
            stale.update({}, "a", {"x": 0.0})
        for _ in range(10):
            plastic.update({}, "a", {"x": 1.0})
            stale.update({}, "a", {"x": 1.0})
        assert plastic.predict({}, "a")["x"] > stale.predict({}, "a")["x"]
        assert plastic.predict({}, "a")["x"] > 0.8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EmpiricalActionModel(forgetting=0.0)
        with pytest.raises(ValueError):
            EmpiricalActionModel(confidence_scale=0.0)

    def test_known_actions(self):
        m = EmpiricalActionModel()
        m.update({}, "a", {"x": 1.0})
        m.update({}, "b", {"x": 2.0})
        assert set(m.known_actions()) == {"a", "b"}

    def test_reset_forgets_everything(self):
        m = EmpiricalActionModel()
        for _ in range(20):
            m.update({}, "a", {"x": 1.0})
        m.reset()
        assert m.predict({}, "a") == {}
        assert m.confidence({}, "a") == 0.0
        assert m.known_actions() == []


class TestContextualActionModel:
    def test_distinguishes_contexts(self):
        m = ContextualActionModel()
        for _ in range(5):
            m.update({"load": 0.1}, "a", {"perf": 1.0})
            m.update({"load": 0.9}, "a", {"perf": 5.0})
        assert m.predict({"load": 0.1}, "a")["perf"] == pytest.approx(1.0)
        assert m.predict({"load": 0.9}, "a")["perf"] == pytest.approx(5.0)
        assert m.bin_count() == 2

    def test_falls_back_to_pooled_estimate(self):
        m = ContextualActionModel()
        m.update({"load": 0.1}, "a", {"perf": 2.0})
        m.update({"load": 0.9}, "a", {"perf": 4.0})
        # Unseen bin: pooled mean of bins.
        assert m.predict({"load": 0.5}, "a")["perf"] == pytest.approx(3.0)

    def test_confidence_is_per_bin(self):
        m = ContextualActionModel(confidence_scale=1.0)
        m.update({"load": 0.1}, "a", {"perf": 1.0})
        assert m.confidence({"load": 0.1}, "a") > 0.0
        assert m.confidence({"load": 0.9}, "a") == 0.0

    def test_reset_clears_all_bins(self):
        m = ContextualActionModel()
        m.update({"load": 0.1}, "a", {"perf": 1.0})
        m.update({"load": 0.9}, "a", {"perf": 5.0})
        m.reset()
        assert m.bin_count() == 0
        assert m.predict({"load": 0.1}, "a") == {}


class TestPriorModel:
    def test_predicts_from_table_and_never_learns(self):
        p = PriorModel({"a": {"perf": 3.0}})
        assert p.predict({}, "a") == {"perf": 3.0}
        p.update({}, "a", {"perf": 100.0})
        assert p.predict({}, "a") == {"perf": 3.0}

    def test_confidence_zero_for_unknown_action(self):
        p = PriorModel({"a": {"perf": 3.0}}, stated_confidence=0.9)
        assert p.confidence({}, "a") == 0.9
        assert p.confidence({}, "b") == 0.0

    def test_reset_is_a_noop_for_priors(self):
        p = PriorModel({"a": {"perf": 3.0}})
        p.reset()
        assert p.predict({}, "a") == {"perf": 3.0}


class TestBlendedReset:
    def test_reset_clears_learned_keeps_prior(self):
        prior = PriorModel({"a": {"perf": 1.0}})
        blend = BlendedModel(prior, EmpiricalActionModel(confidence_scale=1.0))
        for _ in range(50):
            blend.update({}, "a", {"perf": 9.0})
        blend.reset()
        assert blend.predict({}, "a")["perf"] == pytest.approx(1.0)


class TestBlendedModel:
    def test_prior_dominates_initially_then_learned_takes_over(self):
        prior = PriorModel({"a": {"perf": 0.0}})
        learned = EmpiricalActionModel(confidence_scale=2.0)
        blend = BlendedModel(prior, learned)
        assert blend.predict({}, "a")["perf"] == pytest.approx(0.0)
        for _ in range(50):
            blend.update({}, "a", {"perf": 10.0})
        assert blend.predict({}, "a")["perf"] > 9.0

    def test_learned_only_metric_passes_through(self):
        prior = PriorModel({"a": {"perf": 1.0}})
        learned = EmpiricalActionModel()
        blend = BlendedModel(prior, learned)
        blend.update({}, "a", {"cost": 7.0})
        pred = blend.predict({}, "a")
        assert "cost" in pred and "perf" in pred


class TestModelQualityTracker:
    def test_tracks_absolute_error(self):
        t = ModelQualityTracker(alpha=1.0)
        err = t.record({"x": 1.0}, {"x": 3.0})
        assert err == pytest.approx(2.0)
        assert t.error("x") == pytest.approx(2.0)

    def test_mean_error_nan_before_data(self):
        assert math.isnan(ModelQualityTracker().mean_error())

    def test_ewma_smoothing(self):
        t = ModelQualityTracker(alpha=0.5)
        t.record({"x": 0.0}, {"x": 4.0})   # error 4
        t.record({"x": 0.0}, {"x": 0.0})   # error 0
        assert t.error("x") == pytest.approx(2.0)

    def test_unshared_metrics_ignored(self):
        t = ModelQualityTracker()
        err = t.record({"x": 1.0}, {"y": 5.0})
        assert math.isnan(err)
