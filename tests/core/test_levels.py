"""Tests for the levels of computational self-awareness."""


from repro.core.levels import (ALL_LEVELS, CapabilityProfile,
                               SelfAwarenessLevel, ladder)


class TestSelfAwarenessLevel:
    def test_ordering_is_increasing_sophistication(self):
        assert (SelfAwarenessLevel.STIMULUS < SelfAwarenessLevel.INTERACTION
                < SelfAwarenessLevel.TIME < SelfAwarenessLevel.GOAL
                < SelfAwarenessLevel.META)

    def test_all_levels_enumerates_five(self):
        assert len(ALL_LEVELS) == 5

    def test_neisser_names_cover_all_levels(self):
        for level in SelfAwarenessLevel:
            assert level.neisser_name
        assert SelfAwarenessLevel.STIMULUS.neisser_name == "ecological self"
        assert SelfAwarenessLevel.META.neisser_name == "meta-self-awareness"

    def test_describe_is_nonempty_and_distinct(self):
        descriptions = {lv.describe() for lv in SelfAwarenessLevel}
        assert len(descriptions) == 5


class TestCapabilityProfile:
    def test_of_builds_exact_set(self):
        p = CapabilityProfile.of(SelfAwarenessLevel.TIME, SelfAwarenessLevel.GOAL)
        assert p.has(SelfAwarenessLevel.TIME)
        assert p.has(SelfAwarenessLevel.GOAL)
        assert not p.has(SelfAwarenessLevel.STIMULUS)
        assert len(p) == 2

    def test_up_to_is_cumulative(self):
        p = CapabilityProfile.up_to(SelfAwarenessLevel.TIME)
        assert set(p.levels) == {SelfAwarenessLevel.STIMULUS,
                                 SelfAwarenessLevel.INTERACTION,
                                 SelfAwarenessLevel.TIME}

    def test_full_stack_has_everything(self):
        p = CapabilityProfile.full_stack()
        assert all(p.has(lv) for lv in SelfAwarenessLevel)
        assert p.is_meta_self_aware()

    def test_minimal_is_stimulus_only(self):
        p = CapabilityProfile.minimal()
        assert set(p.levels) == {SelfAwarenessLevel.STIMULUS}
        assert not p.is_meta_self_aware()

    def test_with_and_without_level_are_functional(self):
        p = CapabilityProfile.minimal()
        p2 = p.with_level(SelfAwarenessLevel.META)
        assert p2.is_meta_self_aware()
        assert not p.is_meta_self_aware()  # original untouched
        p3 = p2.without_level(SelfAwarenessLevel.META)
        assert set(p3.levels) == set(p.levels)

    def test_empty_profile_describes_pre_reflective(self):
        assert "no self-awareness" in CapabilityProfile.of().describe()

    def test_dominates_is_strict_superset(self):
        full = CapabilityProfile.full_stack()
        minimal = CapabilityProfile.minimal()
        assert full.dominates(minimal)
        assert not minimal.dominates(full)
        assert not full.dominates(full)

    def test_iteration_is_sorted_by_level(self):
        p = CapabilityProfile.of(SelfAwarenessLevel.META,
                                 SelfAwarenessLevel.STIMULUS)
        assert list(p) == [SelfAwarenessLevel.STIMULUS, SelfAwarenessLevel.META]

    def test_contains_protocol(self):
        p = CapabilityProfile.up_to(SelfAwarenessLevel.INTERACTION)
        assert SelfAwarenessLevel.STIMULUS in p
        assert SelfAwarenessLevel.META not in p

    def test_profile_is_hashable(self):
        assert len({CapabilityProfile.minimal(), CapabilityProfile.minimal()}) == 1


class TestLadder:
    def test_ladder_grows_one_level_at_a_time(self):
        profiles = list(ladder())
        assert len(profiles) == 5
        for i, p in enumerate(profiles):
            assert len(p) == i + 1
        for smaller, larger in zip(profiles, profiles[1:]):
            assert larger.dominates(smaller)

    def test_ladder_can_stop_early(self):
        profiles = list(ladder(SelfAwarenessLevel.TIME))
        assert len(profiles) == 3
        assert not profiles[-1].has(SelfAwarenessLevel.GOAL)
