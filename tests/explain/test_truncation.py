"""Lossy streams must be flagged, never silently reconstructed.

Satellite of PR 6: ring-buffer overflow used to be invisible to
consumers that rebuild state from the event stream.  Both reconstruction
paths -- :func:`repro.core.switches_from_events` and the
:class:`~repro.explain.ExplanationStore` -- now detect non-zero drop
counts and seq gaps and mark their answers ``truncated``.
"""

from repro.core import SwitchHistory, switches_from_events
from repro.explain import ExplanationStore
from repro.obs.events import Event, EventBus


def _switch_fields(i):
    return {"time": float(i), "from_strategy": "a", "to_strategy": "b",
            "reason": f"r{i}"}


def _overflowed_bus(maxlen=4, emitted=12):
    bus = EventBus(maxlen=maxlen, enabled=True)
    for i in range(emitted):
        bus.emit("meta.switch", **_switch_fields(i))
    assert bus.dropped == emitted - maxlen
    return bus


class TestSwitchesFromEvents:
    def test_tiny_ring_marks_history_truncated(self):
        bus = _overflowed_bus()
        history = switches_from_events(bus.events(), dropped=bus.dropped)
        assert history.truncated
        assert len(history) == 4  # what survived is still reconstructed

    def test_seq_gap_detected_without_drop_count(self):
        """A partial trace (lines lost mid-stream) shows seq gaps even when
        nobody passes the ring's drop counter along."""
        records = [{"event": "meta.switch", "seq": seq, **_switch_fields(seq)}
                   for seq in (0, 1, 5, 6)]
        gapped = switches_from_events(records)
        assert gapped.truncated
        assert len(gapped) == 4

    def test_front_loss_alone_relies_on_drop_count(self):
        """The retained window of an overflowed ring is itself contiguous:
        only the ``dropped`` counter reveals the loss.  That is exactly why
        both reconstruction paths take it as an argument."""
        bus = _overflowed_bus()
        assert not switches_from_events(bus.events()).truncated
        assert switches_from_events(bus.events(),
                                    dropped=bus.dropped).truncated

    def test_contiguous_stream_is_not_truncated(self):
        bus = EventBus(enabled=True)
        bus.emit("meta.utility", time=0.0, utility=0.5)
        bus.emit("meta.switch", **_switch_fields(1))
        history = switches_from_events(bus.events(), dropped=bus.dropped)
        assert not history.truncated
        assert len(history) == 1

    def test_history_still_equals_plain_list(self):
        """Back-compat: existing callers compare against plain lists."""
        bus = EventBus(enabled=True)
        bus.emit("meta.switch", **_switch_fields(0))
        history = switches_from_events(bus.events())
        assert isinstance(history, SwitchHistory)
        assert history == [history[0]]
        assert switches_from_events([]) == []


class TestStoreTruncation:
    def test_ingest_events_with_drop_count(self):
        bus = _overflowed_bus()
        store = ExplanationStore().ingest_events(bus.events(),
                                                 dropped=bus.dropped)
        assert store.truncated
        assert store.why(bus.events()[-1].seq)["store_truncated"] is True
        assert store.why_aggregate()["truncated"] is True

    def test_seq_gap_detected(self):
        store = ExplanationStore()
        store(Event("a", 0, {}))
        store(Event("loop.step", 4, {"utility": 0.5}))
        assert store.gaps == 1
        assert store.truncated

    def test_attached_bus_drop_counter_consulted_live(self):
        bus = EventBus(maxlen=2, enabled=True)
        store = ExplanationStore().attach(bus)
        try:
            bus.emit("loop.step", utility=0.1)
            assert not store.truncated  # nothing lost yet
            for _ in range(5):
                bus.emit("loop.step", utility=0.2)
            # The subscriber saw every event (no gaps) but the ring the
            # answers would be checked against has lost history.
            assert store.gaps == 0
            assert bus.dropped > 0
            assert store.truncated
        finally:
            store.detach()
        assert store._bus is None

    def test_clean_stream_is_not_truncated(self):
        bus = EventBus(enabled=True)
        for _ in range(5):
            bus.emit("loop.step", utility=0.3)
        store = ExplanationStore().ingest_events(bus.events(),
                                                 dropped=bus.dropped)
        assert not store.truncated
        assert store.why_aggregate()["truncated"] is False
