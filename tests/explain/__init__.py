"""Tests for repro.explain: the causal explanation store and its queries."""
