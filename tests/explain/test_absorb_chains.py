"""Causal chains survive the multiprocessing engine's seq re-basing.

Worker shards run with their own buses; :meth:`TelemetrySession.absorb`
replays their buffered events onto the parent session bus, re-basing
every ``seq``.  ``causes`` references must be remapped through the same
correspondence, or every chain shipped home would dangle.  The engine
guarantee extends to provenance: explanation chains are byte-identical
at any worker count.
"""

import json

from repro.experiments.engine import SuiteJob, run_suite
from repro.explain import ExplanationStore
from repro.obs import TelemetrySession


class TestAbsorbRemapsCauses:
    def test_causes_follow_the_rebased_seqs(self):
        session = TelemetrySession()
        with session:
            session.bus.emit("parent.warmup")  # offset the parent seq space
            session.absorb([
                {"event": "serve.telemetry", "seq": 10, "queue_depth": 2.0},
                {"event": "serve.predict", "seq": 11, "latency": 1.0,
                 "causes": [10]},
                {"event": "serve.scale", "seq": 12, "pool": 2.0,
                 "causes": [11, 10]},
            ])
            events = {e.name: e for e in session.bus.events()}
        telemetry = events["serve.telemetry"]
        predict = events["serve.predict"]
        scale = events["serve.scale"]
        assert telemetry.seq != 10  # re-based into the parent's space
        assert predict.causes == (telemetry.seq,)
        assert scale.causes == (predict.seq, telemetry.seq)

    def test_unresolvable_causes_are_dropped_not_invented(self):
        """A cause whose event never reached the worker's buffer (dropped
        from its ring) cannot be remapped; absorb must drop the reference
        rather than leave a worker-local seq dangling in parent space."""
        session = TelemetrySession()
        with session:
            session.absorb([
                {"event": "serve.predict", "seq": 50, "latency": 1.0},
                {"event": "serve.scale", "seq": 51, "pool": 1.0,
                 "causes": [49, 50]},  # 49 was lost upstream
            ])
            predict, scale = session.bus.events()
        assert scale.causes == (predict.seq,)

    def test_absorbed_chain_resolves_through_the_store(self):
        session = TelemetrySession()
        with session:
            store = ExplanationStore().attach(session.bus)
            session.absorb([
                {"event": "serve.telemetry", "seq": 0, "queue_depth": 1.0},
                {"event": "serve.predict", "seq": 1, "latency": 1.0,
                 "causes": [0]},
                {"event": "serve.scale", "seq": 2, "pool": 1.0,
                 "causes": [1, 0]},
            ])
            chain = store.why(store.last_decision_seq())
        assert chain["event"] == "serve.scale"
        assert {c["event"] for c in chain["causes"]} == {
            "serve.predict", "serve.telemetry"}


class TestEngineByteIdentity:
    def _e1_job(self):
        """E1 at 1000 steps crosses its drift point: the meta arm's
        ``meta.switch`` decisions carry utility-observation causes."""
        return [SuiteJob(name="E1", module="repro.experiments.e1_levels",
                         shard_fn="run_shard", reduce_fn="reduce",
                         seeds=(0, 1), params={"steps": 1000})]

    @staticmethod
    def _canonical(bus):
        """The event stream minus honestly wall-clock-derived fields
        (``node.step`` phase timings sit outside the engine guarantee,
        exactly as in the engine's own determinism tests)."""
        timing = ("sense", "model", "reason", "act")
        out = []
        for e in bus.events():
            fields = {k: v for k, v in e.fields.items() if k not in timing}
            out.append((e.name, e.seq, e.causes, fields))
        return out

    def test_chains_identical_serial_vs_parallel(self):
        with TelemetrySession() as s1:
            run_suite(self._e1_job(), n_jobs=1, telemetry=s1)
        with TelemetrySession() as s2:
            run_suite(self._e1_job(), n_jobs=4, telemetry=s2)
        assert self._canonical(s1.bus) == self._canonical(s2.bus)

        # The run actually exercises provenance (not a vacuous pass) ...
        caused = [e for e in s1.bus.events() if e.causes]
        assert caused, "E1 run produced no causal events"
        assert any(e.name == "meta.switch" for e in caused)

        # ... and the resolved explanation chains are byte-identical too.
        store1 = ExplanationStore({"meta.switch", "loop.step"})
        store1.ingest_events(s1.bus.events(), dropped=s1.bus.dropped)
        store2 = ExplanationStore({"meta.switch", "loop.step"})
        store2.ingest_events(s2.bus.events(), dropped=s2.bus.dropped)
        seq = store1.last_decision_seq("meta.switch")
        assert seq is not None
        assert seq == store2.last_decision_seq("meta.switch")
        chain1, chain2 = store1.why(seq), store2.why(seq)
        assert json.dumps(chain1, sort_keys=True, default=repr) == \
            json.dumps(chain2, sort_keys=True, default=repr)
        # A switch cites the utility observations it weighed (and, via
        # the step's ambient scope, possibly the previous switch).
        assert "meta.utility" in {c["event"] for c in chain1["causes"]}
