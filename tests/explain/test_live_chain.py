"""Acceptance: live decisions resolve to full causal chains.

``why(seq)`` on a live session must return the complete chain behind a
governor resize decision -- the ``serve.scale`` event, causally linked
to the prediction and telemetry-window events it consumed, and (while
degraded) to the open degradation episode.
"""

import asyncio

from repro.explain import ExplanationStore
from repro.obs import TelemetrySession
from repro.serve import InProcessClient, ServeGovernor, SimulationServer

SLO = 8.0


def _stats(*, queue=0.0, arrival=0.0, p95=1.0, util=0.2, shed=0.0,
           pool=1.0, completions=0.0):
    return {"queue_depth": queue, "arrival_rate": arrival,
            "p95_latency": p95, "utilisation": util,
            "shed_fraction": shed, "pool_size": pool,
            "completion_rate": completions}


def _pressured_tick(governor, t):
    """Telemetry that makes growing the pool the right call."""
    pool = governor.pool_target
    saturated = pool < 6
    return governor.tick(float(t), _stats(
        queue=40.0 if saturated else 4.0, arrival=24.0,
        p95=SLO * 1.5 if saturated else 2.0,
        util=1.0 if saturated else 0.8, pool=float(pool),
        completions=min(24.0, pool * 4.0)))


class TestGovernorChain:
    def test_resize_decision_chains_to_prediction_and_telemetry(self):
        with TelemetrySession() as session:
            store = ExplanationStore().attach(session.bus)
            governor = ServeGovernor(slo_p95=SLO, min_workers=1,
                                     max_workers=8, service_rate_guess=4.0,
                                     epsilon=0.0, seed=0)
            resized_at = None
            for t in range(12):
                before = governor.pool_target
                _pressured_tick(governor, t)
                if governor.pool_target != before:
                    resized_at = governor.last_decision_seq
            assert resized_at is not None, "governor never resized"

            chain = store.why(resized_at)
            assert chain["event"] == "serve.scale"
            assert chain["store_truncated"] is False
            by_name = {c["event"]: c for c in chain["causes"]}
            # The decision cites the model's prediction, which in turn
            # cites the telemetry window the cycle deliberated over.
            assert "serve.predict" in by_name
            predict = by_name["serve.predict"]
            assert predict["fields"]["pool"] == governor.pool_target
            assert [c["event"] for c in predict["causes"]] == \
                ["serve.telemetry"]
            # The telemetry window is also cited directly (ambient scope).
            assert "serve.telemetry" in by_name

            # And the aggregate view knows the causal pattern by class.
            answer = store.why_aggregate(kind="serve.scale")
            assert answer["decisions"] == store.counts["serve.scale"]
            assert any("serve.predict" in cause_class
                       for cause_class in answer["causes"]["serve.scale"])

    def test_degraded_decision_cites_the_degradation_episode(self):
        with TelemetrySession() as session:
            store = ExplanationStore().attach(session.bus)
            governor = ServeGovernor(slo_p95=SLO, min_workers=1,
                                     max_workers=8, service_rate_guess=4.0,
                                     epsilon=0.0, seed=0)
            for t in range(10):  # learn what healthy looks like
                _pressured_tick(governor, t)
            for t in range(10, 60):  # then feed contradictory outcomes
                pool = governor.pool_target
                p95 = SLO * 40.0 if t % 2 else 0.0
                governor.tick(float(t), _stats(
                    queue=8.0, arrival=8.0, p95=p95, util=1.0,
                    pool=float(pool), completions=pool * 4.0))
                if governor.degraded:
                    break
            assert governor.degraded, "monitor never tripped"
            assert governor.monitor.cause_seq is not None

            chain = store.why(governor.last_decision_seq)
            assert chain["fields"]["degraded"] is True
            cause_names = {c["event"] for c in chain["causes"]}
            assert "degrade.enter" in cause_names

    def test_disabled_telemetry_leaves_no_handle(self):
        governor = ServeGovernor(slo_p95=SLO, epsilon=0.0, seed=0)
        for t in range(5):
            _pressured_tick(governor, t)
        assert governor.last_decision_seq is None


class TestServerExplainOp:
    def test_explain_op_returns_structured_chain(self):
        async def body():
            server = SimulationServer(workers=0, governor="self_aware",
                                      govern_interval=0.02)
            await server.start(listen=False)
            try:
                client = InProcessClient(server)
                # Let the governor loop run a few cycles on the live bus.
                for _ in range(50):
                    await asyncio.sleep(0.02)
                    if getattr(server.governor, "last_decision_seq",
                               None) is not None:
                        break
                assert server.governor.last_decision_seq is not None
                return await client.request({"op": "explain"})
            finally:
                await server.stop()

        with TelemetrySession():
            response = asyncio.run(body())
        assert response["ok"]
        assert "Governor state" in response["explanation"]
        assert response["why"]["event"] == "serve.scale"
        assert {c["event"] for c in response["why"]["causes"]} >= {
            "serve.predict", "serve.telemetry"}
        assert response["decisions"].get("serve.scale", 0) >= 1
        assert response["truncated"] is False

    def test_explain_op_still_works_without_telemetry(self):
        async def body():
            server = SimulationServer(workers=0, governor="none")
            await server.start(listen=False)
            try:
                return await InProcessClient(server).request({"op": "explain"})
            finally:
                await server.stop()

        response = asyncio.run(body())
        assert response["ok"]
        assert "No governor" in response["explanation"]
        assert "why" not in response  # nothing on the bus, nothing claimed
