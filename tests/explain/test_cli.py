"""The ``python -m repro.explain`` trace query CLI."""

import json

import pytest

from repro.explain.__main__ import main
from repro.obs import TelemetrySession, emit


@pytest.fixture()
def trace(tmp_path):
    """A small governor-shaped trace; returns (path, decision_seq)."""
    path = str(tmp_path / "trace.jsonl")
    with TelemetrySession(trace_path=path) as session:
        for i in range(6):
            telemetry = emit("serve.telemetry", time=float(i),
                             queue_depth=float(i))
            predict = emit("serve.predict", time=float(i), latency=1.0 + i,
                           causes=(telemetry,))
            emit("serve.scale", time=float(i), pool=2.0, latency=1.0 + i,
                 causes=(predict, telemetry))
        decision_seq = session.bus.events()[-1].seq
    return path, decision_seq


class TestCli:
    def test_default_action_is_stats(self, trace, capsys):
        path, _ = trace
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "ingested 18 event(s)" in out
        assert "decisions_seen: 6" in out

    def test_why_renders_the_chain(self, trace, capsys):
        path, decision_seq = trace
        assert main([path, "--why", str(decision_seq)]) == 0
        out = capsys.readouterr().out
        assert f"why seq {decision_seq}:" in out
        assert "serve.scale" in out
        assert "serve.predict" in out
        assert "serve.telemetry" in out
        assert "TRUNCATED" not in out

    def test_why_aggregate_all_kinds(self, trace, capsys):
        path, _ = trace
        assert main([path, "--why-aggregate"]) == 0
        out = capsys.readouterr().out
        assert "why-aggregate (all kinds):" in out
        assert "serve.scale: 6 decision(s)" in out
        assert "caused by serve.predict+serve.telemetry: 6" in out

    def test_why_aggregate_kind_window_and_axis(self, trace, capsys):
        path, _ = trace
        assert main([path, "--why-aggregate", "serve.scale",
                     "--window", "0", "3", "--axis", "time"]) == 0
        out = capsys.readouterr().out
        assert "why-aggregate serve.scale:" in out

    def test_json_output_is_machine_readable(self, trace, capsys):
        path, decision_seq = trace
        assert main([path, "--why", str(decision_seq), "--why-aggregate",
                     "--stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["why"]["event"] == "serve.scale"
        assert payload["why"]["store_truncated"] is False
        assert payload["why_aggregate"]["decisions"] == 6
        assert payload["stats"]["events_seen"] == 18

    def test_why_of_missing_seq_reports_truncation(self, trace, capsys):
        path, _ = trace
        assert main([path, "--why", "99999"]) == 0
        out = capsys.readouterr().out
        assert "not retained; chain truncated" in out
