"""ExplanationStore semantics: indexing, rollups, chains, aggregates."""

import json
import math

import pytest

from repro.explain import (DEFAULT_DECISION_EVENTS, NO_CAUSE, UNKNOWN_CAUSE,
                           ExplanationStore)
from repro.explain.store import _TimeBuckets
from repro.obs import TelemetrySession, emit
from repro.obs.events import Event


def _event(name, seq, causes=(), **fields):
    return Event(name=name, seq=seq, fields=fields, causes=tuple(causes))


def _governor_chain(store, base=0, time=0.0):
    """One telemetry -> predict -> scale chain; returns the decision seq."""
    store(_event("serve.telemetry", base, time=time, queue_depth=3.0))
    store(_event("serve.predict", base + 1, causes=(base,),
                 time=time, latency=1.5))
    store(_event("serve.scale", base + 2, causes=(base + 1, base),
                 time=time, pool=4.0, latency=1.5))
    return base + 2


class TestIngestion:
    def test_decisions_counted_others_only_indexed(self):
        store = ExplanationStore()
        _governor_chain(store)
        assert store.events_seen == 3
        assert store.decisions_seen == 1
        assert store.counts == {"serve.scale": 1}
        assert len(store) == 3  # every event resolvable for chains

    def test_custom_decision_names(self):
        store = ExplanationStore(decision_names={"custom.decide"})
        store(_event("serve.scale", 0, pool=1.0))
        store(_event("custom.decide", 1, causes=(0,)))
        assert store.counts == {"custom.decide": 1}
        assert "serve.scale" in DEFAULT_DECISION_EVENTS  # default untouched

    def test_index_is_bounded_fifo(self):
        store = ExplanationStore(index_size=4)
        for seq in range(10):
            store(_event("x", seq))
        assert len(store) == 4
        assert store.events_seen == 10
        assert store.why(9)["truncated"] is False
        assert store.why(0)["event"] is None  # evicted -> stub

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationStore(index_size=0)
        with pytest.raises(ValueError):
            _TimeBuckets(width=0)
        with pytest.raises(ValueError):
            _TimeBuckets(max_buckets=1)
        with pytest.raises(ValueError):
            ExplanationStore().why_aggregate(axis="sideways")


class TestCauseClasses:
    def test_class_is_sorted_distinct_cause_names(self):
        store = ExplanationStore()
        _governor_chain(store)
        assert store.cause_counts["serve.scale"] == {
            "serve.predict+serve.telemetry": 1}

    def test_no_causes_labelled(self):
        store = ExplanationStore()
        store(_event("serve.scale", 0, pool=1.0))
        assert store.cause_counts["serve.scale"] == {NO_CAUSE: 1}

    def test_evicted_cause_labelled_unresolved(self):
        store = ExplanationStore(index_size=2)
        store(_event("serve.telemetry", 0, queue_depth=1.0))
        for seq in range(1, 4):  # push seq 0 out of the index
            store(_event("filler", seq))
        store(_event("serve.scale", 4, causes=(0,), pool=1.0))
        assert store.cause_counts["serve.scale"] == {UNKNOWN_CAUSE: 1}
        assert store.unresolved_causes == 1


class TestWhy:
    def test_chain_resolves_nested_causes(self):
        store = ExplanationStore()
        decision = _governor_chain(store)
        chain = store.why(decision)
        assert chain["event"] == "serve.scale"
        assert chain["store_truncated"] is False
        by_name = {c["event"]: c for c in chain["causes"]}
        assert set(by_name) == {"serve.predict", "serve.telemetry"}
        nested = by_name["serve.predict"]["causes"]
        assert [c["event"] for c in nested] == ["serve.telemetry"]

    def test_depth_limit_elides_not_lies(self):
        store = ExplanationStore()
        for seq in range(5):  # a linear chain 0 <- 1 <- ... <- 4
            store(_event("step", seq, causes=(seq - 1,) if seq else ()))
        shallow = store.why(4, depth=1)
        (cause,) = shallow["causes"]
        assert cause["causes_elided"] == [2]
        assert "causes" not in cause

    def test_forward_references_ignored(self):
        store = ExplanationStore()
        store(_event("a", 0))
        store(_event("loop.step", 1, causes=(0, 5)))  # 5 is in the future
        chain = store.why(1)
        assert [c["seq"] for c in chain["causes"]] == [0]

    def test_last_decision_seq(self):
        store = ExplanationStore()
        _governor_chain(store, base=0)
        store(_event("meta.switch", 3, time=0.3,
                     from_strategy="a", to_strategy="b", reason="r"))
        assert store.last_decision_seq("serve.scale") == 2
        assert store.last_decision_seq("meta.switch") == 3
        assert store.last_decision_seq() == 3
        assert store.last_decision_seq("degrade.enter") is None
        assert ExplanationStore().last_decision_seq() is None


class TestWhyAggregate:
    def _filled(self, chains=30):
        store = ExplanationStore(bucket_width=8)
        for i in range(chains):
            _governor_chain(store, base=3 * i, time=float(i))
        return store

    def test_counts_and_value_field_sniffed(self):
        store = self._filled()
        answer = store.why_aggregate()
        assert answer["decisions"] == 30
        agg = answer["kinds"]["serve.scale"]
        assert agg["decisions"] == 30
        assert agg["value_field"] == "latency"  # first VALUE_FIELDS match
        assert agg["mean_value"] == pytest.approx(1.5)
        assert answer["causes"]["serve.scale"] == {
            "serve.predict+serve.telemetry": 30}
        assert answer["truncated"] is False

    def test_mean_is_nan_without_numeric_value(self):
        store = ExplanationStore()
        store(_event("serve.scale", 0, pool="big"))  # no VALUE_FIELDS member
        agg = store.why_aggregate()["kinds"]["serve.scale"]
        assert math.isnan(agg["mean_value"])
        assert agg["value_field"] is None
        assert "value_sum" not in agg  # internals must not leak

    def test_kind_filter(self):
        store = self._filled()
        store(_event("meta.switch", 1000, time=99.0,
                     from_strategy="a", to_strategy="b", reason="r"))
        answer = store.why_aggregate(kind="meta.switch")
        assert set(answer["kinds"]) == {"meta.switch"}
        assert answer["decisions"] == 1

    def test_windows_on_both_axes(self):
        store = self._filled(chains=30)  # decision seqs 2, 5, ..., 89
        by_seq = store.why_aggregate(kind="serve.scale", window=(0, 29),
                                     axis="seq")
        assert 0 < by_seq["decisions"] < 30
        assert by_seq["buckets_scanned"] < len(store._buckets)
        # Time-windowed answers are bucket-granular: every decision inside
        # the window is counted, edges may pull in bucket neighbours.
        by_time = store.why_aggregate(kind="serve.scale", window=(10.0, 19.0),
                                      axis="time")
        assert 10 <= by_time["decisions"] < 30
        assert by_time["window"] == [10.0, 19.0]

    def test_distributions_are_p2_summaries(self):
        store = self._filled()
        dists = store.why_aggregate()["distributions"]["serve.scale"]
        summary = dists["serve.predict+serve.telemetry"]
        assert summary["count"] == 30
        assert summary["mean"] == pytest.approx(1.5)

    def test_aggregate_cost_is_rollup_bound(self):
        """The answer comes from rollups: bucket count stays capped, so
        buckets_scanned cannot grow with stream length."""
        store = ExplanationStore(bucket_width=4, max_buckets=8)
        for i in range(2000):
            _governor_chain(store, base=3 * i, time=float(i))
        answer = store.why_aggregate()
        assert answer["buckets_scanned"] <= 8
        assert answer["decisions"] == 2000  # coverage survives coalescing


class TestBucketCoalescing:
    def test_width_doubles_and_counts_survive(self):
        buckets = _TimeBuckets(width=1, max_buckets=4)
        for seq in range(64):
            buckets.observe(seq, float(seq), "k", "c", 1.0)
        assert len(buckets) <= 4
        assert buckets.width > 1
        total = sum(bucket["kinds"]["k"][0]
                    for _, bucket in buckets.select(None, "seq"))
        assert total == 64

    def test_time_ranges_merge(self):
        buckets = _TimeBuckets(width=1, max_buckets=2)
        for seq in range(8):
            buckets.observe(seq, float(seq) * 10, "k", "c", None)
        selected = buckets.select((0.0, 70.0), "time")
        assert selected  # the whole run stays addressable by time
        lows = [b["t_lo"] for _, b in selected]
        highs = [b["t_hi"] for _, b in selected]
        assert min(lows) == 0.0 and max(highs) == 70.0


class TestTraceIngestion:
    def test_ingest_record_skips_snapshot_and_unescapes(self):
        store = ExplanationStore()
        assert not store.ingest_record(
            {"event": "metrics.snapshot", "metrics": {}})
        assert store.ingest_record(
            {"event": "loop.step", "seq": 0, "~seq": 17, "utility": 0.5})
        assert store.events_seen == 1
        assert store._index[0].fields == {"seq": 17, "utility": 0.5}

    def test_trace_round_trip_preserves_chains(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TelemetrySession(trace_path=path) as session:
            telemetry = emit("serve.telemetry", time=0.0, queue_depth=2.0)
            predict = emit("serve.predict", time=0.0, latency=1.0,
                           causes=(telemetry,))
            emit("serve.scale", time=0.0, pool=2.0, latency=1.0,
                 causes=(predict, telemetry))
            decision_seq = session.bus.events()[-1].seq
        # The file ends with a seq-less metrics.snapshot record; ingestion
        # must skip it without tripping the gap detector.
        lines = [json.loads(line) for line in open(path)]
        assert lines[-1]["event"] == "metrics.snapshot"

        store = ExplanationStore()
        assert store.ingest_trace(path) == 3
        assert not store.truncated
        chain = store.why(decision_seq)
        assert chain["event"] == "serve.scale"
        assert {c["event"] for c in chain["causes"]} == {
            "serve.predict", "serve.telemetry"}


class TestStats:
    def test_stats_expose_bounded_state(self):
        store = ExplanationStore(index_size=8, bucket_width=2, max_buckets=4)
        for i in range(50):
            _governor_chain(store, base=3 * i, time=float(i))
        stats = store.stats()
        assert stats["events_seen"] == 150
        assert stats["decisions_seen"] == 50
        assert stats["indexed"] <= 8
        assert stats["buckets"] <= 4
        assert stats["rollup_cells"] >= 3
        assert stats["truncated"] is False
