"""Tests for the drift-robust forecasting ensemble."""

import math

import numpy as np
import pytest

from repro.learning.drift import PageHinkley
from repro.learning.ensembles import DriftRobustEnsemble
from repro.learning.forecast import (EWMAForecaster, HoltForecaster,
                                     NaiveForecaster)


class TestDriftRobustEnsemble:
    def test_predicts_constant_series(self):
        ens = DriftRobustEnsemble()
        for _ in range(50):
            ens.update(5.0)
        assert ens.forecast() == pytest.approx(5.0, abs=0.1)

    def test_unprimed_forecast_is_nan(self):
        assert math.isnan(DriftRobustEnsemble().forecast())

    def test_heterogeneous_roster(self):
        ens = DriftRobustEnsemble(
            initial_members=[NaiveForecaster(), EWMAForecaster(0.3),
                             HoltForecaster()])
        assert ens.n_members == 3
        for t in range(30):
            ens.update(float(t))
        assert math.isfinite(ens.forecast())

    def test_drift_triggers_renewal(self):
        ens = DriftRobustEnsemble(
            member_factory=lambda: EWMAForecaster(0.3),
            detector=PageHinkley(delta=0.01, threshold=2.0, min_samples=5),
            max_members=3)
        rng = np.random.default_rng(0)
        for t in range(600):
            level = 0.0 if t < 300 else 10.0
            ens.update(level + float(rng.normal(0, 0.05)))
        assert ens.drift_events >= 1
        assert ens.n_members <= 3

    def test_weighting_favours_accurate_member(self):
        good = EWMAForecaster(alpha=0.9)
        bad = NaiveForecaster()
        # Prime 'bad' with a wildly wrong value by feeding through ensemble
        # and checking the weighted forecast leans toward the good member.
        ens = DriftRobustEnsemble(initial_members=[good, bad])
        rng = np.random.default_rng(1)
        for _ in range(100):
            ens.update(float(rng.normal(3.0, 0.01)))
        assert ens.forecast() == pytest.approx(3.0, abs=0.2)

    def test_max_members_validated(self):
        with pytest.raises(ValueError):
            DriftRobustEnsemble(max_members=1)

    def test_adapts_faster_than_frozen_member_after_shift(self):
        ens = DriftRobustEnsemble(
            member_factory=lambda: EWMAForecaster(0.5),
            detector=PageHinkley(delta=0.05, threshold=1.0, min_samples=5))
        frozen = EWMAForecaster(alpha=0.01)  # nearly frozen learner
        rng = np.random.default_rng(2)
        errs_ens, errs_frozen = [], []
        for t in range(400):
            value = 0.0 if t < 200 else 5.0
            value += float(rng.normal(0, 0.05))
            if t > 210:  # after the shift
                errs_ens.append(abs(ens.forecast() - value))
                errs_frozen.append(abs(frozen.forecast() - value))
            ens.update(value)
            frozen.update(value)
        assert np.mean(errs_ens) < np.mean(errs_frozen)
