"""Tests for drift detectors."""

import numpy as np
import pytest

from repro.learning.drift import DDM, PageHinkley, WindowDriftDetector


class TestPageHinkley:
    def test_detects_upward_shift(self):
        detector = PageHinkley(delta=0.05, threshold=3.0)
        rng = np.random.default_rng(0)
        fired_at = None
        for t in range(400):
            value = float(rng.normal(0.0 if t < 200 else 2.0, 0.1))
            if detector.update(value):
                fired_at = t
                break
        assert fired_at is not None and fired_at >= 200

    def test_detects_downward_shift_with_direction(self):
        detector = PageHinkley(delta=0.05, threshold=3.0, direction="decrease")
        rng = np.random.default_rng(1)
        fired_at = None
        for t in range(400):
            value = float(rng.normal(2.0 if t < 200 else 0.0, 0.1))
            if detector.update(value):
                fired_at = t
                break
        assert fired_at is not None and fired_at >= 200

    def test_quiet_on_stationary_stream(self):
        detector = PageHinkley(delta=0.05, threshold=10.0)
        rng = np.random.default_rng(2)
        fired = any(detector.update(float(rng.normal(0, 0.1)))
                    for _ in range(1000))
        assert not fired

    def test_min_samples_gate(self):
        detector = PageHinkley(delta=0.0, threshold=0.001, min_samples=50)
        assert not any(detector.update(float(t)) for t in range(10))

    def test_can_fire_repeatedly(self):
        detector = PageHinkley(delta=0.01, threshold=2.0, min_samples=5)
        rng = np.random.default_rng(3)
        level = 0.0
        for t in range(1200):
            if t % 300 == 299:
                level += 2.0
            detector.update(float(rng.normal(level, 0.1)))
        assert detector.detections >= 2

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(direction="sideways")
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)


class TestDDM:
    def test_detects_error_rate_increase(self):
        detector = DDM()
        rng = np.random.default_rng(4)
        fired = []
        for t in range(2000):
            p_error = 0.1 if t < 1000 else 0.5
            error = 1.0 if rng.random() < p_error else 0.0
            if detector.update(error):
                fired.append(t)
        # The true change must be caught shortly after it happens; the odd
        # false alarm on the noisy prefix is tolerated but must stay rare.
        assert any(1000 <= t <= 1200 for t in fired)
        assert sum(1 for t in fired if t < 1000) <= 2

    def test_quiet_on_stable_error_rate(self):
        detector = DDM()
        rng = np.random.default_rng(5)
        fired = any(detector.update(1.0 if rng.random() < 0.2 else 0.0)
                    for _ in range(3000))
        assert not fired

    def test_warning_precedes_drift(self):
        detector = DDM(warning_level=0.5, drift_level=5.0)
        rng = np.random.default_rng(6)
        warned = False
        for t in range(2000):
            p_error = 0.05 if t < 500 else 0.3
            detector.update(1.0 if rng.random() < p_error else 0.0)
            warned = warned or detector.in_warning
        assert warned

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DDM().update(2.0)

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            DDM(warning_level=3.0, drift_level=2.0)


class TestWindowDriftDetector:
    def test_detects_mean_shift(self):
        detector = WindowDriftDetector(window=40, threshold=3.0)
        rng = np.random.default_rng(7)
        fired = []
        for t in range(400):
            value = float(rng.normal(0.0 if t < 200 else 1.0, 0.1))
            if detector.update(value):
                fired.append(t)
        # True change caught promptly; rare false alarms tolerated.
        assert any(200 <= t <= 280 for t in fired)
        assert sum(1 for t in fired if t < 200) <= 2

    def test_quiet_on_stationary(self):
        detector = WindowDriftDetector(window=40, threshold=4.0)
        rng = np.random.default_rng(8)
        fired = any(detector.update(float(rng.normal(0, 1)))
                    for _ in range(2000))
        assert not fired

    def test_constant_stream_no_detection(self):
        detector = WindowDriftDetector(window=20, threshold=3.0)
        assert not any(detector.update(1.0) for _ in range(100))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowDriftDetector(window=9)
        with pytest.raises(ValueError):
            WindowDriftDetector(window=21)
