"""Tests for learning automata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.automata import LearningAutomaton


class TestLearningAutomaton:
    def test_starts_uniform(self):
        la = LearningAutomaton(4)
        assert la.probabilities == pytest.approx([0.25] * 4)

    def test_reward_concentrates_probability(self):
        la = LearningAutomaton(3, reward_step=0.2, floor=0.0,
                               rng=np.random.default_rng(0))
        for _ in range(50):
            la.reward(1)
        assert la.best() == 1
        assert la.probabilities[1] > 0.95

    def test_penalise_spreads_probability(self):
        la = LearningAutomaton(3, reward_step=0.2, penalty_step=0.2, floor=0.0)
        for _ in range(20):
            la.reward(0)
        p_before = la.probabilities[0]
        la.penalise(0)
        assert la.probabilities[0] < p_before

    def test_penalty_step_zero_is_inaction(self):
        la = LearningAutomaton(3, penalty_step=0.0)
        before = la.probabilities
        la.penalise(0)
        assert la.probabilities == pytest.approx(before)

    def test_floor_preserves_exploration(self):
        la = LearningAutomaton(4, reward_step=0.5, floor=0.02,
                               rng=np.random.default_rng(0))
        for _ in range(200):
            la.reward(0)
        assert all(p >= 0.02 - 1e-9 for p in la.probabilities)

    def test_probabilities_always_sum_to_one(self):
        la = LearningAutomaton(5, reward_step=0.3, penalty_step=0.2, floor=0.01,
                               rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        for _ in range(300):
            action = la.select()
            la.feedback(action, float(rng.random()))
            assert la.probabilities.sum() == pytest.approx(1.0)

    def test_converges_to_best_under_stochastic_feedback(self):
        la = LearningAutomaton(3, reward_step=0.1,
                               rng=np.random.default_rng(3))
        success = [0.2, 0.9, 0.4]
        rng = np.random.default_rng(4)
        for _ in range(2000):
            action = la.select()
            la.feedback(action, 1.0 if rng.random() < success[action] else 0.0)
        assert la.best() == 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LearningAutomaton(0)
        with pytest.raises(ValueError):
            LearningAutomaton(2, reward_step=0.0)
        with pytest.raises(ValueError):
            LearningAutomaton(2, floor=0.6)
        with pytest.raises(IndexError):
            LearningAutomaton(2).reward(5)

    @given(st.integers(min_value=2, max_value=8),
           st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_distribution_invariants_under_arbitrary_rewards(self, n, actions):
        la = LearningAutomaton(n, reward_step=0.3, penalty_step=0.1)
        for a in actions:
            la.feedback(a % n, float((a % 2)))
        probs = la.probabilities
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0.0)
