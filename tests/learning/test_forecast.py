"""Tests for the forecaster family."""

import math

import pytest

from repro.learning.forecast import (ARForecaster, EWMAForecaster,
                                     HoltForecaster, NaiveForecaster,
                                     make_forecaster)


class TestNaive:
    def test_predicts_last_value(self):
        f = NaiveForecaster()
        assert math.isnan(f.forecast())
        f.update(3.0)
        f.update(7.0)
        assert f.forecast() == 7.0
        assert f.forecast(horizon=10) == 7.0


class TestEWMA:
    def test_converges_on_constant(self):
        f = EWMAForecaster(alpha=0.5)
        for _ in range(30):
            f.update(4.0)
        assert f.forecast() == pytest.approx(4.0)

    def test_smoothing_lags_step_change(self):
        f = EWMAForecaster(alpha=0.3)
        for _ in range(20):
            f.update(0.0)
        f.update(10.0)
        assert 0.0 < f.forecast() < 10.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMAForecaster(alpha=0.0)


class TestHolt:
    def test_extrapolates_linear_trend(self):
        f = HoltForecaster(alpha=0.8, beta=0.5, damping=1.0)
        for t in range(50):
            f.update(2.0 * t)
        # Next value should be about 2*50 = 100.
        assert f.forecast(1) == pytest.approx(100.0, abs=2.0)
        # Multi-step extrapolation continues the trend.
        assert f.forecast(5) == pytest.approx(108.0, abs=4.0)

    def test_beats_ewma_on_trending_series(self):
        holt = HoltForecaster(alpha=0.5, beta=0.3, damping=1.0)
        ewma = EWMAForecaster(alpha=0.5)
        holt_err = ewma_err = 0.0
        for t in range(100):
            value = 1.5 * t
            if t > 5:
                holt_err += abs(holt.forecast() - value)
                ewma_err += abs(ewma.forecast() - value)
            holt.update(value)
            ewma.update(value)
        assert holt_err < ewma_err

    def test_damping_flattens_long_horizons(self):
        damped = HoltForecaster(alpha=0.8, beta=0.5, damping=0.8)
        for t in range(50):
            damped.update(2.0 * t)
        # Damped long-horizon forecast grows sublinearly.
        assert damped.forecast(50) - damped.forecast(1) < 2.0 * 49

    def test_unprimed_is_nan(self):
        assert math.isnan(HoltForecaster().forecast())


class TestAR:
    def test_learns_oscillation(self):
        f = ARForecaster(order=4, forgetting=1.0)
        series = [math.sin(0.5 * t) for t in range(300)]
        for v in series:
            f.update(v)
        prediction = f.forecast(1)
        actual = math.sin(0.5 * 300)
        assert prediction == pytest.approx(actual, abs=0.05)

    def test_falls_back_before_priming(self):
        f = ARForecaster(order=5)
        f.update(3.0)
        assert f.forecast() == 3.0

    def test_multi_step_forecast_finite(self):
        f = ARForecaster(order=3)
        for t in range(100):
            f.update(math.sin(0.3 * t))
        assert math.isfinite(f.forecast(10))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ARForecaster(order=0)


class TestFactory:
    def test_builds_each_kind(self):
        assert isinstance(make_forecaster("naive"), NaiveForecaster)
        assert isinstance(make_forecaster("ewma", alpha=0.2), EWMAForecaster)
        assert isinstance(make_forecaster("holt"), HoltForecaster)
        assert isinstance(make_forecaster("ar", order=2), ARForecaster)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_forecaster("magic")
