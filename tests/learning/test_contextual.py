"""Tests for the LinUCB contextual bandit."""

import numpy as np
import pytest

from repro.learning.contextual import LinUCB


def run_contextual(policy, steps, rng, reward_fn, n_features=2):
    regret = 0.0
    for _ in range(steps):
        context = rng.uniform(-1, 1, size=n_features)
        arm = policy.select(context)
        rewards = [reward_fn(context, a) for a in range(policy.n_arms)]
        policy.update(context, arm, rewards[arm] + float(rng.normal(0, 0.05)))
        regret += max(rewards) - rewards[arm]
    return regret


class TestLinUCB:
    def test_learns_context_dependent_best_arm(self):
        # Arm 0 wins when x0 > 0; arm 1 wins otherwise.
        def reward(context, arm):
            return context[0] if arm == 0 else -context[0]

        policy = LinUCB(n_arms=2, n_features=2, alpha=0.5)
        rng = np.random.default_rng(0)
        run_contextual(policy, 400, rng, reward)
        assert policy.select([0.8, 0.0]) == 0
        assert policy.select([-0.8, 0.0]) == 1

    def test_regret_sublinear(self):
        def reward(context, arm):
            return context[0] if arm == 0 else -context[0]

        policy = LinUCB(n_arms=2, n_features=2, alpha=0.5)
        rng = np.random.default_rng(1)
        early = run_contextual(policy, 200, rng, reward)
        late = run_contextual(policy, 200, rng, reward)
        assert late < 0.5 * early

    def test_expected_reward_recovers_linear_map(self):
        policy = LinUCB(n_arms=1, n_features=1, alpha=0.0, ridge=0.01)
        rng = np.random.default_rng(2)
        for _ in range(300):
            x = float(rng.uniform(-1, 1))
            policy.update([x], 0, 2.0 * x + 1.0)
        assert policy.expected_reward([0.5], 0) == pytest.approx(2.0, abs=0.05)
        assert policy.weights(0) == pytest.approx([1.0, 2.0], abs=0.05)

    def test_ucb_bonus_shrinks_with_data(self):
        policy = LinUCB(n_arms=1, n_features=1, alpha=1.0)
        context = [0.5]
        gap_before = policy.ucb(context, 0) - policy.expected_reward(context, 0)
        for _ in range(100):
            policy.update(context, 0, 1.0)
        gap_after = policy.ucb(context, 0) - policy.expected_reward(context, 0)
        assert gap_after < 0.2 * gap_before

    def test_unseen_arm_keeps_high_bonus(self):
        policy = LinUCB(n_arms=2, n_features=1, alpha=1.0)
        for _ in range(50):
            policy.update([0.5], 0, 0.2)
        # Arm 1 never pulled: optimism should select it despite arm 0's
        # positive record.
        assert policy.select([0.5]) == 1

    def test_forgetting_tracks_reward_flip(self):
        tracking = LinUCB(n_arms=1, n_features=1, forgetting=0.95, alpha=0.0)
        frozen = LinUCB(n_arms=1, n_features=1, forgetting=1.0, alpha=0.0)
        rng = np.random.default_rng(3)
        for t in range(400):
            x = float(rng.uniform(-1, 1))
            slope = 1.0 if t < 200 else -1.0
            for policy in (tracking, frozen):
                policy.update([x], 0, slope * x)
        assert tracking.expected_reward([1.0], 0) < -0.5
        assert abs(frozen.expected_reward([1.0], 0)
                   - (-1.0)) > abs(tracking.expected_reward([1.0], 0) - (-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            LinUCB(0, 1)
        with pytest.raises(ValueError):
            LinUCB(1, 0)
        with pytest.raises(ValueError):
            LinUCB(1, 1, alpha=-1.0)
        with pytest.raises(ValueError):
            LinUCB(1, 1, forgetting=0.0)
        policy = LinUCB(2, 2)
        with pytest.raises(ValueError):
            policy.select([1.0])
        with pytest.raises(IndexError):
            policy.update([1.0, 2.0], 5, 0.0)
