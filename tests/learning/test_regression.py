"""Tests for recursive least squares."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.regression import RecursiveLeastSquares


class TestRLS:
    def test_recovers_linear_map(self):
        rng = np.random.default_rng(0)
        rls = RecursiveLeastSquares(n_features=2, forgetting=1.0)
        true_w = np.array([1.0, 2.0, -3.0])  # bias, w1, w2
        for _ in range(300):
            x = rng.uniform(-1, 1, size=2)
            y = true_w[0] + true_w[1] * x[0] + true_w[2] * x[1]
            rls.update(x, y)
        assert rls.weights == pytest.approx(true_w, abs=1e-2)

    def test_prediction_after_fit(self):
        rls = RecursiveLeastSquares(n_features=1, forgetting=1.0)
        for x in np.linspace(-1, 1, 50):
            rls.update([x], 2.0 * x + 1.0)
        assert rls.predict([0.5]) == pytest.approx(2.0, abs=1e-3)

    def test_forgetting_tracks_weight_drift(self):
        rng = np.random.default_rng(1)
        tracking = RecursiveLeastSquares(n_features=1, forgetting=0.95)
        stale = RecursiveLeastSquares(n_features=1, forgetting=1.0)
        for t in range(400):
            x = rng.uniform(-1, 1, size=1)
            slope = 1.0 if t < 200 else -1.0
            y = slope * x[0]
            tracking.update(x, y)
            stale.update(x, y)
        assert tracking.predict([1.0]) == pytest.approx(-1.0, abs=0.1)
        assert abs(stale.predict([1.0]) - (-1.0)) > abs(
            tracking.predict([1.0]) - (-1.0))

    def test_dimension_mismatch_rejected(self):
        rls = RecursiveLeastSquares(n_features=2)
        with pytest.raises(ValueError):
            rls.predict([1.0])
        with pytest.raises(ValueError):
            rls.update([1.0, 2.0, 3.0], 0.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, forgetting=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, delta=0.0)

    def test_residual_shrinks(self):
        rls = RecursiveLeastSquares(n_features=1, forgetting=1.0)
        rng = np.random.default_rng(2)
        residuals = []
        for _ in range(100):
            x = rng.uniform(-1, 1, size=1)
            residuals.append(abs(rls.update(x, 3.0 * x[0])))
        assert np.mean(residuals[-10:]) < np.mean(residuals[:10])

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=5,
                    max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_weights_stay_finite(self, xs):
        rls = RecursiveLeastSquares(n_features=1, forgetting=0.99)
        for x in xs:
            rls.update([x], x * 0.5 + 1.0)
        assert np.all(np.isfinite(rls.weights))
