"""Tests for tabular Q-learning."""

import numpy as np
import pytest

from repro.learning.qlearning import QLearner


class TestQLearner:
    def test_learns_immediate_reward_preference(self):
        q = QLearner(actions=["a", "b"], alpha=0.5, gamma=0.0, epsilon=0.0,
                     rng=np.random.default_rng(0))
        for _ in range(50):
            q.update("s", "a", 1.0, None)
            q.update("s", "b", 0.0, None)
        assert q.best_action("s") == "a"
        assert q.q("s", "a") == pytest.approx(1.0, abs=1e-3)

    def test_propagates_delayed_reward(self):
        # Chain: s0 -a-> s1 -a-> terminal(+1). Action 'b' terminates with 0.
        q = QLearner(actions=["a", "b"], alpha=0.5, gamma=0.9, epsilon=0.0,
                     rng=np.random.default_rng(0))
        for _ in range(200):
            q.update("s0", "a", 0.0, "s1")
            q.update("s1", "a", 1.0, None)
            q.update("s0", "b", 0.0, None)
        assert q.best_action("s0") == "a"
        assert q.q("s0", "a") == pytest.approx(0.9, abs=0.05)

    def test_epsilon_explores(self):
        q = QLearner(actions=["a", "b"], epsilon=1.0,
                     rng=np.random.default_rng(1))
        choices = {q.select("s") for _ in range(50)}
        assert choices == {"a", "b"}

    def test_update_returns_td_error(self):
        q = QLearner(actions=["a"], alpha=0.5, gamma=0.0)
        err = q.update("s", "a", 1.0, None)
        assert err == pytest.approx(1.0)
        err2 = q.update("s", "a", 1.0, None)
        assert abs(err2) < abs(err)

    def test_optimistic_init(self):
        q = QLearner(actions=["a"], optimistic_init=5.0)
        assert q.q("anything", "a") == 5.0

    def test_reset_clears_table(self):
        q = QLearner(actions=["a"])
        q.update("s", "a", 1.0, None)
        assert q.states_seen() == 1
        q.reset()
        assert q.states_seen() == 0 and q.updates == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            QLearner(actions=[])
        with pytest.raises(ValueError):
            QLearner(actions=["a"], alpha=0.0)
        with pytest.raises(ValueError):
            QLearner(actions=["a"], gamma=1.0)
        with pytest.raises(ValueError):
            QLearner(actions=["a"], epsilon=2.0)
