"""Tests for bandit policies."""

import numpy as np
import pytest

from repro.learning.bandits import EpsilonGreedy, ThompsonSampling, UCB1


def run_bandit(policy, means, steps, rng):
    """Drive a policy on a stationary Gaussian bandit; return pull counts."""
    counts = np.zeros(len(means), dtype=int)
    for _ in range(steps):
        arm = policy.select()
        reward = float(rng.normal(means[arm], 0.1))
        policy.update(arm, reward)
        counts[arm] += 1
    return counts


MEANS = [0.2, 0.8, 0.5]


class TestEpsilonGreedy:
    def test_finds_best_arm(self):
        rng = np.random.default_rng(0)
        policy = EpsilonGreedy(3, epsilon=0.1, rng=np.random.default_rng(1))
        counts = run_bandit(policy, MEANS, 1000, rng)
        assert counts[1] > 600

    def test_initial_pulls_cover_all_arms(self):
        policy = EpsilonGreedy(3, epsilon=0.0, rng=np.random.default_rng(0))
        pulled = set()
        for _ in range(3):
            arm = policy.select()
            pulled.add(arm)
            policy.update(arm, 0.0)
        assert pulled == {0, 1, 2}

    def test_discount_tracks_switch(self):
        rng = np.random.default_rng(2)
        plastic = EpsilonGreedy(2, epsilon=0.1, discount=0.95,
                                rng=np.random.default_rng(3))
        # Arm 0 good for 300 steps, then arm 1 becomes good.
        for t in range(600):
            arm = plastic.select()
            means = [0.9, 0.1] if t < 300 else [0.1, 0.9]
            plastic.update(arm, float(rng.normal(means[arm], 0.05)))
        assert plastic.value(1) > plastic.value(0)

    def test_value_accessor_and_bounds(self):
        policy = EpsilonGreedy(2)
        policy.update(0, 1.0)
        assert policy.value(0) == pytest.approx(1.0)
        with pytest.raises(IndexError):
            policy.update(5, 1.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(0)
        with pytest.raises(ValueError):
            EpsilonGreedy(2, epsilon=-0.1)
        with pytest.raises(ValueError):
            EpsilonGreedy(2, discount=0.0)


class TestUCB1:
    def test_finds_best_arm(self):
        rng = np.random.default_rng(4)
        policy = UCB1(3)
        counts = run_bandit(policy, MEANS, 1000, rng)
        assert counts[1] > 600

    def test_pulls_every_arm_once_first(self):
        policy = UCB1(4)
        seen = []
        for _ in range(4):
            arm = policy.select()
            seen.append(arm)
            policy.update(arm, 0.0)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_exploration_bonus_shrinks(self):
        policy = UCB1(2)
        for arm in (0, 1):
            policy.update(arm, 0.5)
        # Pull arm 0 a lot: bonus for arm 1 eventually dominates.
        for _ in range(200):
            policy.update(0, 0.5)
        assert policy.select() == 1


class TestThompsonSampling:
    def test_finds_best_arm(self):
        rng = np.random.default_rng(5)
        policy = ThompsonSampling(3, rng=np.random.default_rng(6))
        counts = run_bandit(policy, MEANS, 1000, rng)
        assert counts[1] > 600

    def test_posterior_mean_converges(self):
        policy = ThompsonSampling(1, noise_var=0.01,
                                  rng=np.random.default_rng(0))
        for _ in range(100):
            policy.update(0, 0.7)
        assert policy.value(0) == pytest.approx(0.7, abs=0.05)

    def test_forgetting_keeps_variance_alive(self):
        policy = ThompsonSampling(1, forgetting=0.9, prior_var=1.0,
                                  rng=np.random.default_rng(0))
        for _ in range(500):
            policy.update(0, 0.5)
        # With forgetting, posterior variance stays bounded away from zero.
        assert policy._var[0] > 1e-4

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ThompsonSampling(2, prior_var=0.0)
        with pytest.raises(ValueError):
            ThompsonSampling(2, forgetting=1.5)
