"""Guard: telemetry must be close to free when disabled.

The observability layer promises a near-zero disabled cost: hot paths pay
one ``enabled()`` check (an attribute read) and skip all instrumentation.
This benchmark runs a 1k-step control loop with telemetry off, measures
the actual per-check cost of the disabled instrumentation primitives, and
asserts that the total per-step instrumentation budget stays under 5% of
the loop's own step time.

(Directly diffing "instrumented" vs "uninstrumented" builds is impossible
inside one source tree, so the guard bounds the *sum of the disabled
primitives actually on the hot path* against the measured loop cost --
the same quantity, computed from its parts.)
"""

import timeit
import tracemalloc

import numpy as np

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, private, run_control_loop)
from repro.explain import ExplanationStore
from repro.obs import causal_scope, emit, enabled, get_bus

STEPS = 1000

#: Disabled-path touchpoints per loop step: the node checks once in
#: ``step()``, the loop checks twice (environment phase + step event),
#: and the simulators' pattern is one check per step.  Padded generously.
CHECKS_PER_STEP = 8


class _World:
    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)
        self.pressure = 0.2

    def candidate_actions(self, now):
        return ["economy", "turbo"]

    def sensed_pressure(self):
        return self.pressure

    def apply(self, action, now):
        self.pressure = float(np.clip(
            self.pressure + self._rng.normal(0.0, 0.02), 0.0, 1.0))
        perf = 0.9 if action == "turbo" else 0.9 - 0.8 * self.pressure
        return {"perf": perf, "cost": 0.7 if action == "turbo" else 0.2}


def _run_loop():
    world = _World()
    goal = Goal(objectives=[Objective("perf"),
                            Objective("cost", maximise=False)],
                weights={"perf": 0.7, "cost": 0.3}, name="bench")
    sensors = SensorSuite([
        Sensor(private("pressure"), world.sensed_pressure,
               rng=np.random.default_rng(1))])
    node = build_node("bench", CapabilityProfile.full_stack(), sensors, goal,
                      rng=np.random.default_rng(0))
    run_control_loop(node, world, goal, steps=STEPS)


def test_disabled_overhead_under_5_percent():
    assert not enabled(), "benchmark requires telemetry off"

    # The real loop, telemetry disabled (instrumentation checks included).
    loop_seconds = min(timeit.repeat(_run_loop, number=1, repeat=3))

    # Cost of the disabled primitives the loop pays per step: enabled()
    # guards, a worst-case no-op emit() (kwargs packing included, causal
    # provenance included) and the shared no-op causal scope.
    n = 200_000
    check_seconds = min(timeit.repeat(
        "enabled(); emit('x', a=1.0, b=2.0, causes=(1, 2))\n"
        "with causal_scope():\n"
        "    pass",
        globals={"enabled": enabled, "emit": emit,
                 "causal_scope": causal_scope}, number=n, repeat=3)) / n

    budget = CHECKS_PER_STEP * check_seconds * STEPS
    assert budget < 0.05 * loop_seconds, (
        f"disabled instrumentation budget {budget * 1e3:.2f}ms exceeds 5% of "
        f"the {loop_seconds * 1e3:.1f}ms loop")

    # And the checks must not have left any trace behind.
    assert len(get_bus()) == 0


def test_disabled_fast_path_allocates_nothing():
    """The guarded hot-path pattern must not allocate when telemetry is off.

    Substrates guard every emission with ``if enabled():`` so a disabled
    bus costs one attribute read -- no kwargs dict, no event record, no
    deque growth.  The pattern now includes causal provenance (an
    emit-with-``causes`` inside a ``causal_scope``) and an attached but
    idle :class:`ExplanationStore`: a disabled bus never invokes
    subscribers, so the store must see nothing and allocate nothing.
    Net allocations attributed to the guarded loop must be zero.
    """
    assert not enabled(), "benchmark requires telemetry off"
    store = ExplanationStore().attach(get_bus())

    def guarded(n):
        for _ in range(n):
            with causal_scope():
                if enabled():
                    emit("bench.alloc", value=1.0, phase="hot",
                         causes=(1, 2))

    try:
        guarded(1_000)  # settle any lazy interpreter state first
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            guarded(10_000)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
    finally:
        store.detach()
    here = [tracemalloc.Filter(True, __file__)]
    stats = after.filter_traces(here).compare_to(
        before.filter_traces(here), "lineno")
    grown = [s for s in stats if s.size_diff > 0]
    assert not grown, f"disabled fast path allocated: {grown}"
    assert len(get_bus()) == 0
    assert store.events_seen == 0, "idle store was invoked on a disabled bus"


def test_disabled_guard_never_invokes_emit(monkeypatch):
    """Call-count probe: the guard must short-circuit the emit call."""
    from repro import obs

    assert not obs.enabled()
    calls = []
    monkeypatch.setattr(obs, "emit",
                        lambda name, **fields: calls.append(name))
    for _ in range(100):
        if obs.enabled():
            obs.emit("bench.guard", value=1.0)
    assert calls == []


def test_disabled_loop_throughput_floor():
    """The disabled loop must stay in the same performance class.

    A coarse absolute floor (very conservative: CI machines vary) that
    catches accidental always-on instrumentation, which would slow the
    loop by orders of magnitude more than 5%.
    """
    loop_seconds = min(timeit.repeat(_run_loop, number=1, repeat=3))
    per_step = loop_seconds / STEPS
    assert per_step < 5e-3, f"control step took {per_step * 1e6:.0f}us"
