"""Benchmark E3: self-aware cloud autoscaling (DESIGN.md E3).

Shape checks: the self-aware scaler reaches near-oracle utility, beats
the under-provisioned static cluster outright, provisions far fewer
servers than the over-provisioned one, and -- in the goal-change table --
is the scaler that actually cuts cost when stakeholders re-weight.
"""

import pytest

from repro.experiments import e3_cloud

SEEDS = (0, 1)
STEPS = 500


@pytest.fixture(scope="module")
def table():
    return e3_cloud.run(seeds=SEEDS, steps=STEPS)


@pytest.fixture(scope="module")
def change_table():
    return e3_cloud.run_goal_change(seeds=SEEDS, steps=STEPS)


def test_e3_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e3_cloud.run(seeds=(0,), steps=300),
        rounds=1, iterations=1)


def test_self_aware_near_oracle(table):
    assert table.row_by("scaler", "self-aware")["vs_oracle"] >= 0.95


def test_self_aware_beats_underprovisioned(table):
    aware = table.row_by("scaler", "self-aware")["utility"]
    static = table.row_by("scaler", "static-4")["utility"]
    assert aware > static + 0.2


def test_self_aware_cheaper_than_overprovisioned(table):
    aware = table.row_by("scaler", "self-aware")["mean_servers"]
    static = table.row_by("scaler", "static-15")["mean_servers"]
    assert aware < 0.85 * static


def test_goal_change_followed_only_by_goal_reader(change_table):
    aware = change_table.row_by("scaler", "self-aware")
    static = change_table.row_by("scaler", "static-15")
    reactive = change_table.row_by("scaler", "reactive")
    assert aware["utility_after"] > static["utility_after"]
    assert aware["utility_after"] > reactive["utility_after"]
    assert aware["cost_after"] < 0.6 * static["cost_after"]
