"""Benchmarks for the parallel engine: pool speedup and cache speedup.

Two claims the engine makes beyond correctness:

- on a multi-core box, ``--jobs 4`` beats ``--jobs 1`` by a wide margin
  on the quick suite (the shards are embarrassingly parallel; the only
  serial parts are reduce and pool startup);
- a warm cache beats a cold run by an order of magnitude (disk reads
  replace simulation).

The speedup test skips on boxes with fewer than four cores, where the
pool cannot win by construction.  The cache test runs everywhere.
"""

import os
import time

import pytest

from repro.experiments.engine import canonical_suite_text, run_suite
from repro.experiments.run_all import suite_jobs

#: A parallel-friendly slice of the quick suite: enough shards to keep
#: four workers busy, small enough to stay a benchmark.
_BENCH_NAMES = ("E3", "E3-goal", "E5", "E6", "E9", "A2")


def _bench_jobs():
    return [job for job in suite_jobs(quick=True)
            if job.name in _BENCH_NAMES]


def _timed(**kwargs):
    start = time.perf_counter()
    report = run_suite(_bench_jobs(), **kwargs)
    return report, time.perf_counter() - start


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="pool speedup needs at least 4 cores")
def test_jobs4_at_least_1_8x_faster_than_serial():
    # Warm-up: imports and any lazy module state, so both timed runs
    # pay identical fixed costs.
    run_suite(_bench_jobs()[:1], n_jobs=1)
    serial, serial_wall = _timed(n_jobs=1)
    parallel, parallel_wall = _timed(n_jobs=4)
    assert (canonical_suite_text(serial.tables)
            == canonical_suite_text(parallel.tables))
    assert serial_wall / parallel_wall >= 1.8, (
        f"serial {serial_wall:.2f}s vs 4 workers {parallel_wall:.2f}s")


def test_warm_cache_at_least_5x_faster_than_cold(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold, cold_wall = _timed(n_jobs=1, cache=True, cache_dir=cache_dir)
    warm, warm_wall = _timed(n_jobs=1, cache=True, cache_dir=cache_dir)
    assert cold.cached_shards == 0
    assert warm.executed_shards == 0
    assert (canonical_suite_text(cold.tables)
            == canonical_suite_text(warm.tables))
    assert cold_wall / warm_wall >= 5.0, (
        f"cold {cold_wall:.2f}s vs warm {warm_wall:.2f}s")


def test_parallel_engine_benchmark(benchmark):
    benchmark.pedantic(lambda: run_suite(_bench_jobs()[:2], n_jobs=2),
                       rounds=1, iterations=1)
