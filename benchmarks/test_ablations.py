"""Benchmarks for the DESIGN.md design-choice ablations (A1, A2, A4)."""

import pytest

from repro.experiments import ablations


@pytest.fixture(scope="module")
def aggregation_table():
    return ablations.run_aggregation(seeds=(0, 1), steps=900)


@pytest.fixture(scope="module")
def forecaster_table():
    return ablations.run_forecasters(seeds=(0, 1), steps=400)


@pytest.fixture(scope="module")
def pricing_table():
    return ablations.run_auction_pricing(n_auctions=1000)


def test_ablations_benchmark(benchmark):
    benchmark.pedantic(
        lambda: ablations.run_auction_pricing(n_auctions=500),
        rounds=1, iterations=1)


class TestAggregation:
    def test_weighted_sum_follows_reweighting_at_least_as_well(
            self, aggregation_table):
        ws = aggregation_table.row_by("aggregation", "weighted-sum")
        knee = aggregation_table.row_by("aggregation", "pareto-knee")
        assert ws["utility_after_reweight"] >= \
            knee["utility_after_reweight"] - 0.02

    def test_both_schemes_functional(self, aggregation_table):
        for row in aggregation_table.rows:
            assert row["mean_utility"] > 0.4


class TestForecasters:
    def test_all_families_functional(self, forecaster_table):
        for row in forecaster_table.rows:
            assert row["utility"] > 0.7
            assert row["qos"] > 0.8

    def test_family_choice_is_second_order(self, forecaster_table):
        # The ablation's finding: on this workload the family matters
        # far less than having time-awareness at all.
        utilities = forecaster_table.column("utility")
        assert max(utilities) - min(utilities) < 0.08


class TestKnowledgeRepresentation:
    @pytest.fixture(scope="class")
    def kr_table(self):
        return ablations.run_knowledge_representation(
            seeds=(0, 1, 2), steps=900, granularities=(1, 3, 41))

    def test_moderate_granularity_beats_context_free(self, kr_table):
        coarse = kr_table.row_by("levels_per_feature", 1)["mean_utility"]
        moderate = kr_table.row_by("levels_per_feature", 3)["mean_utility"]
        assert moderate > coarse

    def test_extreme_granularity_starves(self, kr_table):
        moderate = kr_table.row_by("levels_per_feature", 3)["mean_utility"]
        fine = kr_table.row_by("levels_per_feature", 41)["mean_utility"]
        assert moderate > fine

    def test_bin_count_grows_with_granularity(self, kr_table):
        bins = kr_table.column("bins_used")
        assert bins == sorted(bins)


class TestAuctionPricing:
    def test_allocation_identical(self, pricing_table):
        vickrey = pricing_table.row_by("rule", "second-price(Vickrey)")
        first = pricing_table.row_by("rule", "first-price")
        assert vickrey["trade_rate"] == pytest.approx(first["trade_rate"])

    def test_vickrey_leaves_winner_surplus(self, pricing_table):
        vickrey = pricing_table.row_by("rule", "second-price(Vickrey)")
        first = pricing_table.row_by("rule", "first-price")
        assert vickrey["winner_surplus"] > 0.1
        assert first["winner_surplus"] == 0.0
        assert vickrey["mean_price"] < first["mean_price"]
