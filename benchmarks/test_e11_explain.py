"""Benchmark E11: self-explanation quality and overhead (DESIGN.md E11).

Shape checks: deliberative (model-holding) nodes produce evidence-backed
explanations for every decision -- the static system can only say "I was
built this way" (no evidence, no alternatives); the journalling overhead
stays small relative to the run.
"""

import pytest

from repro.experiments import e11_explain

SEEDS = (0, 1)
STEPS = 500


@pytest.fixture(scope="module")
def table():
    return e11_explain.run(seeds=SEEDS, steps=STEPS)


def test_e11_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e11_explain.run(seeds=(0,), steps=300),
        rounds=1, iterations=1)


def test_every_decision_is_explainable(table):
    for row in table.rows:
        assert row["coverage"] == 1.0


def test_only_model_holders_give_evidence(table):
    static = table.row_by("profile", "static")
    for name in ("goal-aware", "full-stack"):
        row = table.row_by("profile", name)
        assert row["evidence_rate"] == 1.0
        assert row["mean_candidates"] >= 3.0
    assert static["evidence_rate"] == 0.0


def test_narratives_cite_reasoning_ingredients(table):
    for name in ("goal-aware", "full-stack"):
        row = table.row_by("profile", name)
        assert row["narrative_ingredients"] >= 3.0


def test_journal_overhead_is_modest(table):
    for row in table.rows:
        assert row["journal_overhead_pct"] < 30.0
