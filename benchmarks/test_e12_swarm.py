"""Benchmark E12: swarm structural self-adaptation (DESIGN.md extension).

Shape checks: the self-aware swarm detects the most events overall,
keeps its detection rate after the hotspots shift and after robots die
(where the static formation's holes persist), and the structureless
patrol is the floor.
"""

import pytest

from repro.experiments import e12_swarm

SEEDS = (0, 1)
STEPS = 600


@pytest.fixture(scope="module")
def table():
    return e12_swarm.run(seeds=SEEDS, steps=STEPS)


def test_e12_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e12_swarm.run(seeds=(0,), steps=300),
        rounds=1, iterations=1)


def test_self_aware_best_overall(table):
    aware = table.row_by("controller", "self-aware")["overall"]
    for name in ("static-formation", "random-patrol"):
        assert aware > table.row_by("controller", name)["overall"]


def test_self_aware_survives_failures_better_than_static(table):
    aware = table.row_by("controller", "self-aware")["after_failures"]
    static = table.row_by("controller", "static-formation")["after_failures"]
    assert aware > static + 0.1


def test_self_aware_tracks_hotspot_shift(table):
    aware = table.row_by("controller", "self-aware")
    # Adaptation: post-shift performance stays within reach of initial.
    assert aware["after_shift"] > 0.75 * aware["initial"]


def test_random_patrol_is_the_floor(table):
    patrol = table.row_by("controller", "random-patrol")["overall"]
    aware = table.row_by("controller", "self-aware")["overall"]
    assert aware > 1.2 * patrol
