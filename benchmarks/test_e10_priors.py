"""Benchmark E10: design-time knowledge vs run-time learning (DESIGN.md E10).

Shape checks: the run-time learner recovers most of the exact-prior
utility with zero design-time model; a stale prior is substantially
worse and never recovers; blending a stale prior with learning repairs
most of the damage by the end of the run.
"""

import pytest

from repro.experiments import e10_priors

SEEDS = (0, 1, 2)
STEPS = 600


@pytest.fixture(scope="module")
def table():
    return e10_priors.run(seeds=SEEDS, steps=STEPS)


def test_e10_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e10_priors.run(seeds=(0,), steps=400),
        rounds=1, iterations=1)


def test_learner_recovers_most_of_exact_prior(table):
    assert table.row_by("model", "learned-only")["vs_exact_prior"] >= 0.9


def test_stale_prior_pays_heavily(table):
    stale = table.row_by("model", "prior-stale")["vs_exact_prior"]
    learned = table.row_by("model", "learned-only")["vs_exact_prior"]
    assert stale < learned - 0.05


def test_stale_prior_never_recovers(table):
    stale = table.row_by("model", "prior-stale")
    # A non-learning model shows no late improvement beyond noise.
    assert stale["late_utility"] < stale["mean_utility"] + 0.1


def test_blending_repairs_a_stale_prior(table):
    blended = table.row_by("model", "blended(stale+learning)")
    stale = table.row_by("model", "prior-stale")
    assert blended["late_utility"] > stale["late_utility"] + 0.05
