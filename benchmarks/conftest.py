"""Shared configuration for the benchmark suite.

Each ``test_eN_*`` module regenerates one experiment table from
DESIGN.md at reduced size (pytest-benchmark measures the run; assertions
check the *shape* of the result -- who wins, roughly by how much).  Full
sized tables come from ``python -m repro.experiments.run_all``.
"""

import pytest


@pytest.fixture(scope="session")
def bench_seeds():
    """Seeds shared by all benchmark runs (small for speed)."""
    return (0, 1)
