"""Benchmark E9: collective self-awareness architectures (DESIGN.md E9).

Shape checks: without failures all three schemes make (nearly) every
node aware of the global quantity; when the scheme's most critical node
fails, the central hub blinds *everyone*, the hierarchy blinds a
subtree, and gossip keeps every surviving node aware; the central hub
is the message hot-spot and its load grows with N.
"""


import pytest

from repro.experiments import e9_collective

SIZES = (10, 50)


@pytest.fixture(scope="module")
def table():
    return e9_collective.run(seeds=(0, 1), sizes=SIZES)


def test_e9_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e9_collective.run(seeds=(0,), sizes=(10, 50)),
        rounds=1, iterations=1)


def _row(table, scheme, n, failure):
    for row in table.rows:
        if (row["scheme"] == scheme and row["n"] == n
                and row["failure"] == failure):
            return row
    raise KeyError((scheme, n, failure))


def test_all_schemes_accurate_without_failure(table):
    for scheme in ("gossip", "hierarchical", "central"):
        for n in SIZES:
            row = _row(table, scheme, n, "none")
            assert row["aware_fraction"] == 1.0
            assert row["mean_error"] < 0.05


def test_central_failure_blinds_everyone(table):
    for n in SIZES:
        row = _row(table, "central", n, "critical-node")
        assert row["aware_fraction"] == 0.0


def test_hierarchy_failure_blinds_only_a_subtree(table):
    for n in SIZES:
        row = _row(table, "hierarchical", n, "critical-node")
        assert 0.0 < row["aware_fraction"] < 1.0


def test_gossip_survives_any_failure(table):
    for n in SIZES:
        row = _row(table, "gossip", n, "critical-node")
        assert row["aware_fraction"] == 1.0
        assert row["mean_error"] < 0.15


def test_central_hub_is_the_hotspot(table):
    for n in SIZES:
        central = _row(table, "central", n, "none")["max_node_load"]
        tree = _row(table, "hierarchical", n, "none")["max_node_load"]
        assert central > tree
    # ... and the hot-spot grows with N while the tree's does not.
    small = _row(table, "central", SIZES[0], "none")["max_node_load"]
    large = _row(table, "central", SIZES[-1], "none")["max_node_load"]
    assert large > 2 * small
