"""Benchmark E1: levels-of-self-awareness ablation (DESIGN.md E1).

Regenerates the E1 table at reduced size and checks its shape: utility
should not degrade as levels are added, the static baseline should have
the worst trade-off management under change, and the goal level should
provide a clear jump once stakeholders change their minds mid-run.
"""

import pytest

from repro.experiments import e1_levels
from repro.experiments.harness import format_table

SEEDS = (0, 1)
STEPS = 1500


@pytest.fixture(scope="module")
def table():
    return e1_levels.run(seeds=SEEDS, steps=STEPS)


def test_e1_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e1_levels.run(seeds=(0,), steps=700),
        rounds=1, iterations=1)


def test_static_baseline_has_worst_phase_management(table):
    worst = table.column("worst_phase_utility")
    static = table.row_by("profile", "static")["worst_phase_utility"]
    assert static == min(worst)


def test_goal_awareness_jump(table):
    below = table.row_by("profile",
                         "stimulus+interaction+time")["mean_utility"]
    with_goal = table.row_by(
        "profile", "stimulus+interaction+time+goal")["mean_utility"]
    assert with_goal > below + 0.02


def test_full_stack_beats_stimulus_only(table):
    stim = table.row_by("profile", "stimulus")["mean_utility"]
    full = table.row_by(
        "profile", "stimulus+interaction+time+goal+meta")["mean_utility"]
    assert full > stim + 0.02


def test_meta_level_actually_switches(table):
    meta_row = table.row_by("profile",
                            "stimulus+interaction+time+goal+meta")
    assert meta_row["switches"] >= 1.0


def test_table_prints(table, capsys):
    print(format_table(table))
    out = capsys.readouterr().out
    assert "E1" in out and "static" in out
