"""Benchmark E8: meta-self-awareness under concept drift (DESIGN.md E8).

Shape checks: each fixed plasticity loses one era (stable loses the
turbulent one badly); the meta controllers match or beat the best fixed
learner overall, recover the stable learner's calm-era quality, and
actually switch strategies.
"""

import pytest

from repro.experiments import e8_meta

SEEDS = (0, 1, 2)
STEPS = 3000


@pytest.fixture(scope="module")
def table():
    return e8_meta.run(seeds=SEEDS, steps=STEPS)


def test_e8_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e8_meta.run(seeds=(0,), steps=1500),
        rounds=1, iterations=1)


def test_stable_loses_turbulent_era(table):
    stable = table.row_by("learner", "stable(fixed)")
    plastic = table.row_by("learner", "plastic(fixed)")
    assert stable["reward_turbulent"] < plastic["reward_turbulent"] - 0.1


def test_meta_matches_best_fixed_overall(table):
    best_fixed = max(
        table.row_by("learner", "stable(fixed)")["mean_reward"],
        table.row_by("learner", "plastic(fixed)")["mean_reward"])
    for name in ("meta(detector)", "meta(window)"):
        assert table.row_by("learner", name)["mean_reward"] >= \
            best_fixed - 0.02


def test_meta_recovers_calm_era_quality(table):
    plastic = table.row_by("learner", "plastic(fixed)")["reward_calm"]
    for name in ("meta(detector)", "meta(window)"):
        assert table.row_by("learner", name)["reward_calm"] >= plastic - 0.02


def test_meta_switches(table):
    for name in ("meta(detector)", "meta(window)"):
        assert table.row_by("learner", name)["switches"] >= 1.0


def test_regret_ordering(table):
    stable = table.row_by("learner", "stable(fixed)")["normalised_regret"]
    meta = min(table.row_by("learner", n)["normalised_regret"]
               for n in ("meta(detector)", "meta(window)"))
    assert meta < stable
