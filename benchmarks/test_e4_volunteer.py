"""Benchmark E4: volunteer composition awareness ordering (DESIGN.md E4).

Shape check: random < static-rank < stimulus-aware < self-aware on
request success rate, and the design-time ranking degrades late in the
run as reliabilities drift away from their measured values.
"""

import pytest

from repro.experiments import e4_volunteer

SEEDS = (0, 1, 2)
STEPS = 2000


@pytest.fixture(scope="module")
def table():
    return e4_volunteer.run(seeds=SEEDS, steps=STEPS)


def test_e4_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e4_volunteer.run(seeds=(0,), steps=1000),
        rounds=1, iterations=1)


def test_awareness_ordering(table):
    rates = {row["selector"]: row["success_rate"] for row in table.rows}
    assert rates["self-aware"] > rates["stimulus-aware"]
    assert rates["stimulus-aware"] > rates["static-rank"]
    assert rates["static-rank"] > rates["random"]


def test_self_aware_improvement_factor(table):
    assert table.row_by("selector", "self-aware")["vs_random"] > 1.4


def test_self_aware_keeps_its_edge_late(table):
    aware = table.row_by("selector", "self-aware")["late_success_rate"]
    stim = table.row_by("selector", "stimulus-aware")["late_success_rate"]
    assert aware > stim
