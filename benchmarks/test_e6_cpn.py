"""Benchmark E6: CPN routing resilience (DESIGN.md E6).

Shape checks: under the DoS attack the self-aware router keeps delivery
near its pre-attack level (static routing collapses), its attack-time
delivery sits close to the omniscient oracle's, and the steady-state
delay overhead vs static stays moderate (the price of adaptivity).
"""

import pytest

from repro.experiments import e6_cpn

SEEDS = (0, 1)
STEPS = 500


@pytest.fixture(scope="module")
def table():
    return e6_cpn.run(seeds=SEEDS, steps=STEPS)


def test_e6_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e6_cpn.run(seeds=(0,), n_nodes=20, steps=300),
        rounds=1, iterations=1)


def test_static_collapses_under_attack(table):
    static = table.row_by("router", "static")
    assert static["delivery_drop_under_attack"] > 0.08


def test_cpn_resists_attack(table):
    cpn = table.row_by("router", "cpn-self-aware")
    static = table.row_by("router", "static")
    assert cpn["delivery_attack"] > static["delivery_attack"] + 0.05
    assert cpn["delivery_drop_under_attack"] < 0.05


def test_cpn_close_to_oracle_under_attack(table):
    cpn = table.row_by("router", "cpn-self-aware")
    oracle = table.row_by("router", "oracle")
    assert cpn["delivery_attack"] >= oracle["delivery_attack"] - 0.05


def test_adaptivity_overhead_bounded(table):
    cpn = table.row_by("router", "cpn-self-aware")
    static = table.row_by("router", "static")
    assert cpn["delay"] < 1.6 * static["delay"]


@pytest.fixture(scope="module")
def qos_table():
    return e6_cpn.run_qos_classes(seeds=SEEDS, steps=400)


def _class_row(table, router, traffic_class):
    for row in table.rows:
        if row["router"] == router and row["traffic_class"] == traffic_class:
            return row
    raise KeyError((router, traffic_class))


def test_qos_classes_take_their_own_paths(qos_table):
    delay_row = _class_row(qos_table, "class-aware", "delay-sensitive")
    loss_row = _class_row(qos_table, "class-aware", "loss-sensitive")
    # The fast path is 2 delay units; the clean path ~6.
    assert delay_row["delay"] < 3.0
    assert loss_row["delay"] > 4.5
    assert loss_row["delivery"] > 0.97


def test_class_blind_compromises_someone(qos_table):
    blind_delay = _class_row(qos_table, "class-blind", "delay-sensitive")
    aware_delay = _class_row(qos_table, "class-aware", "delay-sensitive")
    blind_loss = _class_row(qos_table, "class-blind", "loss-sensitive")
    aware_loss = _class_row(qos_table, "class-aware", "loss-sensitive")
    # One class must be worse off under the blind router: either the
    # delay class pays extra latency or the loss class pays delivery.
    latency_penalty = blind_delay["delay"] > 1.5 * aware_delay["delay"]
    delivery_penalty = blind_loss["delivery"] < aware_loss["delivery"] - 0.03
    assert latency_penalty or delivery_penalty
