"""Benchmark E7: attention under an energy budget (DESIGN.md E7).

Shape checks: under a tight budget the salience (self-aware) policy
tracks the field at least as well as every unaware policy and far better
than naive truncation; with an ample budget the policies converge (when
everything is affordable, attention stops mattering).
"""

import pytest

from repro.experiments import e7_attention

SEEDS = (0, 1, 2)
BUDGETS = (2.0, 4.0, 8.0)


@pytest.fixture(scope="module")
def table():
    return e7_attention.run(seeds=SEEDS, budgets=BUDGETS, steps=400)


def test_e7_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e7_attention.run(seeds=(0,), budgets=(2.0,), steps=250),
        rounds=1, iterations=1)


def _row(table, policy, budget):
    for row in table.rows:
        if row["policy"] == policy and row["budget"] == budget:
            return row
    raise KeyError((policy, budget))


def test_salience_beats_truncation_under_constraint(table):
    for budget in (2.0, 4.0):
        sal = _row(table, "salience(self-aware)", budget)["error"]
        full = _row(table, "full(truncated)", budget)["error"]
        assert sal < 0.5 * full


def test_salience_at_least_matches_random(table):
    for budget in (2.0, 4.0):
        sal = _row(table, "salience(self-aware)", budget)["error"]
        rnd = _row(table, "random", budget)["error"]
        assert sal <= rnd * 1.1


def test_policies_converge_when_budget_ample(table):
    errors = [_row(table, p, 8.0)["error"]
              for p in ("round-robin", "random", "salience(self-aware)")]
    assert max(errors) < 2.5 * min(errors)


def test_error_decreases_with_budget(table):
    sal = [_row(table, "salience(self-aware)", b)["error"] for b in BUDGETS]
    assert sal[0] > sal[-1]


@pytest.fixture(scope="module")
def detection_table():
    return e7_attention.run_detection_table(seeds=(0, 1), budgets=(2.0,),
                                            steps=1200)


def test_deadline_policy_wins_detection(detection_table):
    rows = {r["policy"]: r for r in detection_table.rows}
    deadline = rows["deadline(mission-aware)"]["weighted_detection"]
    for other in ("round-robin", "random", "salience(tracking)"):
        assert deadline >= rows[other]["weighted_detection"] + 0.05


def test_tracking_salience_is_mismatched_to_events(detection_table):
    # The E7b lesson: the tracking policy does not dominate here the way
    # it does on the tracking mission -- attention must fit the mission.
    rows = {r["policy"]: r for r in detection_table.rows}
    salience = rows["salience(tracking)"]["weighted_detection"]
    deadline = rows["deadline(mission-aware)"]["weighted_detection"]
    assert salience < deadline
