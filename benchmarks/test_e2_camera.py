"""Benchmark E2: smart cameras learn to be different (DESIGN.md E2).

Shape checks: in every scenario the learned-heterogeneous network stays
within 15% of the best homogeneous assignment (which differs across
scenarios), no single homogeneous strategy does that everywhere, and the
learned network develops non-zero strategy diversity.
"""

import pytest

from repro.experiments import e2_camera

SEEDS = (0, 1)
STEPS = 500


@pytest.fixture(scope="module")
def table():
    return e2_camera.run(seeds=SEEDS, steps=STEPS)


def test_e2_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e2_camera.run(seeds=(0,), steps=250),
        rounds=1, iterations=1)


def _rows_for(table, controller):
    return [r for r in table.rows if r["controller"] == controller]


def test_self_aware_near_best_everywhere(table):
    for row in _rows_for(table, "self-aware"):
        assert row["vs_best_homog"] >= 0.85, row


def test_no_homogeneous_strategy_is_robust(table):
    from repro.smartcamera.strategies import ALL_STRATEGIES
    # At least one fixed strategy should collapse (<80% of best) in some
    # scenario -- the design-time choice is a gamble.
    collapses = [row for s in ALL_STRATEGIES
                 for row in _rows_for(table, s.value)
                 if row["vs_best_homog"] < 0.8]
    assert collapses


def test_learned_network_is_heterogeneous(table):
    for row in _rows_for(table, "self-aware"):
        assert row["diversity_bits"] > 0.5


def test_homogeneous_networks_have_zero_diversity(table):
    from repro.smartcamera.strategies import ALL_STRATEGIES
    for s in ALL_STRATEGIES:
        for row in _rows_for(table, s.value):
            assert row["diversity_bits"] == 0.0
