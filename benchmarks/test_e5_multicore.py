"""Benchmark E5: run-time multi-core management (DESIGN.md E5).

Shape checks: the self-aware governor matches or beats every baseline on
goal utility while keeping the thermal constraint satisfied (the
max-frequency design violates it), and in the goal-change table it is
the governor that actually reduces energy when asked to.
"""

import pytest

from repro.experiments import e5_multicore

SEEDS = (0, 1)
STEPS = 800


@pytest.fixture(scope="module")
def table():
    return e5_multicore.run(seeds=SEEDS, steps=STEPS)


@pytest.fixture(scope="module")
def change_table():
    return e5_multicore.run_goal_change(seeds=(0,), steps=600)


def test_e5_benchmark(benchmark):
    benchmark.pedantic(
        lambda: e5_multicore.run(seeds=(0,), steps=400),
        rounds=1, iterations=1)


def test_self_aware_utility_competitive(table):
    best_baseline = max(row["utility"] for row in table.rows
                        if row["governor"] != "self-aware")
    aware = table.row_by("governor", "self-aware")["utility"]
    assert aware >= 0.97 * best_baseline


def test_self_aware_respects_thermal_constraint(table):
    aware = table.row_by("governor", "self-aware")
    assert aware["thermal_violation_rate"] <= 0.01
    assert aware["throttle_fraction"] <= 0.01


def test_static_max_is_thermally_dirty_or_wasteful(table):
    static = table.row_by("governor", "static-max")
    aware = table.row_by("governor", "self-aware")
    assert (static["thermal_violation_rate"] > aware["thermal_violation_rate"]
            or static["energy"] > 1.2 * aware["energy"])


def test_goal_change_energy_reduction(change_table):
    aware = change_table.row_by("governor", "self-aware")
    static = change_table.row_by("governor", "static-max")
    assert aware["energy_reduction"] > static["energy_reduction"] + 0.1
    assert aware["energy_after"] < aware["energy_before"]
