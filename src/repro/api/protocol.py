"""The uniform simulator protocol every substrate adapts to.

Before this facade each substrate exposed its own ad-hoc entry point
(``run_self_aware``, ``run_autoscaling``, ``run_governor``, ...) with a
private calling convention, which made cross-substrate machinery -- the
fault injector, the resilience sweep, generic tooling -- impossible to
write once.  :class:`Simulator` is the common surface:

``reset(seed)``
    (Re)build the simulation from its config for one run.  Adapters
    construct the underlying substrate exactly as the legacy entry
    points did, so a reset-then-run is byte-identical to the old path.
``step()``
    Advance one tick; returns the substrate's native step record.
``snapshot()``
    A JSON-safe view of current state (for debugging and tooling).
``metrics()``
    Headline aggregate metrics over the steps taken so far.

Fault plans attach at construction through this protocol: every adapter
accepts ``faults=FaultPlan(...)`` and threads the resulting injector
into the substrate's step function.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable


@runtime_checkable
class Simulator(Protocol):
    """What every adapted substrate simulation offers."""

    def reset(self, seed: Optional[int] = None) -> "Simulator":
        """Rebuild the simulation (optionally reseeded); returns self."""
        ...

    def step(self) -> Any:
        """Advance one tick; returns the substrate's step record."""
        ...

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of the current simulation state."""
        ...

    def metrics(self) -> Dict[str, float]:
        """Aggregate metrics over the steps taken since the last reset."""
        ...
