"""Normalised simulator configs: frozen dataclasses, keyword-only fields.

One ``*Config`` per substrate, all following the same conventions:

* **frozen** -- a config is a value, shareable between shards and
  hashable into cache keys; mutation bugs are impossible.
* **keyword-only** -- call sites read as documentation and survive
  field reordering.
* **JSON-safe fields** -- strings, numbers, tuples; behavioural choices
  (which controller, which scaler) are named by string rather than
  passed as live objects, so a config can ride through the parallel
  engine untouched.  Adapters additionally accept live factories for
  the rich cases the experiments need.

The mapping from each legacy entry point's kwargs to these fields is
tabulated in ``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True, kw_only=True)
class CameraConfig:
    """Smart-camera network run (legacy: ``CameraSimConfig`` + the
    ``run_homogeneous``/``run_self_aware`` split, now the ``controller``
    field)."""

    rows: int = 3
    cols: int = 3
    radius: float = 0.28
    n_objects: int = 8
    object_speed: float = 0.02
    churn_rate: float = 0.02
    steps: int = 500
    comm_cost_weight: float = 0.01
    auction_threshold: float = 0.3
    detection_rate: float = 0.15
    random_placement: bool = False
    seed: int = 0
    comm_weight_breaks: Optional[Tuple[Tuple[float, float], ...]] = None
    #: ``"self_aware"`` (learning controllers) or ``"fixed"`` (every
    #: camera pinned to ``strategy``).
    controller: str = "self_aware"
    #: Strategy name for ``controller="fixed"`` (a
    #: :class:`~repro.smartcamera.strategies.Strategy` value name).
    strategy: Optional[str] = None
    epsilon: float = 0.1
    discount: float = 0.995


@dataclass(frozen=True, kw_only=True)
class CloudConfig:
    """Autoscaled cluster run (legacy: ``run_autoscaling`` +
    ``cluster_kwargs`` dict + ad-hoc demand closures)."""

    steps: int = 600
    seed: int = 0
    # Cluster (legacy cluster_kwargs)
    capacity_per_server: float = 10.0
    boot_delay: int = 5
    min_servers: int = 1
    max_servers: int = 40
    backlog_limit: float = 400.0
    initial_servers: int = 4
    cost_per_server: float = 1.0
    #: ``"self_aware"``, ``"reactive"`` or ``"static"``.
    scaler: str = "self_aware"
    static_servers: int = 4
    # Goal (legacy make_cloud_goal kwargs)
    qos_weight: float = 0.7
    cost_weight: float = 0.3
    # Demand (legacy demand_fn closure, as a seasonal workload)
    base_rate: float = 60.0
    seasonal_amplitude: float = 0.5
    period: float = 200.0
    noise_std: float = 0.05
    #: Named adversarial scenario (:data:`repro.envgen.SCENARIOS`)
    #: multiplying the demand rate; ``""`` keeps the legacy seasonal
    #: demand untouched.
    scenario: str = ""


@dataclass(frozen=True, kw_only=True)
class MulticoreConfig:
    """Heterogeneous multicore run (legacy: ``run_governor`` with
    ``make_workload``/``make_platform`` kwargs)."""

    steps: int = 600
    seed: int = 0
    rate: float = 1.2
    phase_length: int = 250
    n_big: int = 2
    n_little: int = 4
    critical_temp: float = 85.0
    #: ``"self_aware"``, ``"ondemand"`` or ``"static"``.
    governor: str = "self_aware"
    epsilon: float = 0.08


@dataclass(frozen=True, kw_only=True)
class CPNConfig:
    """Cognitive packet network run (legacy: ``run_routing`` over a
    hand-built topology/router/flows)."""

    steps: int = 500
    seed: int = 0
    n_nodes: int = 30
    n_flows: int = 6
    smart_packets_per_flow: int = 2
    #: ``"self_aware"`` (CPN measuring router), ``"static"`` or
    #: ``"oracle"``.
    router: str = "self_aware"
    epsilon: float = 0.05
    n_disturbances: int = 0
    disturbance_horizon: float = 1000.0


@dataclass(frozen=True, kw_only=True)
class SwarmConfig:
    """Swarm coverage mission (legacy: ``SwarmMissionConfig`` +
    ``run_mission`` with a controller object)."""

    n_robots: int = 9
    steps: int = 800
    events_per_step: float = 3.0
    hotspot_fraction: float = 0.7
    n_hotspots: int = 2
    shift_fracs: Tuple[float, ...] = (0.4,)
    failure_fracs: Tuple[Tuple[float, int], ...] = ((0.7, 0), (0.7, 1))
    seed: int = 0
    #: ``"self_aware"``, ``"static"`` or ``"patrol"``.
    controller: str = "self_aware"


@dataclass(frozen=True, kw_only=True)
class SensornetConfig:
    """Energy-budgeted sensing run (legacy: ``run_sensing`` over a
    hand-built field/attention pair)."""

    steps: int = 500
    seed: int = 0
    n_channels: int = 8
    budget: float = 3.0
    #: ``"salience"``, ``"round_robin"``, ``"random"`` or ``"full"``.
    attention: str = "salience"
    staleness_scale: float = 1.0


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Serving-layer control loop run (:mod:`repro.serve.simulation`):
    Poisson request arrivals against an admission-gated worker pool,
    governed by either the self-aware :class:`~repro.serve.governor.ServeGovernor`
    or a static design-time configuration."""

    steps: int = 400
    seed: int = 0
    #: Mean offered load in requests per tick (Poisson draws per tick).
    offered_load: float = 12.0
    #: Optional seasonal modulation of the offered load (0 disables).
    spike_amplitude: float = 0.0
    period: float = 200.0
    #: Mean service demand per request, in abstract work units.
    mean_service: float = 1.0
    #: Work units one worker serves per tick.
    per_worker_rate: float = 4.0
    #: ``"self_aware"`` (ServeGovernor) or ``"static"``.
    governor: str = "self_aware"
    static_workers: int = 2
    min_workers: int = 1
    max_workers: int = 16
    #: The p95-latency SLO, in ticks; also the goodput deadline.
    slo_p95: float = 8.0
    #: Governor cadence: one tick() every this many simulation ticks.
    govern_every: int = 4
    #: Scale-up lag: ordered workers come online this many ticks later.
    boot_delay: int = 2
    admit_headroom: float = 1.25
    #: Ticks excluded from metrics() (the governor's learning ramp).
    warmup: int = 80
    #: Window (ticks) for the sensed arrival rate.
    stats_window: int = 25
    #: Window (completions) for the sensed p95 latency.
    latency_window: int = 200
    epsilon: float = 0.02
    #: Named adversarial scenario (:data:`repro.envgen.SCENARIOS`)
    #: multiplying the offered load per tick; a correlated-failure
    #: scenario also arms its fault plan (unless explicit faults were
    #: passed to the simulation).  ``""`` keeps legacy traffic untouched.
    scenario: str = ""


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Sharded serving cluster run (:mod:`repro.serve.cluster`): ``nodes``
    cooperating serving nodes behind a consistent-hash ring, sharing a
    cluster-wide worker budget.  The ``governor`` arm selects how that
    budget is governed: ``"collective"`` gossips each node's learned
    self-model and splits the budget by believed load (the paper's
    collective self-awareness level), ``"per_node"`` gives each node an
    isolated self-aware governor capped at its fair share, ``"static"``
    fixes every pool at design time."""

    steps: int = 400
    seed: int = 0
    nodes: int = 4
    #: Client sessions, placed on the ring by id.
    sessions: int = 16
    #: Total offered load across the cluster, requests per tick.
    offered_load: float = 40.0
    #: ``"skewed"`` (Zipf session popularity), ``"flash"`` (uniform with
    #: a flash crowd on a few sessions) or ``"uniform"``.
    traffic: str = "skewed"
    #: Zipf exponent for the skewed tier (rank-j weight ~ 1/(j+1)^s).
    zipf_s: float = 1.6
    #: Flash-crowd window: at ``flash_at`` the ``flash_sessions``
    #: hottest sessions multiply their weight by ``flash_factor``
    #: for ``flash_len`` ticks.
    flash_at: int = 160
    flash_len: int = 120
    flash_factor: float = 8.0
    flash_sessions: int = 2
    mean_service: float = 1.0
    per_worker_rate: float = 4.0
    #: ``"collective"``, ``"per_node"`` or ``"static"``.
    governor: str = "collective"
    #: Cluster-wide worker budget the arms split.
    worker_budget: int = 12
    min_workers: int = 1
    slo_p95: float = 8.0
    govern_every: int = 4
    boot_delay: int = 2
    admit_headroom: float = 1.25
    #: Gossip staleness bound (ticks); views older than this are ignored
    #: and the collective arm falls back to its fair-share cap.
    gossip_ttl: float = 12.0
    #: Session rebalancing (collective arm only): every
    #: ``rebalance_every`` ticks a node whose believed load exceeds
    #: ``hot_utilisation`` x capacity sheds its second-hottest session
    #: to the node with most headroom; the moving session's arrivals
    #: are dropped for ``migration_freeze`` ticks (the migration cost).
    rebalance: bool = True
    rebalance_every: int = 8
    hot_utilisation: float = 1.05
    migration_freeze: int = 2
    #: Virtual-node points per node on the placement ring.
    ring_replicas: int = 64
    warmup: int = 80
    stats_window: int = 25
    latency_window: int = 200
    epsilon: float = 0.02
    #: Named adversarial scenario (:data:`repro.envgen.SCENARIOS`)
    #: multiplying the cluster-wide offered load per tick; its session
    #: mix, when it defines one, overrides the ``traffic`` tier's.
    #: ``""`` keeps the legacy tiers byte-identical.
    scenario: str = ""
