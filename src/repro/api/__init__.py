"""``repro.api`` -- the one façade over every substrate simulation.

Use the protocol-shaped adapters instead of the per-substrate
``run_*`` helpers (which are now deprecation shims over these):

>>> from repro.api import CameraSimulator, CameraConfig
>>> sim = CameraSimulator(CameraConfig(steps=50, seed=3))
>>> result = sim.run()

Every adapter satisfies :class:`Simulator` --
``reset(seed)/step()/snapshot()/metrics()`` -- takes a frozen
keyword-only config, and accepts ``faults=FaultPlan(...)`` to attach
the deterministic fault injector (see :mod:`repro.faults`).
"""

from .adapters import (SIMULATORS, CameraSimulator, CloudSimulator,
                       ClusterSimulator, CPNSimulator, MulticoreSimulator,
                       SensornetSimulator, ServeSimulator, SwarmSimulator,
                       make_simulator)
from .configs import (CameraConfig, CloudConfig, ClusterConfig, CPNConfig,
                      MulticoreConfig, SensornetConfig, ServeConfig,
                      SwarmConfig)
from .protocol import Simulator

__all__ = [
    "Simulator",
    "SIMULATORS",
    "make_simulator",
    "CameraConfig", "CameraSimulator",
    "CloudConfig", "CloudSimulator",
    "MulticoreConfig", "MulticoreSimulator",
    "CPNConfig", "CPNSimulator",
    "SwarmConfig", "SwarmSimulator",
    "SensornetConfig", "SensornetSimulator",
    "ServeConfig", "ServeSimulator",
    "ClusterConfig", "ClusterSimulator",
]
