"""Adapters: every substrate simulation behind the one Simulator protocol.

Each adapter owns the substrate's canonical stepping loop (the legacy
``run_*`` entry points are now deprecation shims that delegate here) and
follows one contract:

* construction takes a frozen keyword-only ``*Config`` (declarative
  path) plus optional live objects -- a controller factory, a scaler, a
  router -- for the rich cases experiments need (expert path);
* ``reset(seed)`` rebuilds the underlying simulation exactly as the
  legacy entry point did, so results are byte-identical to the old
  call; live objects passed in are *reused* across resets (pass
  factories or configs when true re-runs are needed);
* ``faults=`` accepts a :class:`~repro.faults.plan.FaultPlan` (a fresh
  injector is derived per reset, seeded by the run seed) or a prebuilt
  :class:`~repro.faults.injector.FaultInjector`; inert plans resolve to
  no injector at all, keeping the disabled path instruction-identical
  to the unfaulted code.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from ..faults.injector import FaultInjector, make_injector
from ..faults.plan import FaultPlan
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .configs import (CameraConfig, CloudConfig, ClusterConfig, CPNConfig,
                      MulticoreConfig, SensornetConfig, ServeConfig,
                      SwarmConfig)

Faults = Union[FaultPlan, FaultInjector, None]


def _resolve_injector(faults: Faults, seed: int) -> Optional[FaultInjector]:
    """A per-run injector: plans are instantiated, injectors passed through."""
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    return make_injector(faults, run_seed=seed)


# ---------------------------------------------------------------------------
# Smart-camera network


class CameraSimulator:
    """The smart-camera network behind the :class:`Simulator` protocol."""

    def __init__(self, config: Optional[CameraConfig] = None, *,
                 sim_config: Optional[Any] = None,
                 controller_factory: Optional[Callable] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else CameraConfig()
        self._sim_config = sim_config  # expert path: a ready CameraSimConfig
        self._controller_factory = controller_factory
        self._faults = faults
        self.reset(self._seed_default())

    def _seed_default(self) -> int:
        if self._sim_config is not None:
            return self._sim_config.seed
        return self.config.seed

    def _factory(self) -> Callable:
        from ..smartcamera.controller import (FixedStrategyController,
                                              SelfAwareStrategyController)
        from ..smartcamera.strategies import Strategy
        if self._controller_factory is not None:
            return self._controller_factory
        cfg = self.config
        if cfg.controller == "fixed":
            if cfg.strategy is None:
                raise ValueError("controller='fixed' needs a strategy name")
            strategy = Strategy[cfg.strategy.upper()] \
                if cfg.strategy.upper() in Strategy.__members__ \
                else Strategy(cfg.strategy)
            return lambda cid, rng: FixedStrategyController(cid, strategy)
        if cfg.controller == "self_aware":
            return lambda cid, rng: SelfAwareStrategyController(
                cid, epsilon=cfg.epsilon, discount=cfg.discount, rng=rng)
        raise ValueError(f"unknown camera controller {cfg.controller!r}")

    def reset(self, seed: Optional[int] = None) -> "CameraSimulator":
        from ..smartcamera.sim import CameraSimConfig, CameraSimulation
        seed = self._seed_default() if seed is None else seed
        if self._sim_config is not None:
            sim_config = self._sim_config
        else:
            cfg = self.config
            breaks = (list(map(tuple, cfg.comm_weight_breaks))
                      if cfg.comm_weight_breaks is not None else None)
            sim_config = CameraSimConfig(
                rows=cfg.rows, cols=cfg.cols, radius=cfg.radius,
                n_objects=cfg.n_objects, object_speed=cfg.object_speed,
                churn_rate=cfg.churn_rate, steps=cfg.steps,
                comm_cost_weight=cfg.comm_cost_weight,
                auction_threshold=cfg.auction_threshold,
                detection_rate=cfg.detection_rate,
                random_placement=cfg.random_placement, seed=seed,
                comm_weight_breaks=breaks)
        self._sim = CameraSimulation(
            sim_config, self._factory(),
            faults=_resolve_injector(self._faults, seed))
        self._t = 0.0
        return self

    def step(self):
        record = self._sim.step(self._t)
        self._t += 1.0
        return record

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "smartcamera", "time": self._t,
                "owned_objects": len(self._sim.ownership),
                "n_objects": len(self._sim.population),
                "n_cameras": len(self._sim.controllers),
                "steps_taken": len(self._sim.records)}

    def metrics(self) -> Dict[str, float]:
        result = self.result()
        return {"mean_tracking_utility": result.mean_tracking_utility(),
                "mean_messages": result.mean_messages(),
                "efficiency": result.efficiency(),
                "diversity_bits": result.diversity_bits(),
                "lost_fraction": result.lost_fraction()}

    def result(self):
        from ..smartcamera.sim import CameraSimResult
        return CameraSimResult(
            records=self._sim.records,
            controllers=list(self._sim.controllers.values()),
            market=self._sim.market,
            comm_cost_weight=self._sim.config.comm_cost_weight)

    def run(self):
        for _ in range(self._sim.config.steps):
            self.step()
        return self.result()


# ---------------------------------------------------------------------------
# Elastic cloud cluster


class CloudSimulator:
    """The autoscaled cluster behind the :class:`Simulator` protocol.

    Owns the decide / scale / serve loop ``run_autoscaling`` used to
    run, fault hooks included: ``workload_spike`` multiplies offered
    demand, ``crash`` kills the spec's fraction of active servers when
    its window opens (recovery pays the boot delay),
    ``sensor_noise``/``sensor_dropout`` corrupt the telemetry the scaler
    sees, and ``clock_skew`` shifts the scaler's -- never the
    cluster's -- clock.
    """

    def __init__(self, config: Optional[CloudConfig] = None, *,
                 scaler: Optional[Any] = None,
                 scaler_factory: Optional[Callable[[int], Any]] = None,
                 demand_fn: Optional[Callable[[float], float]] = None,
                 goal: Optional[Any] = None,
                 cluster_kwargs: Optional[Dict] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else CloudConfig()
        self._scaler_given = scaler
        self._scaler_factory = scaler_factory
        self._demand_fn_given = demand_fn
        self._goal_given = goal
        self._cluster_kwargs = cluster_kwargs
        self._faults = faults
        self.reset(self.config.seed)

    def goal(self):
        from ..cloud.autoscaler import make_cloud_goal
        if self._goal_given is not None:
            return self._goal_given
        cfg = self.config
        return make_cloud_goal(qos_weight=cfg.qos_weight,
                               cost_weight=cfg.cost_weight,
                               max_servers=cfg.max_servers)

    def _make_scaler(self, seed: int):
        from ..cloud.autoscaler import (ReactiveScaler, SelfAwareScaler,
                                        StaticScaler)
        if self._scaler_given is not None:
            return self._scaler_given
        if self._scaler_factory is not None:
            return self._scaler_factory(seed)
        cfg = self.config
        if cfg.scaler == "self_aware":
            return SelfAwareScaler(self.goal(), boot_delay=cfg.boot_delay,
                                   max_servers=cfg.max_servers,
                                   capacity_guess=cfg.capacity_per_server)
        if cfg.scaler == "reactive":
            return ReactiveScaler(initial=cfg.initial_servers)
        if cfg.scaler == "static":
            return StaticScaler(cfg.static_servers)
        raise ValueError(f"unknown cloud scaler {cfg.scaler!r}")

    def _make_demand(self, seed: int) -> Callable[[float], float]:
        from ..envgen.workloads import RequestRateWorkload
        if self._demand_fn_given is not None:
            return self._demand_fn_given
        cfg = self.config
        workload = RequestRateWorkload(
            base_rate=cfg.base_rate,
            seasonal_amplitude=cfg.seasonal_amplitude, period=cfg.period,
            noise_std=cfg.noise_std, rng=np.random.default_rng(seed))
        if cfg.scenario:
            from ..envgen.scenario import make_scenario
            track = make_scenario(cfg.scenario).render(cfg.steps, seed=seed)
            return lambda t: workload.rate(t) * track.rate_at(t)
        return workload.rate

    def reset(self, seed: Optional[int] = None) -> "CloudSimulator":
        from ..cloud.cluster import ServiceCluster
        seed = self.config.seed if seed is None else seed
        cfg = self.config
        kwargs = self._cluster_kwargs
        if kwargs is None:
            kwargs = {"capacity_per_server": cfg.capacity_per_server,
                      "boot_delay": cfg.boot_delay,
                      "min_servers": cfg.min_servers,
                      "max_servers": cfg.max_servers,
                      "backlog_limit": cfg.backlog_limit,
                      "initial_servers": cfg.initial_servers,
                      "cost_per_server": cfg.cost_per_server}
        self._cluster = ServiceCluster(**kwargs)
        self._scaler = self._make_scaler(seed)
        self._demand_fn = self._make_demand(seed)
        self._injector = _resolve_injector(self._faults, seed)
        self._metrics = None
        self.history: List[Any] = []
        self._t = 0.0
        return self

    def step(self):
        from ..cloud.autoscaler import _sensed_metrics
        now = self._t
        faults = self._injector
        sensed = self._metrics
        decide_time = now
        if faults is not None:
            faults.begin_step(now)
            if faults.just_started("crash"):
                frac = min(1.0, sum(s.intensity
                                    for s in faults.active("crash")))
                if frac > 0.0 and self._cluster.n_active > 0:
                    self._cluster.fail_servers(
                        max(1, int(round(frac * self._cluster.n_active))))
            if self._metrics is not None:
                sensed = _sensed_metrics(self._metrics, faults)
            decide_time = faults.perceived_time(now, target="scaler")
        target = self._scaler.decide(decide_time, sensed)
        self._cluster.request_scale(target)
        demand = max(0.0, self._demand_fn(now))
        if faults is not None:
            demand *= faults.demand_factor()
        self._metrics = self._cluster.step(now, demand)
        self.history.append(self._metrics)
        self._t += 1.0
        return self._metrics

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "cloud", "time": self._t,
                "n_active": self._cluster.n_active,
                "n_booting": self._cluster.n_booting,
                "backlog": self._cluster.backlog,
                "steps_taken": len(self.history)}

    def metrics(self) -> Dict[str, float]:
        if not self.history:
            return {"mean_qos": math.nan, "mean_cost": math.nan,
                    "mean_utility": math.nan, "dropped": 0.0}
        goal = self.goal()
        n = len(self.history)
        return {
            "mean_qos": sum(m.qos for m in self.history) / n,
            "mean_cost": sum(m.cost for m in self.history) / n,
            "mean_utility": sum(goal.utility(m.as_dict())
                                for m in self.history) / n,
            "dropped": sum(m.dropped for m in self.history)}

    def run(self) -> List[Any]:
        for _ in range(self.config.steps):
            self.step()
        return self.history


# ---------------------------------------------------------------------------
# Heterogeneous multicore


class MulticoreSimulator:
    """The multicore platform/governor pair behind the protocol.

    Owns the submit / manage / step / feedback loop ``run_governor``
    used to run, fault hooks included: ``workload_spike`` submits extra
    arrival batches, ``clock_skew`` shifts the governor's view of time,
    ``sensor_dropout`` loses the telemetry the governor would have
    managed and learned from this step.
    """

    def __init__(self, config: Optional[MulticoreConfig] = None, *,
                 governor: Optional[Any] = None,
                 governor_factory: Optional[Callable[[int], Any]] = None,
                 workload: Optional[Any] = None,
                 platform: Optional[Any] = None,
                 on_step: Optional[Callable[[float], None]] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else MulticoreConfig()
        self._governor_given = governor
        self._governor_factory = governor_factory
        self._workload_given = workload
        self._platform_given = platform
        self._on_step = on_step
        self._faults = faults
        self.reset(self.config.seed)

    def _make_governor(self, seed: int):
        from ..multicore import make_multicore_goal
        from ..multicore.governor import (OndemandGovernor, SelfAwareGovernor,
                                          StaticGovernor)
        if self._governor_given is not None:
            return self._governor_given
        if self._governor_factory is not None:
            return self._governor_factory(seed)
        cfg = self.config
        if cfg.governor == "self_aware":
            return SelfAwareGovernor(make_multicore_goal(),
                                     epsilon=cfg.epsilon,
                                     rng=np.random.default_rng(seed))
        if cfg.governor == "ondemand":
            return OndemandGovernor()
        if cfg.governor == "static":
            return StaticGovernor()
        raise ValueError(f"unknown governor {cfg.governor!r}")

    def reset(self, seed: Optional[int] = None) -> "MulticoreSimulator":
        from ..multicore.sim import make_platform, make_workload
        seed = self.config.seed if seed is None else seed
        cfg = self.config
        self._workload = (self._workload_given
                          if self._workload_given is not None
                          else make_workload(rate=cfg.rate,
                                             phase_length=cfg.phase_length,
                                             seed=seed))
        self._platform = (self._platform_given
                          if self._platform_given is not None
                          else make_platform(n_big=cfg.n_big,
                                             n_little=cfg.n_little,
                                             critical_temp=cfg.critical_temp))
        self._governor = self._make_governor(seed)
        self._injector = _resolve_injector(self._faults, seed)
        self._metrics = None
        self.history: List[Any] = []
        self._t = 0.0
        return self

    def step(self):
        now = self._t
        faults = self._injector
        if self._on_step is not None:
            self._on_step(now)
        if faults is None:
            self._platform.submit(self._workload.arrivals(now))
            self._governor.manage(now, self._platform, self._metrics)
            metrics = self._platform.step(now)
            self._governor.feedback(metrics)
        else:
            faults.begin_step(now)
            for _ in range(faults.spiked_count(1)):
                self._platform.submit(self._workload.arrivals(now))
            sensed = self._metrics
            if sensed is not None and faults.dropped(
                    target="multicore.metrics"):
                sensed = None
            self._governor.manage(
                faults.perceived_time(now, target="governor"),
                self._platform, sensed)
            metrics = self._platform.step(now)
            if not faults.dropped(target="multicore.feedback"):
                self._governor.feedback(metrics)
        self._metrics = metrics
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="multicore").increment()
            if metrics.throttled_cores > 0:
                obs_metrics.counter("multicore.throttled_steps").increment()
            obs_metrics.histogram("multicore.throughput").observe(
                metrics.throughput)
            obs_metrics.gauge("multicore.max_temperature").set(
                metrics.max_temperature)
            obs_events.emit("multicore.step", time=now,
                            throughput=metrics.throughput,
                            energy=metrics.energy,
                            max_temperature=metrics.max_temperature,
                            throttled_cores=metrics.throttled_cores,
                            queue_length=metrics.queue_length)
        self.history.append(metrics)
        self._t += 1.0
        return metrics

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "multicore", "time": self._t,
                "queue_length": (self._metrics.queue_length
                                 if self._metrics is not None else 0.0),
                "steps_taken": len(self.history)}

    def metrics(self) -> Dict[str, float]:
        result = self.result()
        return {"mean_throughput": result.mean_throughput(),
                "mean_energy": result.mean_energy(),
                "throttle_fraction": result.throttle_fraction(),
                "mean_queue": result.mean_queue()}

    def result(self):
        from ..multicore.sim import GovernorRunResult
        return GovernorRunResult(history=self.history,
                                 platform=self._platform)

    def run(self):
        for _ in range(self.config.steps):
            self.step()
        return self.result()


# ---------------------------------------------------------------------------
# Cognitive packet network


class CPNSimulator:
    """The packet-routing substrate behind the protocol."""

    def __init__(self, config: Optional[CPNConfig] = None, *,
                 network: Optional[Any] = None,
                 router: Optional[Any] = None,
                 router_factory: Optional[Callable] = None,
                 flows: Optional[List[Any]] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else CPNConfig()
        self._network_given = network
        self._router_given = router
        self._router_factory = router_factory
        self._flows_given = flows
        self._faults = faults
        self.reset(self.config.seed)

    def _make_router(self, network: Any, seed: int):
        from ..cpn.routing import CPNRouter, OracleRouter, StaticRouter
        if self._router_given is not None:
            return self._router_given
        if self._router_factory is not None:
            return self._router_factory(network, seed)
        cfg = self.config
        if cfg.router == "self_aware":
            return CPNRouter(network, epsilon=cfg.epsilon,
                             rng=np.random.default_rng(seed + 1))
        if cfg.router == "static":
            return StaticRouter(network)
        if cfg.router == "oracle":
            return OracleRouter(network)
        raise ValueError(f"unknown router {cfg.router!r}")

    def reset(self, seed: Optional[int] = None) -> "CPNSimulator":
        from ..cpn.sim import default_flows
        from ..cpn.topology import CPNetwork
        seed = self.config.seed if seed is None else seed
        cfg = self.config
        if self._network_given is not None:
            self.network = self._network_given
        else:
            self.network = CPNetwork.random_geometric(n=cfg.n_nodes,
                                                      seed=seed)
            if cfg.n_disturbances > 0:
                self.network.schedule_random_disturbances(
                    horizon=cfg.disturbance_horizon,
                    count=cfg.n_disturbances)
        self._router = self._make_router(self.network, seed)
        self._flows = (self._flows_given if self._flows_given is not None
                       else default_flows(self.network,
                                          n_flows=cfg.n_flows, seed=seed))
        self._injector = _resolve_injector(self._faults, seed)
        self.records: List[Any] = []
        self._t = 0.0
        return self

    def step(self):
        from ..cpn.sim import routing_step
        record = routing_step(
            self.network, self._router, self._flows, self._t,
            smart_packets_per_flow=self.config.smart_packets_per_flow,
            faults=self._injector)
        self.records.append(record)
        self._t += 1.0
        return record

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "cpn", "time": self._t,
                "n_nodes": len(self.network.nodes()),
                "n_flows": len(self._flows),
                "steps_taken": len(self.records)}

    def metrics(self) -> Dict[str, float]:
        result = self.result()
        return {"delivery_rate": result.delivery_rate(),
                "mean_delay": result.mean_delay()}

    def result(self):
        from ..cpn.sim import RoutingResult
        return RoutingResult(records=self.records)

    def run(self):
        for _ in range(self.config.steps):
            self.step()
        return self.result()


# ---------------------------------------------------------------------------
# Robot swarm


class SwarmSimulator:
    """The swarm coverage mission behind the protocol."""

    def __init__(self, config: Optional[SwarmConfig] = None, *,
                 mission_config: Optional[Any] = None,
                 controller: Optional[Any] = None,
                 controller_factory: Optional[Callable[[int], Any]] = None,
                 use_grid: Optional[bool] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else SwarmConfig()
        self._mission_config = mission_config  # expert: SwarmMissionConfig
        self._controller_given = controller
        self._controller_factory = controller_factory
        self._use_grid = use_grid
        self._faults = faults
        seed = (mission_config.seed if mission_config is not None
                else self.config.seed)
        self.reset(seed)

    def _make_controller(self, seed: int):
        from ..swarm.robots import (RandomPatrol, SelfAwareSwarm,
                                    StaticFormation)
        if self._controller_given is not None:
            return self._controller_given
        if self._controller_factory is not None:
            return self._controller_factory(seed)
        cfg = self.config
        if cfg.controller == "self_aware":
            return SelfAwareSwarm(rng=np.random.default_rng(seed + 1))
        if cfg.controller == "static":
            return StaticFormation(cfg.n_robots)
        if cfg.controller == "patrol":
            return RandomPatrol(rng=np.random.default_rng(seed + 1))
        raise ValueError(f"unknown swarm controller {cfg.controller!r}")

    def reset(self, seed: Optional[int] = None) -> "SwarmSimulator":
        from ..swarm.sim import SwarmMission, SwarmMissionConfig
        seed = self.config.seed if seed is None else seed
        cfg = self.config
        if self._mission_config is not None:
            mission_config = self._mission_config
        else:
            mission_config = SwarmMissionConfig(
                n_robots=cfg.n_robots, steps=cfg.steps,
                events_per_step=cfg.events_per_step,
                hotspot_fraction=cfg.hotspot_fraction,
                n_hotspots=cfg.n_hotspots,
                shift_fracs=tuple(cfg.shift_fracs),
                failure_fracs=tuple(map(tuple, cfg.failure_fracs)),
                seed=seed)
        self._mission = SwarmMission(
            self._make_controller(seed), mission_config,
            use_grid=self._use_grid,
            faults=_resolve_injector(self._faults, seed))
        self._t = 0.0
        return self

    def step(self):
        record = self._mission.step(self._t)
        self._t += 1.0
        return record

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "swarm", "time": self._t,
                "alive": sum(1 for r in self._mission.robots if r.alive),
                "n_robots": len(self._mission.robots),
                "steps_taken": len(self._mission.records)}

    def metrics(self) -> Dict[str, float]:
        return {"detection_rate": self.result().detection_rate()}

    def result(self):
        from ..swarm.sim import SwarmRunResult
        return SwarmRunResult(records=self._mission.records)

    def run(self):
        for _ in range(self._mission.config.steps):
            self.step()
        return self.result()


# ---------------------------------------------------------------------------
# Sensor network


class SensornetSimulator:
    """The energy-budgeted sensing node behind the protocol."""

    def __init__(self, config: Optional[SensornetConfig] = None, *,
                 field: Optional[Any] = None,
                 attention: Optional[Any] = None,
                 rng: Optional[np.random.Generator] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else SensornetConfig()
        self._field_given = field
        self._attention_given = attention
        self._rng_given = rng
        self._faults = faults
        self.reset(self.config.seed)

    def _make_attention(self, seed: int):
        from ..core.attention import (FullAttention, RandomAttention,
                                      RoundRobinAttention, SalienceAttention)
        if self._attention_given is not None:
            return self._attention_given
        cfg = self.config
        if cfg.attention == "salience":
            return SalienceAttention(staleness_scale=cfg.staleness_scale)
        if cfg.attention == "round_robin":
            return RoundRobinAttention()
        if cfg.attention == "random":
            return RandomAttention(rng=np.random.default_rng(seed + 1))
        if cfg.attention == "full":
            return FullAttention()
        raise ValueError(f"unknown attention policy {cfg.attention!r}")

    def reset(self, seed: Optional[int] = None) -> "SensornetSimulator":
        from ..sensornet.field import ChannelField, mixed_channel_specs
        from ..sensornet.node import SensingNode
        seed = self.config.seed if seed is None else seed
        cfg = self.config
        if self._field_given is not None:
            field = self._field_given
        else:
            field = ChannelField(mixed_channel_specs(cfg.n_channels,
                                                     seed=seed),
                                 rng=np.random.default_rng(seed))
        rng = (self._rng_given if self._rng_given is not None
               else np.random.default_rng(seed + 2))
        self._node = SensingNode(field, self._make_attention(seed),
                                 budget=cfg.budget, rng=rng,
                                 faults=_resolve_injector(self._faults, seed))
        self.records: List[Any] = []
        # Running sums so metrics() stays O(1) however long the session
        # lives: a served session calls metrics() on every step request,
        # and re-summing the whole history made the per-request cost
        # grow linearly with session age.  Left-to-right accumulation in
        # append order produces bit-identical floats to sum() over the
        # records list, so payloads do not change.
        self._error_sum = 0.0
        self._energy_sum = 0.0
        self._t = 0.0
        return self

    def step(self):
        record = self._node.step(self._t)
        self.records.append(record)
        self._error_sum += record.error
        self._energy_sum += record.energy_spent
        self._t += 1.0
        return record

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "sensornet", "time": self._t,
                "total_energy": self._node.total_energy,
                "beliefs": self._node.beliefs(),
                "steps_taken": len(self.records)}

    def metrics(self) -> Dict[str, float]:
        n = len(self.records)
        if n == 0:
            result = self.result()
            return {"mean_error": result.mean_error(),
                    "mean_energy": result.mean_energy()}
        return {"mean_error": self._error_sum / n,
                "mean_energy": self._energy_sum / n}

    def result(self):
        from ..sensornet.node import SensingRunResult
        return SensingRunResult(records=self.records)

    def run(self):
        for _ in range(self.config.steps):
            self.step()
        return self.result()


# ---------------------------------------------------------------------------
# Serving layer


class ServeSimulator:
    """The serving-layer control loop behind the protocol.

    The one substrate that is *about* the reproduction itself: the
    simulated system is the self-aware request-serving layer of
    :mod:`repro.serve`, with the real governor and admission controller
    in the control seat (see :mod:`repro.serve.simulation`).
    """

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 governor: Optional[Any] = None,
                 workload: Optional[Any] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._governor_given = governor
        #: Twin replay source (:class:`repro.twin.TraceWorkload`); a live
        #: object, so it rides the expert path rather than the config.
        self._workload_given = workload
        self._faults = faults
        self.reset(self.config.seed)

    def reset(self, seed: Optional[int] = None) -> "ServeSimulator":
        from ..serve.simulation import ServingSimulation
        seed = self.config.seed if seed is None else seed
        if self.config.seed == seed:
            config = self.config
        else:
            import dataclasses
            config = dataclasses.replace(self.config, seed=seed)
        self._sim = ServingSimulation(
            config, governor=self._governor_given,
            workload=self._workload_given,
            faults=_resolve_injector(self._faults, seed))
        return self

    def step(self):
        return self._sim.step()

    def snapshot(self) -> Dict[str, Any]:
        return self._sim.snapshot()

    def metrics(self) -> Dict[str, float]:
        return self._sim.metrics()

    def result(self):
        return self._sim.records

    def run(self):
        return self._sim.run()


class ClusterSimulator:
    """The sharded serving cluster behind the protocol.

    Deterministic discrete-time model of N cooperating serving nodes
    splitting one worker budget -- collectively (gossiped self-models),
    per-node, or statically (see :mod:`repro.serve.cluster`).
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 workload: Optional[Any] = None,
                 faults: Faults = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        if faults is not None:
            raise ValueError(
                "the cluster substrate does not take fault plans yet; "
                "model node failure as gossip staleness instead")
        #: Twin replay source (:class:`repro.twin.TraceWorkload`).
        self._workload_given = workload
        self.reset(self.config.seed)

    def reset(self, seed: Optional[int] = None) -> "ClusterSimulator":
        from ..serve.cluster import ClusterSimulation
        seed = self.config.seed if seed is None else seed
        if self.config.seed == seed:
            config = self.config
        else:
            import dataclasses
            config = dataclasses.replace(self.config, seed=seed)
        self._sim = ClusterSimulation(config, workload=self._workload_given)
        return self

    def step(self):
        return self._sim.step()

    def snapshot(self) -> Dict[str, Any]:
        return self._sim.snapshot()

    def metrics(self) -> Dict[str, float]:
        return self._sim.metrics()

    def result(self):
        return self._sim.records

    def run(self):
        return self._sim.run()


#: Declarative registry: substrate name -> (config class, adapter class).
SIMULATORS = {
    "smartcamera": (CameraConfig, CameraSimulator),
    "cloud": (CloudConfig, CloudSimulator),
    "multicore": (MulticoreConfig, MulticoreSimulator),
    "cpn": (CPNConfig, CPNSimulator),
    "swarm": (SwarmConfig, SwarmSimulator),
    "sensornet": (SensornetConfig, SensornetSimulator),
    "serve": (ServeConfig, ServeSimulator),
    "cluster": (ClusterConfig, ClusterSimulator),
}


def make_simulator(substrate: str, config: Optional[Any] = None,
                   **kwargs: Any):
    """Build the adapter for ``substrate`` (see :data:`SIMULATORS`).

    Raises ``ValueError`` -- not a bare ``KeyError`` -- on an unknown
    name, listing the registered substrates so the caller's typo is a
    one-glance fix.
    """
    try:
        _, adapter_cls = SIMULATORS[substrate]
    except KeyError:
        known = ", ".join(sorted(SIMULATORS))
        raise ValueError(
            f"unknown substrate {substrate!r}; known: {known}") from None
    return adapter_cls(config, **kwargs)
