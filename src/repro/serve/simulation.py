"""A discrete-time model of the serving layer, for experiments and bench.

The asyncio server in :mod:`repro.serve.server` runs on wall clock and
process pools -- accurate but non-reproducible.  This module models the
same control problem as a deterministic queueing simulation so that
experiment E14 can *score* the governor: Poisson request arrivals at an
offered rate, exponential service demands, a worker pool that serves a
fixed work budget per tick (with a boot delay on scale-up), the real
:class:`~repro.serve.admission.AdmissionController` in front of the
queue, and the real :class:`~repro.serve.governor.ServeGovernor` (or its
static baseline) in the control seat.  Nothing is mocked: the admission
and governor objects are exactly the ones the live server uses, which is
the point -- E14's claims transfer to the server because the control
plane is shared, only the data plane is simulated.

Determinism: all randomness flows from ``default_rng([0x5E4E, seed])``
plus the governor's own seeded exploration stream, so a given
``(config, seed)`` replays byte-identically -- the property the
:mod:`repro.api` facade requires of every registered substrate.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from ..api.configs import ServeConfig
from ..faults.injector import FaultInjector, make_injector
from ..faults.plan import CRASH
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .admission import ADMIT, AdmissionController
from .governor import ServeGovernor, StaticGovernor


def _offered(config: ServeConfig, t: float) -> float:
    """Offered load at tick ``t`` (optionally seasonal)."""
    rate = config.offered_load
    if config.spike_amplitude:
        rate *= 1.0 + config.spike_amplitude * math.sin(
            2.0 * math.pi * t / config.period)
    return max(0.0, rate)


class ServingSimulation:
    """The serving control loop over a simulated request stream."""

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 governor: Optional[Any] = None,
                 faults: Optional[FaultInjector] = None,
                 workload: Optional[Any] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._governor_given = governor  # expert path: reused across resets
        #: Explicit faults always win over a scenario-armed plan.
        self._faults_given = faults
        #: Replay source (:class:`repro.twin.TraceWorkload`): recorded
        #: arrival counts replace the Poisson draws tick-for-tick.
        self.workload = workload
        self.reset(self.config.seed)

    # -- lifecycle ---------------------------------------------------------

    def _make_governor(self, seed: int) -> Any:
        cfg = self.config
        if self._governor_given is not None:
            return self._governor_given
        if cfg.governor == "static":
            return StaticGovernor(pool_size=cfg.static_workers,
                                  service_rate_guess=cfg.per_worker_rate,
                                  admit_headroom=cfg.admit_headroom,
                                  slo_p95=cfg.slo_p95)
        if cfg.governor == "self_aware":
            return ServeGovernor(slo_p95=cfg.slo_p95,
                                 min_workers=cfg.min_workers,
                                 max_workers=cfg.max_workers,
                                 service_rate_guess=cfg.per_worker_rate,
                                 admit_headroom=cfg.admit_headroom,
                                 epsilon=cfg.epsilon, seed=seed)
        raise ValueError(f"unknown serve governor {cfg.governor!r}")

    def reset(self, seed: Optional[int] = None) -> "ServingSimulation":
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        self._seed = seed
        self.rng = np.random.default_rng([0x5E4E, seed])
        self.faults = self._faults_given
        self._scenario_track = None
        if cfg.scenario:
            from ..envgen.scenario import make_scenario
            track = make_scenario(cfg.scenario).render(cfg.steps, seed=seed)
            self._scenario_track = track
            if track.plan is not None and self._faults_given is None:
                self.faults = make_injector(track.plan, run_seed=seed)
        self.governor = self._make_governor(seed)
        self._pool = self.governor.pool_target
        capacity = max(1e-6, self._pool * cfg.per_worker_rate)
        self.admission = AdmissionController(
            rate=capacity * cfg.admit_headroom,
            burst=max(1.0, capacity),
            max_queue=max(1.0, math.ceil(
                capacity * max(1.0, cfg.slo_p95 - 2.0))))
        #: FIFO queue of [arrival_tick, remaining_demand].
        self._queue: "deque[List[float]]" = deque()
        self._pending_boots: List[List[float]] = []  # [ready_tick, count]
        self._recent_arrivals: "deque[int]" = deque(maxlen=cfg.stats_window)
        self._recent_latencies: "deque[float]" = deque(maxlen=cfg.latency_window)
        #: Every completion as ``(completion_tick, latency)``; metrics()
        #: scores the post-warmup slice of this exactly.
        self._all_latencies: List[List[float]] = []
        self.records: List[Dict[str, float]] = []
        self.serve_stale = False
        self._t = 0.0
        return self

    # -- one tick ----------------------------------------------------------

    def _effective_pool(self) -> int:
        """Workers actually serving: booted pool minus crashed cohort."""
        if self.faults is None or not self.faults.active(CRASH):
            return self._pool
        population = tuple(range(self.config.max_workers))
        crashed = self.faults.crashed_targets(population)
        return sum(1 for w in range(self._pool) if w not in crashed)

    def _sensed(self, value: float) -> float:
        """Telemetry as the governor perceives it (faults may corrupt it)."""
        if self.faults is None:
            return value
        return max(0.0, self.faults.perturb(value, target="serve.telemetry"))

    def step(self) -> Dict[str, float]:
        cfg = self.config
        t = self._t
        if self.faults is not None:
            self.faults.begin_step(t)

        # Scale-ups ordered earlier come online after the boot delay.
        for boot in [b for b in self._pending_boots if b[0] <= t]:
            self._pool += int(boot[1])
            self._pending_boots.remove(boot)
        self._pool = min(self._pool, cfg.max_workers)

        # Arrivals through admission.
        rate = _offered(cfg, t)
        if self._scenario_track is not None:
            rate *= self._scenario_track.rate_at(t)
        if self.faults is not None:
            rate *= self.faults.demand_factor()
        if self.workload is not None:
            # Twin replay: the recorded arrival count stands in for the
            # Poisson draw (and skips it, keeping the rng stream aligned
            # across candidates replaying the same trace).
            offered = self.workload.offered(t)
        else:
            offered = int(self.rng.poisson(rate))
        admitted = 0
        for _ in range(offered):
            if self.admission.admit(t, len(self._queue)) is ADMIT:
                self._queue.append(
                    [t, float(self.rng.exponential(cfg.mean_service))])
                admitted += 1
        shed = offered - admitted
        self._recent_arrivals.append(offered)

        # Service: the pool drains a work budget per tick, FIFO.
        serving_pool = self._pool  # before any scale-down this tick
        effective = self._effective_pool()
        budget = effective * cfg.per_worker_rate
        capacity = max(1e-9, budget)
        served_work = 0.0
        completions = 0
        good = 0
        while self._queue and budget > 1e-12:
            head = self._queue[0]
            take = min(budget, head[1])
            head[1] -= take
            budget -= take
            served_work += take
            if head[1] <= 1e-12:
                self._queue.popleft()
                latency = t - head[0] + 1.0
                self._recent_latencies.append(latency)
                self._all_latencies.append([t, latency])
                completions += 1
                if latency <= cfg.slo_p95:
                    good += 1

        utilisation = served_work / capacity
        p95_recent = (float(np.percentile(self._recent_latencies, 95.0))
                      if self._recent_latencies else 0.0)
        arrival_rate = (sum(self._recent_arrivals)
                        / max(1, len(self._recent_arrivals)))

        # Governance: periodic sense -> decide -> express.
        if int(t) % cfg.govern_every == 0:
            decision = self.governor.tick(t, {
                "queue_depth": self._sensed(float(len(self._queue))),
                "arrival_rate": self._sensed(arrival_rate),
                "p95_latency": self._sensed(p95_recent),
                "utilisation": min(1.0, utilisation),
                "shed_fraction": self.admission.shed_fraction(),
                "pool_size": float(effective),
                "completion_rate": float(completions),
            })
            self._apply(t, decision)

        record = {"time": t, "offered": float(offered),
                  "admitted": float(admitted), "shed": float(shed),
                  "completions": float(completions), "good": float(good),
                  "queue_depth": float(len(self._queue)),
                  "pool": float(serving_pool), "effective": float(effective),
                  "utilisation": utilisation, "p95_recent": p95_recent}
        self.records.append(record)
        if obs_events.enabled():
            obs_metrics.counter("serve.requests").increment(offered)
            latency_hist = obs_metrics.histogram("serve.latency")
            for _, latency in self._all_latencies[-completions:] \
                    if completions else []:
                latency_hist.observe(latency)
            obs_metrics.histogram("serve.queue_depth").observe(
                float(len(self._queue)))
            obs_events.emit("serve.request", time=t, offered=offered,
                            admitted=admitted, shed=shed,
                            completions=completions, queue=len(self._queue),
                            pool=self._pool)
        self._t += 1.0
        return record

    def _apply(self, t: float, decision: Any) -> None:
        """Express a governor decision onto pool and admission."""
        cfg = self.config
        target = int(decision.pool_target)
        booked = self._pool + sum(int(b[1]) for b in self._pending_boots)
        if target > booked:
            self._pending_boots.append([t + cfg.boot_delay, target - booked])
        elif target < booked:
            shrink = booked - target
            # Cancel pending boots first; then shut live workers down
            # immediately (no teardown delay).
            for boot in list(reversed(self._pending_boots)):
                if shrink <= 0:
                    break
                cancel = min(shrink, int(boot[1]))
                boot[1] -= cancel
                shrink -= cancel
                if boot[1] <= 0:
                    self._pending_boots.remove(boot)
            if shrink > 0:
                self._pool = max(1, self._pool - shrink)
        self.admission.configure(t, rate=decision.admission_rate,
                                 burst=decision.admission_burst,
                                 max_queue=decision.max_queue)
        self.serve_stale = bool(decision.serve_stale)

    # -- protocol ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "serve", "time": self._t,
                "queue_depth": len(self._queue), "pool": self._pool,
                "degraded": bool(self.governor.degraded),
                "steps_taken": len(self.records)}

    def metrics(self) -> Dict[str, float]:
        """Scored over the post-warmup window (the governor's ramp-up is
        part of the story E14 tells, not of the steady state it scores)."""
        cfg = self.config
        warmup = min(cfg.warmup, max(0, len(self.records) - 1))
        window = self.records[warmup:]
        if not window:
            return {"goodput": 0.0, "p95_latency": float("nan"),
                    "shed_fraction": 0.0, "mean_pool": 0.0,
                    "slo_attainment": 0.0, "offered": 0.0}
        ticks = float(len(window))
        offered = sum(r["offered"] for r in window)
        shed = sum(r["shed"] for r in window)
        completions = sum(r["completions"] for r in window)
        good = sum(r["good"] for r in window)
        latencies = [lat for tick, lat in self._all_latencies
                     if tick >= warmup]
        return {
            "goodput": good / ticks,
            "p95_latency": (float(np.percentile(latencies, 95.0))
                            if latencies else float("nan")),
            "shed_fraction": shed / offered if offered else 0.0,
            "mean_pool": sum(r["pool"] for r in window) / ticks,
            "slo_attainment": good / completions if completions else 0.0,
            "offered": offered / ticks,
        }

    def run(self) -> List[Dict[str, float]]:
        for _ in range(self.config.steps):
            self.step()
        return self.records
