"""The versioned serve wire protocol: envelopes, error codes, capability.

Every JSON-lines frame the serving layer emits -- success or error --
carries a protocol version ``"v": 1`` (:data:`PROTOCOL_VERSION`), so
clients and servers can evolve independently and detect mismatch
structurally instead of by guessing at payload shapes.  Errors are a
single structured object drawn from one enum::

    {"ok": false, "v": 1,
     "error": {"code": "unknown_session",
               "message": "no session 'n1-s000007'",
               "retryable": false}}

rather than the ad-hoc ``{"code": ..., "error": "<string>"}`` pairs of
the v0 wire.  (The top-level ``code`` mirror is kept for one version as
a deprecated convenience; new code should read ``error.code``.)

Cluster routing speaks the same dialect: a node that does not hold a
session answers ``moved`` with the owning node in the error object, and
:class:`~repro.serve.cluster.ClusterClient` follows the redirect.  A
version the server does not speak gets ``unsupported_version`` --
surfaced client-side as :class:`CapabilityError`, the structured
version-mismatch path.

Everything here is pure data shaping: no IO, no asyncio.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, Optional

#: The wire protocol version this tree speaks (requests and responses).
PROTOCOL_VERSION = 1


class ErrorCode(str, Enum):
    """The closed set of serve-layer error codes.

    ``retryable`` is a property of the *code*, not of the occurrence:
    shed and routing errors are worth retrying (later, or elsewhere);
    malformed requests and capability mismatches are not.
    """

    #: Malformed frame, unknown op, bad argument or unknown substrate.
    BAD_REQUEST = "bad_request"
    #: The session id is not (or no longer) held anywhere we know of.
    UNKNOWN_SESSION = "unknown_session"
    #: Token bucket empty: offered rate above the sustainable rate.
    SHED_RATE = "shed_rate"
    #: Queue bound hit: admitted-but-unserved backlog too deep.
    SHED_QUEUE = "shed_queue"
    #: The request's ``v`` is newer than this server speaks.
    UNSUPPORTED_VERSION = "unsupported_version"
    #: The session lives on another node; ``error.node`` names it.
    MOVED = "moved"
    #: A migration import landed on a node the cluster did not route
    #: it to (rehydrate-on-wrong-node rejection).
    WRONG_NODE = "wrong_node"
    #: Unexpected server-side failure.
    INTERNAL = "internal"


#: Codes a client may meaningfully retry (possibly at another node).
RETRYABLE = frozenset({ErrorCode.SHED_RATE, ErrorCode.SHED_QUEUE,
                       ErrorCode.MOVED, ErrorCode.INTERNAL})


class CapabilityError(RuntimeError):
    """Client-side signal that the peer cannot speak this protocol
    version (an ``unsupported_version`` response, or a reply whose
    ``v`` is newer than the client itself understands)."""

    def __init__(self, message: str, *,
                 server_version: Optional[int] = None) -> None:
        super().__init__(message)
        self.server_version = server_version


def error_response(code: ErrorCode, message: str,
                   **extra: Any) -> Dict[str, Any]:
    """Build the structured v1 error envelope.

    ``extra`` fields ride inside the error object (``node`` for
    ``moved``, ``supported`` for ``unsupported_version``...).  The
    top-level ``code`` mirror is the deprecated v0 compatibility field.
    """
    code = ErrorCode(code)
    error: Dict[str, Any] = {"code": code.value, "message": message,
                             "retryable": code in RETRYABLE}
    error.update(extra)
    return {"ok": False, "v": PROTOCOL_VERSION, "error": error,
            "code": code.value}


def ok_response(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp a success payload with the protocol envelope."""
    payload["ok"] = True
    payload["v"] = PROTOCOL_VERSION
    return payload


def check_version(request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Validate a request's declared version.

    A missing ``v`` means 1 (the pre-versioning wire); anything else
    must be an integer in ``[1, PROTOCOL_VERSION]``.  Returns ``None``
    when acceptable, else the ``unsupported_version`` error response.
    """
    v = request.get("v", 1)
    if isinstance(v, bool) or not isinstance(v, int):
        return error_response(ErrorCode.UNSUPPORTED_VERSION,
                              f"protocol version must be an integer, got "
                              f"{v!r}", supported=PROTOCOL_VERSION)
    if not 1 <= v <= PROTOCOL_VERSION:
        return error_response(ErrorCode.UNSUPPORTED_VERSION,
                              f"protocol version {v} not supported "
                              f"(this server speaks <= {PROTOCOL_VERSION})",
                              supported=PROTOCOL_VERSION)
    return None


def error_code(response: Dict[str, Any]) -> Optional[str]:
    """The error code of a response, if it is an error (else ``None``).

    Reads the structured v1 object first, falling back to the v0
    top-level mirror so clients can talk to either generation.
    """
    if response.get("ok"):
        return None
    error = response.get("error")
    if isinstance(error, dict) and "code" in error:
        return str(error["code"])
    code = response.get("code")
    return str(code) if code is not None else None
