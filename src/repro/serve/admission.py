"""Admission control: token-bucket rate limiting plus a bounded queue.

The serving layer's first line of self-protection.  Every request passes
through an :class:`AdmissionController` before it may consume a worker:
a token bucket throttles the *rate* of admitted work and a queue bound
throttles the *amount* of admitted-but-unserved work.  Both knobs are
runtime-tunable, which is how the :class:`~repro.serve.governor.ServeGovernor`
expresses itself -- tightening admission is one of its two actuators.

Everything here is sans-io: time enters only through explicit ``now``
arguments, so the same controller runs unchanged under the asyncio
server's wall clock and under the discrete-time serving simulation that
experiment E14 scores.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

#: Admission verdicts.
ADMIT = "admit"
SHED_RATE = "shed_rate"     # token bucket empty: arrival rate too high
SHED_QUEUE = "shed_queue"   # queue bound hit: backlog too deep


class TokenBucket:
    """A token bucket with lazy, clock-robust refill.

    Tokens accrue continuously at ``rate`` per unit time up to
    ``capacity``; each admitted request spends one (or ``cost``) tokens.
    Refill is computed lazily from the elapsed time since the previous
    observation, so the bucket needs no timer of its own.

    Edge cases the tests pin down:

    * a burst can never exceed ``capacity`` no matter how long the
      bucket sat idle (the refill clamps, it does not accumulate);
    * requesting more than ``capacity`` at once can never succeed;
    * time moving backwards (clock skew) refills nothing and does not
      corrupt the refill origin.
    """

    def __init__(self, rate: float, capacity: float, *,
                 initial: Optional[float] = None) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise ValueError("rate must be positive and finite")
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError("capacity must be positive and finite")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = self.capacity if initial is None \
            else min(float(initial), self.capacity)
        self._last: Optional[float] = None

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill observation."""
        return self._tokens

    def refill(self, now: float) -> None:
        """Accrue tokens for the time elapsed since the last call."""
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed <= 0.0:
            return
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last = now

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; ``False`` means throttled."""
        self.refill(now)
        if self._tokens + 1e-12 < cost:
            return False
        self._tokens -= cost
        return True

    def configure(self, now: float, *, rate: Optional[float] = None,
                  capacity: Optional[float] = None) -> None:
        """Retune the bucket, crediting accrual so far at the *old* rate."""
        self.refill(now)
        if rate is not None:
            if rate <= 0 or not math.isfinite(rate):
                raise ValueError("rate must be positive and finite")
            self.rate = float(rate)
        if capacity is not None:
            if capacity <= 0 or not math.isfinite(capacity):
                raise ValueError("capacity must be positive and finite")
            self.capacity = float(capacity)
            self._tokens = min(self._tokens, self.capacity)


class AdmissionController:
    """Gate requests through a token bucket and a queue bound.

    ``admit(now, queue_depth)`` returns one of :data:`ADMIT`,
    :data:`SHED_QUEUE` (backlog already at the bound -- backpressure) or
    :data:`SHED_RATE` (arrival rate above the sustainable rate).  The
    queue check runs first: when the system is already drowning, shedding
    must not depend on the bucket's state.

    The governor retunes ``rate``/``burst``/``max_queue`` at run time via
    :meth:`configure`; counters expose the realised shed fraction, which
    is itself one of the governor's sensor readings (the system observing
    the effect of its own self-expression).
    """

    def __init__(self, *, rate: float, burst: Optional[float] = None,
                 max_queue: float = float("inf")) -> None:
        self.bucket = TokenBucket(rate, burst if burst is not None else rate)
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self.max_queue = float(max_queue)
        self.admitted = 0
        self.shed = {SHED_RATE: 0, SHED_QUEUE: 0}

    @property
    def rate(self) -> float:
        return self.bucket.rate

    def admit(self, now: float, queue_depth: float = 0.0,
              cost: float = 1.0) -> str:
        """One admission decision; updates counters and telemetry."""
        if queue_depth >= self.max_queue:
            verdict = SHED_QUEUE
        elif not self.bucket.try_acquire(now, cost):
            verdict = SHED_RATE
        else:
            verdict = ADMIT
        if verdict is ADMIT:
            self.admitted += 1
        else:
            self.shed[verdict] += 1
            if obs_events.enabled():
                obs_metrics.counter("serve.shed", reason=verdict).increment()
                obs_events.emit("serve.shed", time=now, reason=verdict,
                                queue_depth=queue_depth,
                                tokens=self.bucket.tokens)
        return verdict

    def configure(self, now: float, *, rate: Optional[float] = None,
                  burst: Optional[float] = None,
                  max_queue: Optional[float] = None) -> None:
        """Runtime retuning hook used by the governor."""
        self.bucket.configure(now, rate=rate, capacity=burst)
        if max_queue is not None:
            if max_queue <= 0:
                raise ValueError("max_queue must be positive")
            self.max_queue = float(max_queue)

    def total_shed(self) -> int:
        return sum(self.shed.values())

    def shed_fraction(self) -> float:
        """Fraction of all decisions so far that shed the request."""
        total = self.admitted + self.total_shed()
        return 0.0 if total == 0 else self.total_shed() / total

    def snapshot(self) -> Dict[str, float]:
        """JSON-safe counter snapshot (for ``stats`` responses and traces)."""
        return {"admitted": float(self.admitted),
                "shed_rate": float(self.shed[SHED_RATE]),
                "shed_queue": float(self.shed[SHED_QUEUE]),
                "shed_fraction": self.shed_fraction(),
                "rate": self.bucket.rate,
                "burst": self.bucket.capacity,
                "max_queue": self.max_queue,
                "tokens": self.bucket.tokens}
