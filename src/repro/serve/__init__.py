"""``repro.serve`` -- a request-serving layer that is itself self-aware.

The reproduction dogfooding its own framework: an asyncio server over
the :mod:`repro.api` simulator registry whose *operational* decisions --
worker-pool size, admission rate, queue bounds, degraded-mode behaviour
-- are made by a :class:`~repro.serve.governor.ServeGovernor` assembled
from the very ``core`` primitives the paper reproduction studies.

Modules:

- :mod:`~repro.serve.server` -- ``SimulationServer`` (JSON over asyncio
  streams) + ``Client``/``InProcessClient``;
- :mod:`~repro.serve.sessions` -- session table, TTL eviction,
  rehydration from configs, LRU snapshot cache;
- :mod:`~repro.serve.batching` -- per-substrate micro-batching onto a
  bounded process pool, byte-identical to sequential stepping;
- :mod:`~repro.serve.admission` -- token bucket + bounded queue with
  load shedding;
- :mod:`~repro.serve.governor` -- the self-aware control plane;
- :mod:`~repro.serve.simulation` -- a deterministic discrete-time model
  of the above, scored by experiment E14 (registered as the ``serve``
  substrate in :data:`repro.api.SIMULATORS`).

Run a server: ``python -m repro.serve --port 8642``.
"""

from .admission import ADMIT, SHED_QUEUE, SHED_RATE, AdmissionController, TokenBucket
from .batching import BatchDispatcher, StepRequest, run_step_batch
from .governor import (GovernorDecision, ServeGovernor, ServeSelfModel,
                       StaticGovernor, make_serve_goal)
from .server import Client, InProcessClient, SimulationServer
from .sessions import Session, SessionTable, SnapshotCache, UnknownSession
from .simulation import ServingSimulation

__all__ = [
    "ADMIT", "SHED_RATE", "SHED_QUEUE", "TokenBucket", "AdmissionController",
    "BatchDispatcher", "StepRequest", "run_step_batch",
    "GovernorDecision", "ServeGovernor", "ServeSelfModel", "StaticGovernor",
    "make_serve_goal",
    "SimulationServer", "Client", "InProcessClient",
    "Session", "SessionTable", "SnapshotCache", "UnknownSession",
    "ServingSimulation",
]
