"""``repro.serve`` -- a request-serving layer that is itself self-aware.

The reproduction dogfooding its own framework: an asyncio server over
the :mod:`repro.api` simulator registry whose *operational* decisions --
worker-pool size, admission rate, queue bounds, degraded-mode behaviour
-- are made by a :class:`~repro.serve.governor.ServeGovernor` assembled
from the very ``core`` primitives the paper reproduction studies.  The
cluster fabric closes the paper's *collective* level over N such nodes:
gossiped learned self-models drive decentralised budget splitting and
session migration.

Modules:

- :mod:`~repro.serve.protocol` -- the versioned wire envelope: ``"v"``
  stamping, the :class:`~repro.serve.protocol.ErrorCode` enum,
  structured error objects, ``CapabilityError``;
- :mod:`~repro.serve.config` -- frozen keyword-only ``ServerConfig``
  (legacy bare-kwarg construction warns and maps);
- :mod:`~repro.serve.server` -- ``SimulationServer`` (JSON over asyncio
  streams) + ``Client``/``InProcessClient``;
- :mod:`~repro.serve.sessions` -- session table, TTL eviction,
  rehydration from configs, LRU snapshot cache, migration handles;
- :mod:`~repro.serve.batching` -- per-substrate micro-batching onto a
  bounded process pool, byte-identical to sequential stepping;
- :mod:`~repro.serve.admission` -- token bucket + bounded queue with
  load shedding;
- :mod:`~repro.serve.governor` -- the self-aware control plane, plus
  the gossip-wrapped :class:`~repro.serve.governor.CollectiveGovernor`;
- :mod:`~repro.serve.ring` -- consistent-hash session placement;
- :mod:`~repro.serve.gossip` -- gossiped ``NodeSelfView`` board and the
  collective budget split;
- :mod:`~repro.serve.cluster` -- ``ServeCluster`` (N in-process nodes),
  the routing ``ClusterClient``, and the deterministic
  ``ClusterSimulation`` scored by experiment E16 (registered as the
  ``cluster`` substrate in :data:`repro.api.SIMULATORS`);
- :mod:`~repro.serve.simulation` -- the single-node discrete-time model
  scored by experiment E14 (the ``serve`` substrate).

Run a server: ``python -m repro.serve --port 8642``.
"""

from .admission import ADMIT, SHED_QUEUE, SHED_RATE, AdmissionController, TokenBucket
from .batching import BatchDispatcher, StepRequest, run_step_batch
from .cluster import ClusterClient, ClusterSimulation, ServeCluster
from .config import ServerConfig
from .gossip import GossipBoard, NodeSelfView, budget_shares, cluster_load
from .governor import (CollectiveGovernor, GovernorDecision, ServeGovernor,
                       ServeSelfModel, StaticGovernor, make_serve_goal)
from .protocol import (PROTOCOL_VERSION, RETRYABLE, CapabilityError,
                       ErrorCode, error_code, error_response, ok_response)
from .ring import HashRing, stable_hash
from .server import Client, InProcessClient, SimulationServer
from .sessions import Session, SessionTable, SnapshotCache, UnknownSession
from .simulation import ServingSimulation

__all__ = [
    "ADMIT", "SHED_RATE", "SHED_QUEUE", "TokenBucket", "AdmissionController",
    "BatchDispatcher", "StepRequest", "run_step_batch",
    "GovernorDecision", "ServeGovernor", "ServeSelfModel", "StaticGovernor",
    "CollectiveGovernor", "make_serve_goal",
    "PROTOCOL_VERSION", "RETRYABLE", "ErrorCode", "CapabilityError",
    "error_response", "ok_response", "error_code",
    "ServerConfig",
    "HashRing", "stable_hash",
    "GossipBoard", "NodeSelfView", "budget_shares", "cluster_load",
    "SimulationServer", "Client", "InProcessClient",
    "ServeCluster", "ClusterClient", "ClusterSimulation",
    "Session", "SessionTable", "SnapshotCache", "UnknownSession",
    "ServingSimulation",
]
