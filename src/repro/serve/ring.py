"""Consistent-hash session placement: the cluster's shared ring.

Placement must be a *pure function of the key and the membership* --
every node (and every client) computes the same owner without talking to
anyone -- and stable under membership change: adding or removing one
node moves only ~1/N of the keyspace.  The classic construction does
both: each node is hashed onto a circle at ``replicas`` points (virtual
nodes, which smooth the load split), and a key belongs to the first
node point at or after its own hash, wrapping around.

Hashes come from ``blake2b`` rather than Python's ``hash()``: placement
decisions must agree across processes and interpreter runs, and
``hash()`` is salted per process.

The ring carries a monotonically increasing ``version`` so routing
layers can cheaply detect membership change and re-derive placements;
``spread()`` reports how evenly a key population lands, which the ring
unit tests bound.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Initial membership (order-independent: positions depend only on
        the node names).
    replicas:
        Virtual-node points per node.  More points, smoother key split;
        64 keeps the max/mean node share within ~1.3x for realistic
        populations (pinned by the unit tests).
    """

    def __init__(self, nodes: Sequence[str] = (), *,
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.version = 0
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._nodes: Dict[str, None] = {}
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> List[str]:
        """Current membership, in insertion order."""
        return list(self._nodes)

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]
        self.version += 1

    def add_node(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes[node] = None
        self._points.extend(
            (stable_hash(f"{node}#{i}"), node) for i in range(self.replicas))
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [(h, n) for h, n in self._points if n != node]
        self._rebuild()

    def owner(self, key: str) -> str:
        """The node owning ``key``: first ring point at or after its hash."""
        if not self._points:
            raise ValueError("ring has no nodes")
        index = bisect_right(self._hashes, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, n: int = 2) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        Position 0 is the owner; the rest are the natural fallbacks
        (used by migration to pick a deterministic destination order).
        """
        if not self._points:
            raise ValueError("ring has no nodes")
        n = min(n, len(self._nodes))
        start = bisect_right(self._hashes, stable_hash(key))
        chosen: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == n:
                    break
        return chosen

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (all nodes listed)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary for ``hello``/``stats`` responses."""
        return {"nodes": self.nodes(), "replicas": self.replicas,
                "version": self.version}
