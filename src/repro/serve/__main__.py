"""CLI: run a simulation server.

::

    PYTHONPATH=src python -m repro.serve --port 8642 --workers 2

Then, from any client::

    {"op": "create", "substrate": "sensornet", "config": {"steps": 200}}
    {"op": "run", "session": "s000001"}

``--trace PATH`` wraps the server in a telemetry session and writes a
JSONL trace of serve.* events on exit.  ``--record PATH`` additionally
arms a :class:`repro.twin.TraceRecorder` on the same event stream and
writes a ``repro.twin/v1`` arrival trace on exit, replayable offline
via ``python -m repro.twin PATH``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from ..obs import TelemetrySession
from .config import ServerConfig
from .server import SimulationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve repro.api simulator sessions over JSON lines.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size; 0 steps in-process")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--governor", default="self_aware",
                        choices=("self_aware", "static", "none"))
    parser.add_argument("--max-workers", type=int, default=4,
                        help="governor's pool-size ceiling")
    parser.add_argument("--ttl", type=float, default=300.0,
                        help="idle session eviction, seconds")
    parser.add_argument("--slo", type=float, default=0.25,
                        help="p95 request-latency SLO, seconds")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="write a repro.twin/v1 arrival trace on exit "
                             "(replay: python -m repro.twin PATH)")
    parser.add_argument("--record-tick", type=float, default=1.0,
                        metavar="SECONDS",
                        help="tick width for --record bucketing")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    server = SimulationServer(ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_batch=args.max_batch, governor=args.governor,
        max_workers=args.max_workers, ttl=args.ttl, slo_p95=args.slo))
    await server.start()
    print(f"serving on {server.host}:{server.port} "
          f"(workers={args.workers}, governor={args.governor})",
          flush=True)
    try:
        await asyncio.Event().wait()  # until interrupted
    finally:
        await server.stop()
        print("server stopped;", server.stats(), flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # --record needs an enabled event bus; a TelemetrySession provides
    # one whether or not a telemetry trace is also being written.
    scope = (TelemetrySession(trace_path=args.trace, echo_summary=True)
             if args.trace or args.record else contextlib.nullcontext())
    recorder = None
    with scope as session:
        if args.record:
            from ..twin import TraceRecorder
            recorder = TraceRecorder(source="python -m repro.serve",
                                     tick_seconds=args.record_tick,
                                     substrate="serve")
            recorder.attach(session.bus)
        try:
            asyncio.run(_serve(args))
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
        finally:
            if recorder is not None:
                recorder.detach()
                written = recorder.write(args.record)
                print(f"recorded {written} ticks "
                      f"({recorder.total_offered} requests) -> "
                      f"{args.record}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
