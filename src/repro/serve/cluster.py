"""The sharded serving cluster: collective self-awareness over N nodes.

One :class:`~repro.serve.server.SimulationServer` is a self-aware
system; this module scales it out and closes the paper's *collective*
level over the result.  Three pieces:

* :class:`ServeCluster` -- N in-process servers sharing a consistent-
  hash ring (:mod:`repro.serve.ring`), an authoritative session
  placement map and a gossip board (:mod:`repro.serve.gossip`).  Each
  node's governor is wrapped in a
  :class:`~repro.serve.governor.CollectiveGovernor`, so pool sizing and
  admission become collective decisions computed decentrally from
  gossiped self-models.  Sessions migrate between nodes through their
  declarative handles: the byte-identical hibernate/rehydrate replay
  path *is* the migration transport.

* :class:`ClusterClient` -- the cluster-aware client facade.  It routes
  session ops by cached placement (ring guess first), follows the
  protocol's retryable ``moved`` redirects, and spreads ``create``
  calls over the ring; capability mismatch raises the same
  :class:`~repro.serve.protocol.CapabilityError` as the per-node
  clients.

* :class:`ClusterSimulation` -- the deterministic discrete-time model
  experiment E16 scores: Zipf-skewed or flash-crowd traffic over ring-
  placed sessions, per-node queues and admission, and the three
  governor arms (``collective`` / ``per_node`` / ``static``) splitting
  one cluster-wide worker budget.  Registered as the ``"cluster"``
  substrate of :mod:`repro.api`.

Determinism: all simulation randomness flows from
``default_rng([0xC105, seed])`` plus each governor's own seeded stream,
so a given ``(config, seed)`` replays byte-identically.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ..api.configs import ClusterConfig
from ..envgen.scenario import FlashMix, UniformMix, ZipfMix
from ..obs import events as obs_events
from .admission import ADMIT, AdmissionController
from .config import ServerConfig
from .gossip import GossipBoard
from .governor import CollectiveGovernor, ServeGovernor, StaticGovernor
from .protocol import ErrorCode, error_code
from .ring import HashRing
from .server import Client, InProcessClient, SimulationServer


# ---------------------------------------------------------------------------
# The live cluster
# ---------------------------------------------------------------------------


class ServeCluster:
    """N cooperating :class:`SimulationServer` nodes in one process.

    The nodes share three objects -- the ring, the placement map and the
    gossip board -- which is exactly the state a networked deployment
    would replicate; everything else stays per-node.  ``governor``
    selects the control arm: ``"collective"`` wraps each node's
    self-aware governor with gossip-driven budget sharing,
    ``"per_node"`` runs isolated self-aware governors capped at the
    fair share, ``"static"`` fixes every pool at design time.
    """

    def __init__(self, *, nodes: int = 3,
                 base: Optional[ServerConfig] = None,
                 governor: str = "collective",
                 worker_budget: Optional[int] = None,
                 gossip_ttl: float = 10.0,
                 replicas: int = 64) -> None:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        base = base if base is not None else ServerConfig()
        self.node_ids = [f"n{i}" for i in range(nodes)]
        self.ring = HashRing(self.node_ids, replicas=replicas)
        self.placements: Dict[str, str] = {}
        self.board = GossipBoard(ttl=gossip_ttl)
        budget = (worker_budget if worker_budget is not None
                  else max(nodes, base.max_workers * nodes))
        fair = max(base.min_workers, budget // nodes)
        self.worker_budget = budget
        self.servers: Dict[str, SimulationServer] = {}
        import dataclasses
        for i, node_id in enumerate(self.node_ids):
            cfg = dataclasses.replace(base, node_id=node_id, port=0,
                                      seed=base.seed + i)
            gov: Optional[Any]
            if governor == "collective":
                gov = CollectiveGovernor(
                    ServeGovernor(slo_p95=cfg.slo_p95,
                                  min_workers=cfg.min_workers,
                                  max_workers=budget,
                                  service_rate_guess=cfg.service_rate_guess,
                                  seed=cfg.seed),
                    node_id=node_id, board=self.board,
                    worker_budget=budget, fallback_share=fair,
                    min_workers=cfg.min_workers)
            elif governor == "per_node":
                gov = ServeGovernor(slo_p95=cfg.slo_p95,
                                    min_workers=cfg.min_workers,
                                    max_workers=fair,
                                    service_rate_guess=cfg.service_rate_guess,
                                    seed=cfg.seed)
            elif governor == "static":
                gov = StaticGovernor(pool_size=fair,
                                     service_rate_guess=cfg.service_rate_guess,
                                     slo_p95=cfg.slo_p95)
            elif governor == "none":
                gov = None
            else:
                raise ValueError(f"unknown cluster governor {governor!r}")
            self.servers[node_id] = SimulationServer(
                cfg, ring=self.ring, placements=self.placements,
                board=self.board, governor=gov)

    def __len__(self) -> int:
        return len(self.servers)

    async def start(self, *, listen: bool = False) -> "ServeCluster":
        for server in self.servers.values():
            await server.start(listen=listen)
        return self

    async def stop(self) -> None:
        for server in self.servers.values():
            await server.stop()

    def client(self, node: Optional[str] = None) -> InProcessClient:
        """A plain per-node client (moved errors surface to the caller)."""
        node = node if node is not None else self.node_ids[0]
        return InProcessClient(self.servers[node])

    def cluster_client(self) -> "ClusterClient":
        """The routing facade over every node."""
        return ClusterClient({n: InProcessClient(s)
                              for n, s in self.servers.items()},
                             ring=self.ring)

    async def migrate(self, session_id: str, dst: str) -> Dict[str, Any]:
        """Move a session to ``dst`` via its declarative handle.

        Placement flips *first*, so new traffic for the session bounces
        off both nodes with retryable ``moved`` errors for the duration
        of the hand-off instead of racing the hand-off itself; the
        export runs under the session lock on the old owner, so any
        in-flight step commits into the handle.
        """
        if dst not in self.servers:
            raise ValueError(f"unknown node {dst!r}")
        src = self.placements.get(session_id)
        if src is None:
            raise KeyError(f"no placement for session {session_id!r}")
        if src == dst:
            return {"session": session_id, "node": dst, "moved": False}
        self.placements[session_id] = dst
        out = await self.servers[src].dispatch(
            {"op": "migrate_out", "session": session_id})
        if not out.get("ok"):
            self.placements[session_id] = src  # roll back
            raise RuntimeError(f"migrate_out failed: {error_code(out)}")
        res = await self.servers[dst].dispatch(
            {"op": "migrate_in", "handle": out["handle"]})
        if not res.get("ok"):
            self.placements[session_id] = src
            raise RuntimeError(f"migrate_in failed: {error_code(res)}")
        return {"session": session_id, "node": dst, "moved": True,
                "steps_taken": res["steps_taken"]}


class ClusterClient(Client):
    """Cluster-aware client: placement-cached routing with ``moved``
    redirect following.

    The ring gives the *guess* (it is how creates are spread and how an
    unknown session is first routed); the cluster's ``moved`` errors
    give the *truth*, which the client caches.  A redirect chain longer
    than ``max_redirects`` raises rather than looping -- placement
    churn that fast means the cluster is reconfiguring under the
    caller's feet and deserves loudness.
    """

    def __init__(self, clients: Dict[str, Client], *,
                 ring: Optional[HashRing] = None,
                 max_redirects: int = 4) -> None:  # noqa: super
        if not clients:
            raise ValueError("need at least one node client")
        self._clients = dict(clients)
        self._ring = ring if ring is not None else HashRing(sorted(clients))
        self._placements: Dict[str, str] = {}
        self.max_redirects = max_redirects
        self._created = 0
        self.redirects_followed = 0

    def _pick_node(self, payload: Dict[str, Any]) -> str:
        session = payload.get("session")
        if session is not None:
            sid = str(session)
            cached = self._placements.get(sid)
            if cached is not None:
                return cached
            guess = self._ring.owner(sid)
            return guess if guess in self._clients else next(iter(self._clients))
        if payload.get("op") == "create":
            # Spread creates over the ring deterministically.
            self._created += 1
            owner = self._ring.owner(f"create-{self._created}")
            return owner if owner in self._clients else next(iter(self._clients))
        return next(iter(self._clients))

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        node = self._pick_node(payload)
        for _ in range(self.max_redirects + 1):
            response = await self._clients[node].request(dict(payload))
            if error_code(response) == ErrorCode.MOVED.value:
                owner = response["error"].get("node")
                if owner is None or owner not in self._clients:
                    return response
                session = payload.get("session")
                if session is not None:
                    self._placements[str(session)] = owner
                node = owner
                self.redirects_followed += 1
                continue
            session = response.get("session")
            if response.get("ok") and session is not None:
                self._placements[str(session)] = response.get("node", node)
            return response
        raise RuntimeError(
            f"placement for {payload.get('session')!r} still moving after "
            f"{self.max_redirects} redirects")

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()


# ---------------------------------------------------------------------------
# The deterministic cluster simulation (substrate "cluster", experiment E16)
# ---------------------------------------------------------------------------


class _SimNode:
    """Per-node queueing state inside :class:`ClusterSimulation`."""

    def __init__(self, node_id: str, governor: Any, pool: int,
                 config: ClusterConfig) -> None:
        self.node_id = node_id
        self.governor = governor
        self.pool = pool
        capacity = max(1e-6, pool * config.per_worker_rate)
        self.admission = AdmissionController(
            rate=capacity * config.admit_headroom,
            burst=max(1.0, capacity),
            max_queue=max(1.0, math.ceil(
                capacity * max(1.0, config.slo_p95 - 2.0))))
        #: FIFO queue of [arrival_tick, remaining_demand].
        self.queue: "deque[List[float]]" = deque()
        self.pending_boots: List[List[float]] = []  # [ready_tick, count]
        self.recent_arrivals: "deque[int]" = deque(maxlen=config.stats_window)
        self.recent_latencies: "deque[float]" = deque(
            maxlen=config.latency_window)
        self.completions = 0
        self.good = 0
        self.utilisation = 0.0


class ClusterSimulation:
    """Cluster goodput under skewed and flash-crowd traffic.

    ``sessions`` client sessions are placed on the ring by id; traffic
    splits over them by a popularity profile (Zipf for the skewed tier,
    a flash-crowd window for the flash tier), so node load is as uneven
    as real placement makes it.  Each node runs the real
    :class:`~repro.serve.admission.AdmissionController` and one of the
    three governor arms over a shared cluster-wide worker budget; the
    collective arm additionally rebalances sessions -- the simulated
    counterpart of handle migration -- using its *measured* per-session
    arrival estimates, never the generator's true weights.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 workload: Optional[Any] = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        #: Replay source (:class:`repro.twin.TraceWorkload`): recorded
        #: per-session counts replace the Poisson/multinomial draws.
        self.workload = workload
        if self.config.governor not in ("collective", "per_node", "static"):
            raise ValueError(
                f"unknown cluster governor {self.config.governor!r}")
        if self.config.traffic not in ("skewed", "flash", "uniform"):
            raise ValueError(f"unknown traffic tier {self.config.traffic!r}")
        if self.config.worker_budget < self.config.nodes:
            raise ValueError("worker_budget must cover >= 1 worker per node")
        self.reset(self.config.seed)

    # -- lifecycle ---------------------------------------------------------

    def _fair_share(self) -> int:
        cfg = self.config
        return max(cfg.min_workers, cfg.worker_budget // cfg.nodes)

    def _make_governor(self, node_id: str, seed: int) -> Any:
        cfg = self.config
        fair = self._fair_share()
        if cfg.governor == "static":
            return StaticGovernor(pool_size=fair,
                                  service_rate_guess=cfg.per_worker_rate,
                                  admit_headroom=cfg.admit_headroom,
                                  slo_p95=cfg.slo_p95)
        base_max = cfg.worker_budget if cfg.governor == "collective" else fair
        base = ServeGovernor(slo_p95=cfg.slo_p95,
                             min_workers=cfg.min_workers,
                             max_workers=base_max,
                             service_rate_guess=cfg.per_worker_rate,
                             admit_headroom=cfg.admit_headroom,
                             epsilon=cfg.epsilon, seed=seed)
        if cfg.governor == "per_node":
            return base
        return CollectiveGovernor(
            base, node_id=node_id, board=self.board,
            worker_budget=cfg.worker_budget, fallback_share=fair,
            min_workers=cfg.min_workers,
            sessions_fn=lambda n=node_id: sum(
                1 for owner in self.placements.values() if owner == n))

    def reset(self, seed: Optional[int] = None) -> "ClusterSimulation":
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        self._seed = seed
        self.rng = np.random.default_rng([0xC105, seed])
        # Traffic tiers are Scenario session mixes; the expressions are
        # byte-identical to the generators this class used to inline
        # (pinned by tests/serve/test_traffic_identity.py).
        if cfg.traffic == "skewed":
            self._mix: Any = ZipfMix(s=cfg.zipf_s)
        elif cfg.traffic == "flash":
            self._mix = FlashMix(at=float(cfg.flash_at),
                                 length=float(cfg.flash_len),
                                 factor=cfg.flash_factor,
                                 sessions=cfg.flash_sessions)
        else:
            self._mix = UniformMix()
        self._scenario_track = None
        if cfg.scenario:
            from ..envgen.scenario import make_scenario
            scenario = make_scenario(cfg.scenario)
            self._scenario_track = scenario.render(cfg.steps, seed=seed)
            mix = scenario.session_mix()
            if mix is not None:
                self._mix = mix
        self.node_ids = [f"n{i}" for i in range(cfg.nodes)]
        self.ring = HashRing(self.node_ids, replicas=cfg.ring_replicas)
        self.session_ids = [f"sess{j:03d}" for j in range(cfg.sessions)]
        self.placements: Dict[str, str] = {
            sid: self.ring.owner(sid) for sid in self.session_ids}
        self.board = GossipBoard(ttl=cfg.gossip_ttl)
        fair = self._fair_share()
        self.nodes: Dict[str, _SimNode] = {}
        for i, node_id in enumerate(self.node_ids):
            governor = self._make_governor(node_id, seed * 31 + i)
            self.nodes[node_id] = _SimNode(node_id, governor, fair, cfg)
        #: Measured per-session arrival EWMA (requests/tick) -- what the
        #: rebalancer acts on; the generator's true weights stay hidden.
        self._sess_rate: Dict[str, float] = {
            sid: 0.0 for sid in self.session_ids}
        #: Sessions whose arrivals are dropped until the noted tick
        #: (in-flight migration).
        self._frozen: Dict[str, float] = {}
        self._all_latencies: List[List[float]] = []
        self.records: List[Dict[str, float]] = []
        self.migrations = 0
        self._govern_ticks = 0
        self._collective_ticks = 0
        self._t = 0.0
        return self

    # -- traffic -----------------------------------------------------------

    def _weights(self, t: float) -> np.ndarray:
        return self._mix.weights(t, self.config.sessions)

    # -- one tick ----------------------------------------------------------

    def step(self) -> Dict[str, float]:
        cfg = self.config
        t = self._t

        # Ordered scale-ups come online (global budget enforced).
        total_pool = sum(node.pool for node in self.nodes.values())
        for node_id in self.node_ids:
            node = self.nodes[node_id]
            for boot in [b for b in node.pending_boots if b[0] <= t]:
                grant = int(boot[1])
                if cfg.governor == "collective":
                    grant = min(grant, cfg.worker_budget - total_pool)
                if grant > 0:
                    node.pool += grant
                    total_pool += grant
                node.pending_boots.remove(boot)

        # Arrivals: one Poisson draw split over sessions by popularity,
        # routed to each session's placed node through its admission.
        if self.workload is not None:
            # Twin replay: recorded totals and per-session counts stand
            # in for both draws, keeping the rng stream aligned across
            # candidates replaying the same trace.
            offered_total = self.workload.offered(t)
            counts = self.workload.session_counts(t, cfg.sessions)
        else:
            rate = cfg.offered_load
            if self._scenario_track is not None:
                rate *= self._scenario_track.rate_at(t)
            offered_total = int(self.rng.poisson(rate))
            counts = self.rng.multinomial(offered_total, self._weights(t))
        admitted_total = 0
        offered_at: Dict[str, int] = {n: 0 for n in self.node_ids}
        for j, sid in enumerate(self.session_ids):
            arrivals = int(counts[j])
            rate = self._sess_rate[sid]
            self._sess_rate[sid] = 0.8 * rate + 0.2 * arrivals
            if arrivals == 0:
                continue
            if self._frozen.get(sid, -1.0) > t:
                continue  # migration freeze: dropped, counted as shed
            node = self.nodes[self.placements[sid]]
            offered_at[node.node_id] += arrivals
            for _ in range(arrivals):
                if node.admission.admit(t, len(node.queue)) is ADMIT:
                    node.queue.append(
                        [t, float(self.rng.exponential(cfg.mean_service))])
                    admitted_total += 1
        shed_total = offered_total - admitted_total

        # Service: each pool drains its work budget FIFO.
        completions_total = 0
        good_total = 0
        queue_total = 0
        for node_id in self.node_ids:
            node = self.nodes[node_id]
            node.recent_arrivals.append(offered_at[node_id])
            budget = node.pool * cfg.per_worker_rate
            capacity = max(1e-9, budget)
            served = 0.0
            node.completions = node.good = 0
            while node.queue and budget > 1e-12:
                head = node.queue[0]
                take = min(budget, head[1])
                head[1] -= take
                budget -= take
                served += take
                if head[1] <= 1e-12:
                    node.queue.popleft()
                    latency = t - head[0] + 1.0
                    node.recent_latencies.append(latency)
                    self._all_latencies.append([t, latency])
                    node.completions += 1
                    if latency <= cfg.slo_p95:
                        node.good += 1
            node.utilisation = served / capacity
            completions_total += node.completions
            good_total += node.good
            queue_total += len(node.queue)

        # Governance: each node senses itself and decides; the
        # collective arm also gossips and splits the budget.
        if int(t) % cfg.govern_every == 0:
            for node_id in self.node_ids:
                node = self.nodes[node_id]
                p95 = (float(np.percentile(node.recent_latencies, 95.0))
                       if node.recent_latencies else 0.0)
                arrival = (sum(node.recent_arrivals)
                           / max(1, len(node.recent_arrivals)))
                decision = node.governor.tick(t, {
                    "queue_depth": float(len(node.queue)),
                    "arrival_rate": float(arrival),
                    "p95_latency": p95,
                    "utilisation": min(1.0, node.utilisation),
                    "shed_fraction": node.admission.shed_fraction(),
                    "pool_size": float(node.pool),
                    "completion_rate": float(node.completions),
                })
                self._apply(t, node, decision)
                self._govern_ticks += 1
                if getattr(node.governor, "collective", False):
                    self._collective_ticks += 1

        # Rebalance: migrate a session off a hot node (collective only).
        if (cfg.governor == "collective" and cfg.rebalance and t > 0
                and int(t) % cfg.rebalance_every == 0):
            self._rebalance(t)

        record = {"time": t, "offered": float(offered_total),
                  "admitted": float(admitted_total),
                  "shed": float(shed_total),
                  "completions": float(completions_total),
                  "good": float(good_total),
                  "queue_depth": float(queue_total),
                  "pool": float(sum(n.pool for n in self.nodes.values()))}
        self.records.append(record)
        if obs_events.enabled():
            by_session = {sid: int(counts[j])
                          for j, sid in enumerate(self.session_ids)
                          if counts[j]}
            obs_events.emit("cluster.tick", time=t, offered=offered_total,
                            admitted=admitted_total, shed=shed_total,
                            completions=completions_total,
                            queue=queue_total, pool=record["pool"],
                            by_session=by_session)
        self._t += 1.0
        return record

    def _apply(self, t: float, node: _SimNode, decision: Any) -> None:
        cfg = self.config
        target = int(decision.pool_target)
        booked = node.pool + sum(int(b[1]) for b in node.pending_boots)
        if target > booked:
            node.pending_boots.append([t + cfg.boot_delay, target - booked])
        elif target < booked:
            shrink = booked - target
            for boot in list(reversed(node.pending_boots)):
                if shrink <= 0:
                    break
                cancel = min(shrink, int(boot[1]))
                boot[1] -= cancel
                shrink -= cancel
                if boot[1] <= 0:
                    node.pending_boots.remove(boot)
            if shrink > 0:
                node.pool = max(cfg.min_workers, node.pool - shrink)
        node.admission.configure(t, rate=decision.admission_rate,
                                 burst=decision.admission_burst,
                                 max_queue=decision.max_queue)

    def _rebalance(self, t: float) -> None:
        """Move one session off the most overloaded node, if any.

        Decisions run on *believed* state: gossiped pools and measured
        per-session arrival estimates.  The hottest session stays put
        (it defines the node's load; moving it just relocates the
        hotspot) -- the second-hottest moves, which is exactly the
        co-located flash-crowd case migration exists for.  Headroom at
        the destination is judged against fair-share *potential*
        capacity: under collective budgeting a cold node can grow to at
        least its fair share once load arrives.
        """
        cfg = self.config
        fair = self._fair_share()
        load = {n: 0.0 for n in self.node_ids}
        by_node: Dict[str, List[str]] = {n: [] for n in self.node_ids}
        for sid, owner in self.placements.items():
            load[owner] += self._sess_rate[sid]
            by_node[owner].append(sid)
        hot = max(self.node_ids,
                  key=lambda n: load[n] - cfg.hot_utilisation
                  * self.nodes[n].pool * cfg.per_worker_rate)
        overload = (load[hot] - cfg.hot_utilisation
                    * self.nodes[hot].pool * cfg.per_worker_rate)
        candidates = sorted(by_node[hot],
                            key=lambda s: (-self._sess_rate[s], s))
        if overload <= 0.0 or len(candidates) < 2:
            return
        moving = candidates[1]
        headroom = {
            n: max(self.nodes[n].pool, fair) * cfg.per_worker_rate - load[n]
            for n in self.node_ids if n != hot}
        dst = max(sorted(headroom), key=lambda n: headroom[n])
        if headroom[dst] <= 0.0:
            return
        self.placements[moving] = dst
        self._frozen[moving] = t + cfg.migration_freeze
        self.migrations += 1
        if obs_events.enabled():
            obs_events.emit("cluster.rebalance", time=t, session=moving,
                            src=hot, dst=dst,
                            rate=self._sess_rate[moving],
                            overload=overload)

    # -- protocol ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {"substrate": "cluster", "time": self._t,
                "pools": {n: self.nodes[n].pool for n in self.node_ids},
                "queues": {n: len(self.nodes[n].queue)
                           for n in self.node_ids},
                "placements": {
                    n: sum(1 for o in self.placements.values() if o == n)
                    for n in self.node_ids},
                "migrations": self.migrations,
                "steps_taken": len(self.records)}

    def metrics(self) -> Dict[str, float]:
        """Scored over the post-warmup window, like the E14 substrate."""
        cfg = self.config
        warmup = min(cfg.warmup, max(0, len(self.records) - 1))
        window = self.records[warmup:]
        if not window:
            return {"goodput": 0.0, "p95_latency": float("nan"),
                    "shed_fraction": 0.0, "mean_pool": 0.0,
                    "slo_attainment": 0.0, "offered": 0.0,
                    "migrations": 0.0, "collective_fraction": 0.0}
        ticks = float(len(window))
        offered = sum(r["offered"] for r in window)
        shed = sum(r["shed"] for r in window)
        completions = sum(r["completions"] for r in window)
        good = sum(r["good"] for r in window)
        latencies = [lat for tick, lat in self._all_latencies
                     if tick >= warmup]
        return {
            "goodput": good / ticks,
            "p95_latency": (float(np.percentile(latencies, 95.0))
                            if latencies else float("nan")),
            "shed_fraction": shed / offered if offered else 0.0,
            "mean_pool": sum(r["pool"] for r in window) / ticks,
            "slo_attainment": good / completions if completions else 0.0,
            "offered": offered / ticks,
            "migrations": float(self.migrations),
            "collective_fraction": (self._collective_ticks
                                    / max(1, self._govern_ticks)),
        }

    def run(self) -> List[Dict[str, float]]:
        for _ in range(self.config.steps):
            self.step()
        return self.records
