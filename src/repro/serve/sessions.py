"""Session management: simulator instances behind declarative handles.

A *session* is one client-owned simulation run.  Because every substrate
sits behind the :mod:`repro.api` facade -- frozen ``*Config`` plus
``reset(seed)`` with byte-identical replay -- a session's authoritative
state is tiny and declarative: ``(substrate, config, seed, steps_taken)``.
The live :class:`~repro.api.protocol.Simulator` object is merely a cache
of that state, and :class:`SessionTable` exploits it twice over:

* **TTL eviction** -- idle sessions are dropped wholesale after
  ``ttl`` of inactivity, bounding memory under abandoning clients;
* **hibernation** -- a session's simulator object can be discarded while
  the handle survives; the next touch rehydrates it from the config and
  replays to ``steps_taken``, reproducing the exact pre-hibernation
  state (the replay guarantee doing production work).

A small LRU :class:`SnapshotCache` keeps recent snapshots per session so
that, when the governor has degraded the service, stale-but-instant
snapshots can be served without touching a simulator at all.

Sans-io: all methods take ``now`` explicitly.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.adapters import make_simulator
from ..obs import events as obs_events


class UnknownSession(KeyError):
    """Raised for operations on ids the table does not (or no longer) hold."""


@dataclass
class Session:
    """One client simulation run: declarative core + cached live object."""

    session_id: str
    substrate: str
    config: Any
    seed: int
    created: float
    last_used: float
    steps_taken: int = 0
    simulator: Optional[Any] = field(default=None, repr=False)
    #: Serialises stepping work: concurrent step/run requests for the
    #: same session must observe each other's ``steps_taken`` updates,
    #: or both execute from the same base and one is silently lost.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock,
                               repr=False, compare=False)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``stats`` responses."""
        return {"session": self.session_id, "substrate": self.substrate,
                "steps_taken": self.steps_taken,
                "created": self.created, "last_used": self.last_used,
                "hydrated": self.simulator is not None}


class SnapshotCache:
    """LRU cache of ``(session_id, step) -> snapshot`` with stale lookup.

    ``latest(session_id)`` returns the most recent cached snapshot for a
    session regardless of step -- the degraded-mode path ("serve stale
    snapshots") -- tagged with the step it was taken at.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._cache: "OrderedDict[Tuple[str, int], Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def put(self, session_id: str, step: int, snapshot: Dict[str, Any]) -> None:
        key = (session_id, step)
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = snapshot
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def get(self, session_id: str, step: int) -> Optional[Dict[str, Any]]:
        entry = self._cache.get((session_id, step))
        if entry is None:
            self.misses += 1
            return None
        self._cache.move_to_end((session_id, step))
        self.hits += 1
        return entry

    def latest(self, session_id: str) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Most recent cached ``(step, snapshot)`` for the session, if any."""
        best: Optional[Tuple[int, Dict[str, Any]]] = None
        for (sid, step), snap in self._cache.items():
            if sid == session_id and (best is None or step > best[0]):
                best = (step, snap)
        return best

    def drop_session(self, session_id: str) -> None:
        for key in [k for k in self._cache if k[0] == session_id]:
            del self._cache[key]


class SessionTable:
    """The server's session registry: create, touch, evict, rehydrate.

    Parameters
    ----------
    ttl:
        Idle time after which :meth:`evict_expired` removes a session.
    max_sessions:
        Hard bound on live sessions; ``create`` beyond it raises.
    snapshot_cache:
        Capacity of the shared LRU snapshot cache.
    id_prefix:
        Prepended to minted session ids.  A cluster node passes
        ``f"{node_id}-"`` so ids are unique cluster-wide and carry their
        birthplace; the default keeps single-server ids unchanged.
    """

    def __init__(self, *, ttl: float = 300.0, max_sessions: int = 1024,
                 snapshot_cache: int = 256, id_prefix: str = "") -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.ttl = float(ttl)
        self.max_sessions = max_sessions
        self.id_prefix = id_prefix
        self.snapshots = SnapshotCache(snapshot_cache)
        self._sessions: Dict[str, Session] = {}
        self._next_id = 1
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[str]:
        return list(self._sessions)

    # -- lifecycle ---------------------------------------------------------

    def create(self, now: float, substrate: str, config: Any,
               *, hydrate: bool = True) -> Session:
        """Register a new session; optionally build its simulator eagerly."""
        if len(self._sessions) >= self.max_sessions:
            raise RuntimeError(
                f"session table full ({self.max_sessions} sessions)")
        session_id = f"{self.id_prefix}s{self._next_id:06d}"
        self._next_id += 1
        seed = int(getattr(config, "seed", 0))
        session = Session(session_id=session_id, substrate=substrate,
                          config=config, seed=seed, created=now,
                          last_used=now)
        if hydrate:
            session.simulator = make_simulator(substrate, config)
        self._sessions[session_id] = session
        if obs_events.enabled():
            obs_events.emit("serve.session", time=now, session=session_id,
                            substrate=substrate, action="create")
        return session

    def get(self, session_id: str, now: Optional[float] = None) -> Session:
        """Look a session up, refreshing its idle clock when ``now`` given."""
        try:
            session = self._sessions[session_id]
        except KeyError:
            raise UnknownSession(session_id) from None
        if now is not None:
            session.last_used = now
        return session

    def close(self, session_id: str) -> None:
        """Explicitly remove a session and its cached snapshots."""
        if self._sessions.pop(session_id, None) is None:
            raise UnknownSession(session_id)
        self.snapshots.drop_session(session_id)

    def evict_expired(self, now: float) -> List[str]:
        """Drop every session idle for longer than ``ttl``; return its ids."""
        expired = [sid for sid, s in self._sessions.items()
                   if now - s.last_used > self.ttl]
        for sid in expired:
            del self._sessions[sid]
            self.snapshots.drop_session(sid)
            self.evicted += 1
        if expired and obs_events.enabled():
            obs_events.emit("serve.session", time=now, action="evict",
                            sessions=list(expired))
        return expired

    # -- state materialisation --------------------------------------------

    def simulator(self, session: Session) -> Any:
        """The live simulator, rehydrating from the config if hibernated.

        Rehydration rebuilds via :func:`~repro.api.adapters.make_simulator`
        and replays ``steps_taken`` steps from ``reset(seed)`` -- by the
        facade's replay guarantee this reproduces the exact state the
        discarded instance held.
        """
        if session.simulator is None:
            sim = make_simulator(session.substrate, session.config)
            sim.reset(session.seed)
            for _ in range(session.steps_taken):
                sim.step()
            session.simulator = sim
        return session.simulator

    def hibernate(self, session_id: str) -> None:
        """Drop the live simulator, keeping the declarative handle."""
        self.get(session_id).simulator = None

    # -- migration ---------------------------------------------------------

    def export_handle(self, session_id: str) -> Dict[str, Any]:
        """The session's declarative core as a JSON-safe migration handle.

        Exactly the state hibernation keeps: ``(substrate, config, seed,
        steps_taken)`` plus identity and timestamps.  Because rehydration
        replays byte-identically from this handle, shipping it to another
        node *is* a session migration -- no simulator state crosses the
        wire.
        """
        session = self.get(session_id)
        config = session.config
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            config = dataclasses.asdict(config)
        return {"session": session.session_id,
                "substrate": session.substrate,
                "config": config,
                "seed": session.seed,
                "steps_taken": session.steps_taken,
                "created": session.created,
                "v": 1}

    def adopt(self, now: float, handle: Dict[str, Any]) -> Session:
        """Import a migrated session from an :meth:`export_handle` dict.

        The session arrives hibernated (``simulator=None``); the first
        touch rehydrates it by replay.  The originating node's id is
        kept -- migration moves a session, it does not rename it.
        """
        if len(self._sessions) >= self.max_sessions:
            raise RuntimeError(
                f"session table full ({self.max_sessions} sessions)")
        session_id = str(handle["session"])
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already present")
        substrate = str(handle["substrate"])
        config = handle["config"]
        if isinstance(config, dict):
            from ..api.adapters import SIMULATORS
            config_cls = SIMULATORS[substrate][0]
            config = config_cls(**config)
        session = Session(session_id=session_id, substrate=substrate,
                          config=config, seed=int(handle["seed"]),
                          created=float(handle.get("created", now)),
                          last_used=now,
                          steps_taken=int(handle["steps_taken"]))
        self._sessions[session_id] = session
        if obs_events.enabled():
            obs_events.emit("serve.session", time=now, session=session_id,
                            substrate=substrate, action="adopt")
        return session

    def snapshot(self, session: Session, *,
                 stale_ok: bool = False) -> Tuple[Dict[str, Any], bool]:
        """Return ``(snapshot, stale)`` for the session's current step.

        With ``stale_ok`` (degraded mode) any cached snapshot is returned
        immediately when the exact-step entry is missing, avoiding both
        stepping and rehydration; ``stale`` marks that substitution.
        """
        cached = self.snapshots.get(session.session_id, session.steps_taken)
        if cached is not None:
            return cached, False
        if stale_ok:
            latest = self.snapshots.latest(session.session_id)
            if latest is not None:
                return latest[1], True
        snapshot = dict(self.simulator(session).snapshot())
        self.snapshots.put(session.session_id, session.steps_taken, snapshot)
        return snapshot, False

    def describe(self) -> List[Dict[str, Any]]:
        return [s.describe() for s in self._sessions.values()]
