"""The asyncio simulation server: versioned JSON requests over streams.

``SimulationServer`` exposes the whole :mod:`repro.api` registry as a
service.  The protocol is newline-delimited JSON objects; every request
and response carries the protocol version ``"v"``
(:data:`~repro.serve.protocol.PROTOCOL_VERSION`), every request an
``op`` and every response an ``ok`` flag::

    {"op": "create", "v": 1, "substrate": "cloud", "config": {"steps": 200}}
    {"ok": true, "v": 1, "session": "s000001", "substrate": "cloud"}

    {"op": "step", "v": 1, "session": "s000001", "n": 50}
    {"ok": true, "v": 1, "steps_taken": 50, "metrics": {...}, ...}

Failures are structured: ``{"ok": false, "v": 1, "error": {"code",
"message", "retryable", ...}}`` with codes from the single
:class:`~repro.serve.protocol.ErrorCode` enum (a deprecated top-level
``code`` mirror keeps v0 readers alive).  Requests carrying an
unsupported ``v`` are answered with ``unsupported_version`` and never
reach a handler.

Ops: ``hello``, ``create``, ``step``, ``run`` (to the config's step
budget), ``snapshot``, ``metrics``, ``close``, ``stats``, ``explain``,
plus the cluster pair ``migrate_out`` / ``migrate_in``.

Architecture -- each piece of the serving story lives in its module and
meets here:

* requests pass :class:`~repro.serve.admission.AdmissionController`
  first (shed responses carry ``error.code: shed_rate | shed_queue``);
* stepping work is coalesced by a single batch loop and executed through
  :class:`~repro.serve.batching.BatchDispatcher` off the event loop;
* session state lives in :class:`~repro.serve.sessions.SessionTable`
  (TTL eviction runs as a background task);
* a :class:`~repro.serve.governor.ServeGovernor` periodically senses
  queue depth, arrival rate and request latency and re-expresses pool
  size and admission settings; while degraded, ``snapshot`` serves
  stale cached snapshots instead of touching simulators;
* when wired into a cluster (shared ring / placement map / gossip
  board from :mod:`repro.serve.cluster`), session ops owned elsewhere
  are refused with a retryable ``moved`` error naming the owner, and
  migration moves sessions between nodes via their declarative handles.

Configuration is a frozen :class:`~repro.serve.config.ServerConfig`;
the former bare-keyword constructor still works through a deprecation
shim.  For tests and embedding, :class:`InProcessClient` speaks the
same protocol straight into :meth:`SimulationServer.dispatch` without a
socket.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..api.adapters import SIMULATORS
from ..explain import ExplanationStore
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .admission import ADMIT, AdmissionController
from .batching import BatchDispatcher, StepRequest
from .config import ServerConfig, coerce_server_config
from .gossip import GossipBoard
from .governor import ServeGovernor, StaticGovernor
from .protocol import (PROTOCOL_VERSION, CapabilityError, ErrorCode,
                       check_version, error_code, error_response, ok_response)
from .ring import HashRing
from .sessions import SessionTable, UnknownSession

#: Ops that name an existing session and are therefore subject to the
#: cluster placement ("moved") guard.  The migration pair is exempt:
#: ``migrate_out`` runs on the old owner *after* placement has flipped
#: to the destination, and ``migrate_in`` does its own ownership check.
_PLACED_OPS = frozenset({"step", "run", "snapshot", "metrics", "close"})


def _json_safe(value: Any) -> Any:
    """Causal chains carry raw event fields (actions may be arbitrary
    hashables); rewrite anything non-JSON-native via ``repr`` so the
    wire protocol's plain ``json.dumps`` never chokes."""
    return json.loads(json.dumps(value, default=repr))


class SimulationServer:
    """Serve simulator sessions over asyncio streams.

    Parameters
    ----------
    config:
        A :class:`~repro.serve.config.ServerConfig`.  Bare keyword
        arguments (``SimulationServer(workers=2)``) still work through
        a deprecation shim.  The legacy ``governor`` keyword also
        accepts a prebuilt governor object (anything with ``tick`` /
        ``explain``), which the cluster fabric uses to inject
        :class:`~repro.serve.governor.CollectiveGovernor` instances.
    ring, placements, board:
        Cluster wiring (all-or-nothing, injected by
        :class:`~repro.serve.cluster.ServeCluster`): the shared
        consistent-hash ring, the authoritative session->node placement
        map, and the gossip board.  Single servers leave them ``None``.
    """

    def __init__(self, config: Optional[ServerConfig] = None, *,
                 ring: Optional[HashRing] = None,
                 placements: Optional[Dict[str, str]] = None,
                 board: Optional[GossipBoard] = None,
                 **legacy_kwargs: Any) -> None:
        governor_override = False
        prebuilt_governor: Optional[Any] = None
        if "governor" in legacy_kwargs and not isinstance(
                legacy_kwargs["governor"], str):
            # A prebuilt governor object (or explicit None) is wiring,
            # not configuration: it bypasses the deprecation shim.
            prebuilt_governor = legacy_kwargs.pop("governor")
            governor_override = True
        self.config = cfg = coerce_server_config(config, legacy_kwargs)
        self.host = cfg.host
        self.port = cfg.port
        self.node_id = cfg.node_id
        self.ring = ring
        self.placements = placements
        self.board = board
        prefix = f"{cfg.node_id}-" if placements is not None else ""
        self.sessions = SessionTable(ttl=cfg.ttl,
                                     max_sessions=cfg.max_sessions,
                                     id_prefix=prefix)
        self.dispatcher = BatchDispatcher(workers=cfg.workers,
                                          max_batch=cfg.max_batch)
        self.admission = AdmissionController(rate=cfg.admission_rate,
                                             burst=cfg.admission_burst,
                                             max_queue=cfg.max_queue)
        self.govern_interval = cfg.govern_interval
        self.serve_stale = False
        if governor_override:
            self.governor: Optional[Any] = prebuilt_governor
        elif cfg.governor == "self_aware":
            self.governor = ServeGovernor(
                slo_p95=cfg.slo_p95, min_workers=cfg.min_workers,
                max_workers=cfg.max_workers,
                service_rate_guess=cfg.service_rate_guess, seed=cfg.seed)
        elif cfg.governor == "static":
            self.governor = StaticGovernor(
                pool_size=max(1, cfg.workers),
                service_rate_guess=cfg.service_rate_guess,
                slo_p95=cfg.slo_p95)
        elif cfg.governor == "none":
            self.governor = None
        else:
            raise ValueError(f"unknown server governor {cfg.governor!r}")
        self.requests_seen = 0
        self.requests_completed = 0
        self._window_requests = 0
        self._window_completions = 0
        self._latencies: Deque[float] = deque(maxlen=512)
        self._queue: Optional[asyncio.Queue] = None
        self.explain_store: Optional[ExplanationStore] = None
        self._tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._clock = time.monotonic
        self._handlers = {
            "hello": self._op_hello,
            "create": self._op_create, "step": self._op_step,
            "run": self._op_run, "snapshot": self._op_snapshot,
            "metrics": self._op_metrics, "close": self._op_close,
            "stats": self._op_stats, "explain": self._op_explain,
            "migrate_out": self._op_migrate_out,
            "migrate_in": self._op_migrate_in,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, listen: bool = True) -> "SimulationServer":
        """Start background loops and (optionally) the stream listener."""
        self._queue = asyncio.Queue()
        # The explanation store rides the server's bus for its lifetime;
        # a disabled bus never invokes subscribers, so when telemetry is
        # off the attachment is free (benchmarks pin this down).
        self.explain_store = ExplanationStore().attach(obs_events.get_bus())
        self._tasks = [asyncio.create_task(self._batch_loop()),
                       asyncio.create_task(self._ttl_loop())]
        if self.governor is not None:
            self._tasks.append(asyncio.create_task(self._governor_loop()))
        if listen:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.explain_store is not None:
            self.explain_store.detach()
        self.dispatcher.close()

    # -- the wire ----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    response = error_response(ErrorCode.BAD_REQUEST,
                                              f"unparseable: {exc}")
                else:
                    response = await self.dispatch(request)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one request dict; the socket and in-process entry point."""
        t0 = self._clock()
        self.requests_seen += 1
        self._window_requests += 1
        version_error = check_version(request)
        if version_error is not None:
            return version_error
        op = request.get("op")
        handler = self._handlers.get(op)
        if handler is None:
            return error_response(
                ErrorCode.BAD_REQUEST,
                f"unknown op {op!r}; known: "
                f"{', '.join(sorted(self._handlers))}")
        if op in _PLACED_OPS and self.placements is not None:
            owner = self.placements.get(str(request.get("session")))
            if owner is not None and owner != self.node_id:
                return error_response(
                    ErrorCode.MOVED,
                    f"session owned by node {owner!r}", node=owner)
        if op in ("step", "run"):
            depth = self._queue.qsize() if self._queue is not None else 0
            verdict = self.admission.admit(t0, depth)
            if verdict is not ADMIT:
                return error_response(ErrorCode(verdict),
                                      "overloaded, request shed; retry later")
        try:
            response = await handler(request, t0)
        except UnknownSession as exc:
            return error_response(ErrorCode.UNKNOWN_SESSION,
                                  f"no session {exc.args[0]!r}")
        except (TypeError, ValueError) as exc:
            return error_response(ErrorCode.BAD_REQUEST, str(exc))
        if response.get("ok") is not False:
            response = ok_response(response)
        elapsed = self._clock() - t0
        self._latencies.append(elapsed)
        self.requests_completed += 1
        self._window_completions += 1
        if obs_events.enabled():
            obs_metrics.histogram("serve.request_seconds").observe(elapsed)
            obs_events.emit("serve.request", op=op, seconds=elapsed,
                            ok=bool(response.get("ok")), t=t0,
                            session=request.get("session"))
        return response

    # -- ops ---------------------------------------------------------------

    async def _op_hello(self, request: Dict[str, Any],
                        now: float) -> Dict[str, Any]:
        """Capability negotiation: who am I, what do I speak."""
        payload: Dict[str, Any] = {
            "node": self.node_id,
            "protocol": PROTOCOL_VERSION,
            "ops": sorted(self._handlers),
            "substrates": sorted(SIMULATORS),
        }
        if self.ring is not None:
            payload["ring"] = self.ring.describe()
        return payload

    async def _op_create(self, request: Dict[str, Any],
                         now: float) -> Dict[str, Any]:
        substrate = request.get("substrate")
        if substrate not in SIMULATORS:
            return error_response(
                ErrorCode.BAD_REQUEST,
                f"unknown substrate {substrate!r}; known: "
                f"{', '.join(sorted(SIMULATORS))}")
        config_cls, _ = SIMULATORS[substrate]
        payload = request.get("config") or {}
        config = config_cls(**payload)  # TypeError -> bad_request above
        session = self.sessions.create(now, substrate, config, hydrate=False)
        if self.placements is not None:
            self.placements[session.session_id] = self.node_id
        return {"session": session.session_id, "substrate": substrate,
                "node": self.node_id}

    async def _step_via_batch(self, session: Any, n_steps: int, *,
                              to_budget: bool = False) -> Dict[str, Any]:
        """Queue a step request for the batch loop and await its result.

        The session's lock is held from reading ``steps_taken`` through
        committing the result: concurrent step/run requests for the same
        session serialise, so each executes from the position the
        previous one left, instead of both capturing the same base and
        one update being lost.  With ``to_budget`` the step count is the
        distance to the config's budget, computed under the same lock.
        (Migration takes the same lock, so an in-flight step commits
        before the session's handle is exported.)
        """
        assert self._queue is not None, "server not started"
        async with session.lock:
            if to_budget:
                budget = int(getattr(session.config, "steps", 0))
                n_steps = max(0, budget - session.steps_taken)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            work = StepRequest(session_id=session.session_id,
                               substrate=session.substrate,
                               config=session.config,
                               base_steps=session.steps_taken,
                               n_steps=n_steps)
            await self._queue.put((work, future))
            result = await future
            session.steps_taken = result["steps_taken"]
            self.sessions.snapshots.put(session.session_id,
                                        session.steps_taken,
                                        result["snapshot"])
        return result

    async def _op_step(self, request: Dict[str, Any],
                       now: float) -> Dict[str, Any]:
        n = int(request.get("n", 1))
        if n < 0:
            return error_response(ErrorCode.BAD_REQUEST, "n must be >= 0")
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, n)
        return {"session": session.session_id,
                "steps_taken": result["steps_taken"],
                "metrics": result["metrics"],
                "snapshot": result["snapshot"]}

    async def _op_run(self, request: Dict[str, Any],
                      now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, 0, to_budget=True)
        return {"session": session.session_id,
                "steps_taken": result["steps_taken"],
                "metrics": result["metrics"],
                "snapshot": result["snapshot"]}

    async def _op_snapshot(self, request: Dict[str, Any],
                           now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        cached = self.sessions.snapshots.get(session.session_id,
                                             session.steps_taken)
        stale = False
        if cached is None and self.serve_stale:
            latest = self.sessions.snapshots.latest(session.session_id)
            if latest is not None:
                cached, stale = latest[1], True
        if cached is None:
            result = await self._step_via_batch(session, 0)
            cached = result["snapshot"]
        return {"session": session.session_id,
                "snapshot": cached, "stale": stale}

    async def _op_metrics(self, request: Dict[str, Any],
                          now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, 0)
        return {"session": session.session_id,
                "metrics": result["metrics"]}

    async def _op_close(self, request: Dict[str, Any],
                        now: float) -> Dict[str, Any]:
        session_id = str(request.get("session"))
        self.sessions.close(session_id)
        if self.placements is not None:
            self.placements.pop(session_id, None)
        return {"session": session_id}

    async def _op_stats(self, request: Dict[str, Any],
                        now: float) -> Dict[str, Any]:
        return {"stats": self.stats()}

    async def _op_explain(self, request: Dict[str, Any],
                          now: float) -> Dict[str, Any]:
        """Why the serving layer is doing what it is doing.

        Besides the governor's prose self-explanation, when telemetry is
        on the attached :class:`ExplanationStore` resolves a structured
        causal chain: for ``seq`` when the request names one, else for
        the governor's latest ``serve.scale`` decision -- linking it to
        the prediction, telemetry-window and degradation events that
        caused it.
        """
        explanation = ("No governor: static plumbing only."
                       if self.governor is None else self.governor.explain())
        response: Dict[str, Any] = {"explanation": explanation}
        store = self.explain_store
        if store is not None and store.events_seen:
            seq = request.get("seq")
            if seq is None:
                seq = getattr(self.governor, "last_decision_seq", None)
            if seq is None:
                seq = store.last_decision_seq()
            if seq is not None:
                response["why"] = _json_safe(store.why(int(seq)))
            response["decisions"] = dict(store.counts)
            response["truncated"] = store.truncated
        return response

    # -- migration ---------------------------------------------------------

    async def _op_migrate_out(self, request: Dict[str, Any],
                              now: float) -> Dict[str, Any]:
        """Export a session's declarative handle and drop it here.

        Taken under the session lock, so an in-flight step/run commits
        its ``steps_taken`` update before the handle is cut -- the
        handle always describes a consistent replay point.
        """
        session = self.sessions.get(str(request.get("session")))
        async with session.lock:
            handle = self.sessions.export_handle(session.session_id)
            self.sessions.close(session.session_id)
        if obs_events.enabled():
            obs_events.emit("cluster.migrate", time=now, phase="out",
                            session=handle["session"], node=self.node_id,
                            steps_taken=handle["steps_taken"])
        return {"handle": handle}

    async def _op_migrate_in(self, request: Dict[str, Any],
                             now: float) -> Dict[str, Any]:
        """Adopt a migrated session from its handle (owner-checked)."""
        if self.placements is None:
            return error_response(
                ErrorCode.BAD_REQUEST,
                "migrate_in requires cluster wiring; this server is "
                "not part of a cluster")
        handle = request.get("handle")
        if not isinstance(handle, dict) or "session" not in handle:
            return error_response(ErrorCode.BAD_REQUEST,
                                  "migrate_in needs a handle object")
        session_id = str(handle["session"])
        owner = self.placements.get(session_id)
        if owner != self.node_id:
            return error_response(
                ErrorCode.WRONG_NODE,
                f"session {session_id!r} is placed on {owner!r}, "
                f"not {self.node_id!r}; refusing to adopt",
                node=owner)
        session = self.sessions.adopt(now, handle)
        if obs_events.enabled():
            obs_events.emit("cluster.migrate", time=now, phase="in",
                            session=session_id, node=self.node_id,
                            steps_taken=session.steps_taken)
        return {"session": session_id,
                "steps_taken": session.steps_taken}

    # -- background loops --------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the step queue, coalescing bursts into dispatcher batches."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch: List[Tuple[StepRequest, asyncio.Future]] = [
                await self._queue.get()]
            while len(batch) < self.dispatcher.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [work for work, _ in batch]
            try:
                # With no worker pool submit() is a synchronous
                # in-process call; bouncing it through the default
                # thread executor buys no parallelism and costs two
                # context switches per batch (checked per-batch: the
                # governor may resize the pool at runtime).
                if self.dispatcher.workers == 0:
                    results = self.dispatcher.submit(requests)
                else:
                    results = await loop.run_in_executor(
                        None, self.dispatcher.submit, requests)
            except Exception as exc:  # surface to every waiter
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)

    async def _ttl_loop(self) -> None:
        interval = max(0.05, self.sessions.ttl / 4.0)
        while True:
            await asyncio.sleep(interval)
            expired = self.sessions.evict_expired(self._clock())
            if self.placements is not None:
                for sid in expired:
                    if self.placements.get(sid) == self.node_id:
                        self.placements.pop(sid, None)

    async def _governor_loop(self) -> None:
        assert self.governor is not None
        loop = asyncio.get_running_loop()
        pool = max(1, self.dispatcher.workers)
        while True:
            await asyncio.sleep(self.govern_interval)
            now = self._clock()
            interval = self.govern_interval
            latencies = sorted(self._latencies)
            p95 = (latencies[int(0.95 * (len(latencies) - 1))]
                   if latencies else 0.0)
            arrival = self._window_requests / interval
            completion = self._window_completions / interval
            service = getattr(getattr(self.governor, "model", None),
                              "service_estimate", 1.0)
            capacity = pool * max(1e-9, service)
            decision = self.governor.tick(now, {
                "queue_depth": float(self._queue.qsize()
                                     if self._queue else 0),
                "arrival_rate": arrival,
                "p95_latency": p95,
                "utilisation": min(1.0, arrival / capacity),
                "shed_fraction": self.admission.shed_fraction(),
                "pool_size": float(pool),
                "completion_rate": completion,
            })
            self._window_requests = 0
            self._window_completions = 0
            self.serve_stale = decision.serve_stale
            self.admission.configure(now, rate=decision.admission_rate,
                                     burst=decision.admission_burst,
                                     max_queue=decision.max_queue)
            if (self.dispatcher.workers > 0
                    and decision.pool_target != self.dispatcher.workers):
                await loop.run_in_executor(
                    None, self.dispatcher.resize, decision.pool_target)
            pool = max(1, self.dispatcher.workers)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        latencies = sorted(self._latencies)
        p95 = (latencies[int(0.95 * (len(latencies) - 1))]
               if latencies else 0.0)
        stats = {
            "node": self.node_id,
            "sessions": len(self.sessions),
            "evicted": self.sessions.evicted,
            "requests_seen": self.requests_seen,
            "requests_completed": self.requests_completed,
            "p95_seconds": p95,
            "workers": self.dispatcher.workers,
            "batches_run": self.dispatcher.batches_run,
            "degraded": (bool(self.governor.degraded)
                         if self.governor is not None else False),
            "serve_stale": self.serve_stale,
            "admission": self.admission.snapshot(),
            "snapshot_cache": {"entries": len(self.sessions.snapshots),
                               "hits": self.sessions.snapshots.hits,
                               "misses": self.sessions.snapshots.misses},
        }
        if self.ring is not None:
            stats["ring"] = self.ring.describe()
        return stats


class Client:
    """Line-oriented JSON client over asyncio streams.

    Every request is stamped with the client's protocol version; a
    response reporting ``unsupported_version`` -- or carrying a newer
    ``v`` than this client speaks -- raises
    :class:`~repro.serve.protocol.CapabilityError` instead of being
    returned, so version skew fails loudly at the call site.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    @staticmethod
    def _check_capability(response: Dict[str, Any]) -> Dict[str, Any]:
        if error_code(response) == ErrorCode.UNSUPPORTED_VERSION.value:
            error = response.get("error")
            detail = (error.get("message", "")
                      if isinstance(error, dict) else str(error))
            raise CapabilityError(
                f"server rejected protocol version: {detail}",
                server_version=(error or {}).get("supported")
                if isinstance(error, dict) else None)
        version = response.get("v", PROTOCOL_VERSION)
        if isinstance(version, int) and version > PROTOCOL_VERSION:
            raise CapabilityError(
                f"server speaks protocol v{version}, this client "
                f"speaks v{PROTOCOL_VERSION}", server_version=version)
        return response

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        payload.setdefault("v", PROTOCOL_VERSION)
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return self._check_capability(json.loads(line))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # sugar, shared with InProcessClient / ClusterClient
    async def hello(self) -> Dict[str, Any]:
        return await self.request({"op": "hello"})

    async def create(self, substrate: str, **config: Any) -> Dict[str, Any]:
        return await self.request({"op": "create", "substrate": substrate,
                                   "config": config})

    async def step(self, session: str, n: int = 1) -> Dict[str, Any]:
        return await self.request({"op": "step", "session": session, "n": n})

    async def run(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "run", "session": session})

    async def snapshot(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "snapshot", "session": session})

    async def metrics(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "metrics", "session": session})

    async def close_session(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "close", "session": session})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"op": "stats"})


class InProcessClient(Client):
    """The same client surface wired straight into ``dispatch`` -- no
    socket, no serialisation beyond the JSON-safety the batch layer
    already enforces.  The unit-test entry point."""

    def __init__(self, server: SimulationServer) -> None:  # noqa: super
        self._server = server

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        payload.setdefault("v", PROTOCOL_VERSION)
        return self._check_capability(await self._server.dispatch(payload))

    async def close(self) -> None:
        return None
