"""The asyncio simulation server: JSON requests over streams.

``SimulationServer`` exposes the whole :mod:`repro.api` registry as a
service.  The protocol is newline-delimited JSON objects; every request
carries an ``op`` and every response an ``ok`` flag::

    {"op": "create", "substrate": "cloud", "config": {"steps": 200}}
    {"ok": true, "session": "s000001", "substrate": "cloud"}

    {"op": "step", "session": "s000001", "n": 50}
    {"ok": true, "steps_taken": 50, "metrics": {...}, "snapshot": {...}}

Ops: ``create``, ``step``, ``run`` (to the config's step budget),
``snapshot``, ``metrics``, ``close``, ``stats``, ``explain``.

Architecture -- each piece of the serving story lives in its module and
meets here:

* requests pass :class:`~repro.serve.admission.AdmissionController`
  first (shed responses carry ``code: shed_rate | shed_queue``);
* stepping work is coalesced by a single batch loop and executed through
  :class:`~repro.serve.batching.BatchDispatcher` off the event loop;
* session state lives in :class:`~repro.serve.sessions.SessionTable`
  (TTL eviction runs as a background task);
* a :class:`~repro.serve.governor.ServeGovernor` periodically senses
  queue depth, arrival rate and request latency and re-expresses pool
  size and admission settings; while degraded, ``snapshot`` serves
  stale cached snapshots instead of touching simulators.

For tests and embedding, :class:`InProcessClient` speaks the same
protocol straight into :meth:`SimulationServer.dispatch` without a
socket.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..api.adapters import SIMULATORS
from ..explain import ExplanationStore
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .admission import ADMIT, AdmissionController
from .batching import BatchDispatcher, StepRequest
from .governor import ServeGovernor, StaticGovernor
from .sessions import SessionTable, UnknownSession


def _error(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "code": code, "error": message}


def _json_safe(value: Any) -> Any:
    """Causal chains carry raw event fields (actions may be arbitrary
    hashables); rewrite anything non-JSON-native via ``repr`` so the
    wire protocol's plain ``json.dumps`` never chokes."""
    return json.loads(json.dumps(value, default=repr))


class SimulationServer:
    """Serve simulator sessions over asyncio streams.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        ``.port`` after :meth:`start`).
    workers:
        :class:`BatchDispatcher` pool size; ``0`` steps in-process.
    governor:
        ``"self_aware"``, ``"static"`` or ``"none"``.
    slo_p95:
        The latency SLO handed to the governor, in seconds.
    service_rate_guess:
        Initial belief about requests/second one worker sustains.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, max_batch: int = 8,
                 governor: str = "self_aware",
                 min_workers: int = 1, max_workers: int = 4,
                 ttl: float = 300.0, max_sessions: int = 256,
                 admission_rate: float = 200.0,
                 admission_burst: float = 400.0,
                 max_queue: float = 512.0,
                 slo_p95: float = 0.25,
                 service_rate_guess: float = 200.0,
                 govern_interval: float = 1.0,
                 seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.sessions = SessionTable(ttl=ttl, max_sessions=max_sessions)
        self.dispatcher = BatchDispatcher(workers=workers,
                                          max_batch=max_batch)
        self.admission = AdmissionController(rate=admission_rate,
                                             burst=admission_burst,
                                             max_queue=max_queue)
        self.govern_interval = govern_interval
        self.serve_stale = False
        if governor == "self_aware":
            self.governor: Optional[Any] = ServeGovernor(
                slo_p95=slo_p95, min_workers=min_workers,
                max_workers=max_workers,
                service_rate_guess=service_rate_guess, seed=seed)
        elif governor == "static":
            self.governor = StaticGovernor(
                pool_size=max(1, workers),
                service_rate_guess=service_rate_guess, slo_p95=slo_p95)
        elif governor == "none":
            self.governor = None
        else:
            raise ValueError(f"unknown server governor {governor!r}")
        self.requests_seen = 0
        self.requests_completed = 0
        self._window_requests = 0
        self._window_completions = 0
        self._latencies: Deque[float] = deque(maxlen=512)
        self._queue: Optional[asyncio.Queue] = None
        self.explain_store: Optional[ExplanationStore] = None
        self._tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._clock = time.monotonic
        self._handlers = {
            "create": self._op_create, "step": self._op_step,
            "run": self._op_run, "snapshot": self._op_snapshot,
            "metrics": self._op_metrics, "close": self._op_close,
            "stats": self._op_stats, "explain": self._op_explain,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, listen: bool = True) -> "SimulationServer":
        """Start background loops and (optionally) the stream listener."""
        self._queue = asyncio.Queue()
        # The explanation store rides the server's bus for its lifetime;
        # a disabled bus never invokes subscribers, so when telemetry is
        # off the attachment is free (benchmarks pin this down).
        self.explain_store = ExplanationStore().attach(obs_events.get_bus())
        self._tasks = [asyncio.create_task(self._batch_loop()),
                       asyncio.create_task(self._ttl_loop())]
        if self.governor is not None:
            self._tasks.append(asyncio.create_task(self._governor_loop()))
        if listen:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.explain_store is not None:
            self.explain_store.detach()
        self.dispatcher.close()

    # -- the wire ----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    response = _error("bad_request", f"unparseable: {exc}")
                else:
                    response = await self.dispatch(request)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one request dict; the socket and in-process entry point."""
        t0 = self._clock()
        self.requests_seen += 1
        self._window_requests += 1
        op = request.get("op")
        handler = self._handlers.get(op)
        if handler is None:
            return _error("bad_request",
                          f"unknown op {op!r}; known: "
                          f"{', '.join(sorted(self._handlers))}")
        if op in ("step", "run"):
            depth = self._queue.qsize() if self._queue is not None else 0
            verdict = self.admission.admit(t0, depth)
            if verdict is not ADMIT:
                return _error(verdict,
                              "overloaded, request shed; retry later")
        try:
            response = await handler(request, t0)
        except UnknownSession as exc:
            return _error("unknown_session", f"no session {exc.args[0]!r}")
        except (TypeError, ValueError) as exc:
            return _error("bad_request", str(exc))
        elapsed = self._clock() - t0
        self._latencies.append(elapsed)
        self.requests_completed += 1
        self._window_completions += 1
        if obs_events.enabled():
            obs_metrics.histogram("serve.request_seconds").observe(elapsed)
            obs_events.emit("serve.request", op=op, seconds=elapsed,
                            ok=bool(response.get("ok")))
        return response

    # -- ops ---------------------------------------------------------------

    async def _op_create(self, request: Dict[str, Any],
                         now: float) -> Dict[str, Any]:
        substrate = request.get("substrate")
        if substrate not in SIMULATORS:
            return _error("bad_request",
                          f"unknown substrate {substrate!r}; known: "
                          f"{', '.join(sorted(SIMULATORS))}")
        config_cls, _ = SIMULATORS[substrate]
        payload = request.get("config") or {}
        config = config_cls(**payload)  # TypeError -> bad_request above
        session = self.sessions.create(now, substrate, config, hydrate=False)
        return {"ok": True, "session": session.session_id,
                "substrate": substrate}

    async def _step_via_batch(self, session: Any, n_steps: int, *,
                              to_budget: bool = False) -> Dict[str, Any]:
        """Queue a step request for the batch loop and await its result.

        The session's lock is held from reading ``steps_taken`` through
        committing the result: concurrent step/run requests for the same
        session serialise, so each executes from the position the
        previous one left, instead of both capturing the same base and
        one update being lost.  With ``to_budget`` the step count is the
        distance to the config's budget, computed under the same lock.
        """
        assert self._queue is not None, "server not started"
        async with session.lock:
            if to_budget:
                budget = int(getattr(session.config, "steps", 0))
                n_steps = max(0, budget - session.steps_taken)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            work = StepRequest(session_id=session.session_id,
                               substrate=session.substrate,
                               config=session.config,
                               base_steps=session.steps_taken,
                               n_steps=n_steps)
            await self._queue.put((work, future))
            result = await future
            session.steps_taken = result["steps_taken"]
            self.sessions.snapshots.put(session.session_id,
                                        session.steps_taken,
                                        result["snapshot"])
        return result

    async def _op_step(self, request: Dict[str, Any],
                       now: float) -> Dict[str, Any]:
        n = int(request.get("n", 1))
        if n < 0:
            return _error("bad_request", "n must be >= 0")
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, n)
        return {"ok": True, "session": session.session_id,
                "steps_taken": result["steps_taken"],
                "metrics": result["metrics"],
                "snapshot": result["snapshot"]}

    async def _op_run(self, request: Dict[str, Any],
                      now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, 0, to_budget=True)
        return {"ok": True, "session": session.session_id,
                "steps_taken": result["steps_taken"],
                "metrics": result["metrics"],
                "snapshot": result["snapshot"]}

    async def _op_snapshot(self, request: Dict[str, Any],
                           now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        cached = self.sessions.snapshots.get(session.session_id,
                                             session.steps_taken)
        stale = False
        if cached is None and self.serve_stale:
            latest = self.sessions.snapshots.latest(session.session_id)
            if latest is not None:
                cached, stale = latest[1], True
        if cached is None:
            result = await self._step_via_batch(session, 0)
            cached = result["snapshot"]
        return {"ok": True, "session": session.session_id,
                "snapshot": cached, "stale": stale}

    async def _op_metrics(self, request: Dict[str, Any],
                          now: float) -> Dict[str, Any]:
        session = self.sessions.get(str(request.get("session")), now)
        result = await self._step_via_batch(session, 0)
        return {"ok": True, "session": session.session_id,
                "metrics": result["metrics"]}

    async def _op_close(self, request: Dict[str, Any],
                        now: float) -> Dict[str, Any]:
        session_id = str(request.get("session"))
        self.sessions.close(session_id)
        return {"ok": True, "session": session_id}

    async def _op_stats(self, request: Dict[str, Any],
                        now: float) -> Dict[str, Any]:
        return {"ok": True, "stats": self.stats()}

    async def _op_explain(self, request: Dict[str, Any],
                          now: float) -> Dict[str, Any]:
        """Why the serving layer is doing what it is doing.

        Besides the governor's prose self-explanation, when telemetry is
        on the attached :class:`ExplanationStore` resolves a structured
        causal chain: for ``seq`` when the request names one, else for
        the governor's latest ``serve.scale`` decision -- linking it to
        the prediction, telemetry-window and degradation events that
        caused it.
        """
        explanation = ("No governor: static plumbing only."
                       if self.governor is None else self.governor.explain())
        response: Dict[str, Any] = {"ok": True, "explanation": explanation}
        store = self.explain_store
        if store is not None and store.events_seen:
            seq = request.get("seq")
            if seq is None:
                seq = getattr(self.governor, "last_decision_seq", None)
            if seq is None:
                seq = store.last_decision_seq()
            if seq is not None:
                response["why"] = _json_safe(store.why(int(seq)))
            response["decisions"] = dict(store.counts)
            response["truncated"] = store.truncated
        return response

    # -- background loops --------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the step queue, coalescing bursts into dispatcher batches."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch: List[Tuple[StepRequest, asyncio.Future]] = [
                await self._queue.get()]
            while len(batch) < self.dispatcher.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [work for work, _ in batch]
            try:
                # With no worker pool submit() is a synchronous
                # in-process call; bouncing it through the default
                # thread executor buys no parallelism and costs two
                # context switches per batch (checked per-batch: the
                # governor may resize the pool at runtime).
                if self.dispatcher.workers == 0:
                    results = self.dispatcher.submit(requests)
                else:
                    results = await loop.run_in_executor(
                        None, self.dispatcher.submit, requests)
            except Exception as exc:  # surface to every waiter
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)

    async def _ttl_loop(self) -> None:
        interval = max(0.05, self.sessions.ttl / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.sessions.evict_expired(self._clock())

    async def _governor_loop(self) -> None:
        assert self.governor is not None
        loop = asyncio.get_running_loop()
        pool = max(1, self.dispatcher.workers)
        while True:
            await asyncio.sleep(self.govern_interval)
            now = self._clock()
            interval = self.govern_interval
            latencies = sorted(self._latencies)
            p95 = (latencies[int(0.95 * (len(latencies) - 1))]
                   if latencies else 0.0)
            arrival = self._window_requests / interval
            completion = self._window_completions / interval
            service = getattr(getattr(self.governor, "model", None),
                              "service_estimate", 1.0)
            capacity = pool * max(1e-9, service)
            decision = self.governor.tick(now, {
                "queue_depth": float(self._queue.qsize()
                                     if self._queue else 0),
                "arrival_rate": arrival,
                "p95_latency": p95,
                "utilisation": min(1.0, arrival / capacity),
                "shed_fraction": self.admission.shed_fraction(),
                "pool_size": float(pool),
                "completion_rate": completion,
            })
            self._window_requests = 0
            self._window_completions = 0
            self.serve_stale = decision.serve_stale
            self.admission.configure(now, rate=decision.admission_rate,
                                     burst=decision.admission_burst,
                                     max_queue=decision.max_queue)
            if (self.dispatcher.workers > 0
                    and decision.pool_target != self.dispatcher.workers):
                await loop.run_in_executor(
                    None, self.dispatcher.resize, decision.pool_target)
            pool = max(1, self.dispatcher.workers)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        latencies = sorted(self._latencies)
        p95 = (latencies[int(0.95 * (len(latencies) - 1))]
               if latencies else 0.0)
        return {
            "sessions": len(self.sessions),
            "evicted": self.sessions.evicted,
            "requests_seen": self.requests_seen,
            "requests_completed": self.requests_completed,
            "p95_seconds": p95,
            "workers": self.dispatcher.workers,
            "batches_run": self.dispatcher.batches_run,
            "degraded": (bool(self.governor.degraded)
                         if self.governor is not None else False),
            "serve_stale": self.serve_stale,
            "admission": self.admission.snapshot(),
            "snapshot_cache": {"entries": len(self.sessions.snapshots),
                               "hits": self.sessions.snapshots.hits,
                               "misses": self.sessions.snapshots.misses},
        }


class Client:
    """Line-oriented JSON client over asyncio streams."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # sugar, shared with InProcessClient via _ClientOps
    async def create(self, substrate: str, **config: Any) -> Dict[str, Any]:
        return await self.request({"op": "create", "substrate": substrate,
                                   "config": config})

    async def step(self, session: str, n: int = 1) -> Dict[str, Any]:
        return await self.request({"op": "step", "session": session, "n": n})

    async def run(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "run", "session": session})

    async def snapshot(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "snapshot", "session": session})

    async def metrics(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "metrics", "session": session})

    async def close_session(self, session: str) -> Dict[str, Any]:
        return await self.request({"op": "close", "session": session})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"op": "stats"})


class InProcessClient(Client):
    """The same client surface wired straight into ``dispatch`` -- no
    socket, no serialisation beyond the JSON-safety the batch layer
    already enforces.  The unit-test entry point."""

    def __init__(self, server: SimulationServer) -> None:  # noqa: super
        self._server = server

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return await self._server.dispatch(payload)

    async def close(self) -> None:
        return None
