"""Micro-batching: coalesce step requests and execute them on a pool.

The serving layer's throughput engine.  Step requests arriving close
together are coalesced into per-substrate batches and executed by a
picklable module-level worker function -- the same machinery shape the
parallel experiment engine uses for its shards -- on a bounded
``ProcessPoolExecutor``.

Correctness rests entirely on the :mod:`repro.api` replay guarantee.  A
work item is declarative: ``(substrate, config, base_steps, n_steps)``.
Any worker can execute it from scratch by rehydrating the simulator from
the config, replaying ``base_steps`` and stepping ``n_steps`` more.  As
a fast path each worker process keeps a small cache of live simulators
(keyed by session id) and steps them *incrementally* when the cached
instance sits exactly at ``base_steps`` -- and because replay is
byte-identical, the cached and from-scratch paths produce identical
results, so batching, worker count and cache hits are all invisible in
the output.  ``workers=0`` runs the very same worker function in-process
(no pool), which is what the determinism tests compare against.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..api.adapters import make_simulator
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics


@dataclass(frozen=True)
class StepRequest:
    """One declarative unit of stepping work.

    ``base_steps`` is the session's current position (steps already
    taken); ``n_steps`` how many further steps to execute.  The pair
    makes the item self-contained: no simulator state travels with it.
    """

    session_id: str
    substrate: str
    config: Any
    base_steps: int
    n_steps: int


def _json_safe(value: Any) -> Any:
    """Round-trip through JSON so results match the wire format exactly."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return repr(value)


#: Per-process simulator cache: session id -> (config, sim, steps_taken).
#: Lives at module level so pool workers retain it across batches.
_WORKER_CACHE: "OrderedDict[str, Tuple[Any, Any, int]]" = OrderedDict()
_WORKER_CACHE_LIMIT = 64


def _materialise(request: StepRequest) -> Any:
    """A simulator positioned at ``base_steps``, via cache or replay."""
    cached = _WORKER_CACHE.get(request.session_id)
    if cached is not None:
        config, sim, steps = cached
        if config == request.config and steps == request.base_steps:
            _WORKER_CACHE.move_to_end(request.session_id)
            return sim
        del _WORKER_CACHE[request.session_id]
    sim = make_simulator(request.substrate, request.config)
    sim.reset(int(getattr(request.config, "seed", 0)))
    for _ in range(request.base_steps):
        sim.step()
    return sim


def run_step_batch(requests: Sequence[StepRequest]) -> List[Dict[str, Any]]:
    """Execute a batch of step requests; picklable pool entry point.

    Returns one JSON-safe result per request, in order:
    ``{"session", "steps_taken", "metrics", "snapshot"}``.
    """
    results: List[Dict[str, Any]] = []
    for request in requests:
        sim = _materialise(request)
        for _ in range(request.n_steps):
            sim.step()
        steps_taken = request.base_steps + request.n_steps
        _WORKER_CACHE[request.session_id] = (request.config, sim, steps_taken)
        _WORKER_CACHE.move_to_end(request.session_id)
        while len(_WORKER_CACHE) > _WORKER_CACHE_LIMIT:
            _WORKER_CACHE.popitem(last=False)
        results.append({
            "session": request.session_id,
            "steps_taken": steps_taken,
            "metrics": _json_safe(sim.metrics()),
            "snapshot": _json_safe(sim.snapshot()),
        })
    return results


class BatchDispatcher:
    """Coalesce step requests per substrate and run them on a bounded pool.

    Parameters
    ----------
    workers:
        Pool size.  ``0`` executes batches synchronously in-process --
        the reference path determinism is measured against, and the
        right choice for tests and single-core hosts.
    max_batch:
        Largest number of requests handed to one worker invocation.
        Batches group by substrate first: simulator code and caches are
        substrate-local, so mixed batches would thrash the workers.
    """

    def __init__(self, *, workers: int = 0, max_batch: int = 8) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._workers = workers
        self.max_batch = max_batch
        self._pool: ProcessPoolExecutor | None = None
        # submit() and resize() arrive from different executor threads
        # (the server's batch loop vs. its governor loop); without mutual
        # exclusion a resize can shut the pool down under an in-flight
        # submit, which then raises "cannot schedule new futures after
        # shutdown".  Reentrant because resize() calls close().
        self._lock = threading.RLock()
        self.batches_run = 0
        self.requests_run = 0

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def _plan(self, requests: Sequence[StepRequest]) \
            -> List[List[Tuple[int, StepRequest]]]:
        """Group by substrate, preserve order, cap at ``max_batch``."""
        by_substrate: "OrderedDict[str, List[Tuple[int, StepRequest]]]" = OrderedDict()
        for index, request in enumerate(requests):
            by_substrate.setdefault(request.substrate, []).append((index, request))
        batches: List[List[Tuple[int, StepRequest]]] = []
        for items in by_substrate.values():
            for at in range(0, len(items), self.max_batch):
                batches.append(items[at:at + self.max_batch])
        return batches

    def submit(self, requests: Sequence[StepRequest]) -> List[Dict[str, Any]]:
        """Execute ``requests``; results align with the input order."""
        if not requests:
            return []
        with self._lock:
            batches = self._plan(requests)
            results: List[Dict[str, Any]] = [None] * len(requests)  # type: ignore
            if self._workers == 0:
                outputs = [run_step_batch([r for _, r in batch])
                           for batch in batches]
            else:
                pool = self._ensure_pool()
                futures = [pool.submit(run_step_batch, [r for _, r in batch])
                           for batch in batches]
                outputs = [future.result() for future in futures]
        for batch, output in zip(batches, outputs):
            for (index, _), result in zip(batch, output):
                results[index] = result
        self.batches_run += len(batches)
        self.requests_run += len(requests)
        if obs_events.enabled():
            obs_metrics.counter("serve.batches").increment(len(batches))
            obs_events.emit("serve.batch", requests=len(requests),
                            batches=len(batches),
                            sizes=[len(b) for b in batches])
        return results

    def resize(self, workers: int) -> None:
        """Change the pool size (the governor's other actuator).

        The old pool is drained and discarded; worker caches go with it,
        which is safe because every item is executable from scratch.
        """
        if workers < 0:
            raise ValueError("workers must be >= 0")
        with self._lock:
            if workers == self._workers:
                return
            self.close()
            self._workers = workers

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
