"""The serve governor: the serving layer as a self-aware system.

Everything else in :mod:`repro.serve` is conventional server plumbing;
this module is where the paper's loop closes over it.  The governor is a
:class:`~repro.core.node.SelfAwareNode` assembled from the framework's
own primitives, mapped onto the serving problem:

===================  ======================================================
Paper capability      Realisation here
===================  ======================================================
Stimulus awareness    :class:`~repro.core.sensors.Sensor` s over queue
                      depth, arrival rate, p95 latency, utilisation and
                      shed fraction, feeding the node's knowledge base
Time awareness        the node's TIME level adds window means/trends of
                      those phenomena to the decision context
Goal awareness        a live :class:`~repro.core.goals.Goal`: maximise
                      goodput, minimise latency and pool cost, under a
                      hard p95-latency SLO :class:`Constraint`
Self-model            :class:`ServeSelfModel` -- a capacity model whose
                      arrival rate and *per-worker service rate* are
                      learned from telemetry, never taken from a spec
                      sheet, with confidence earned through prediction
                      accuracy
Self-expression       the returned :class:`GovernorDecision`: resize the
                      worker pool, retune admission rate and queue bound
Meta-self-awareness   :class:`~repro.faults.degrade.DegradationMonitor`
                      watching the self-model's confidence; while
                      degraded the governor holds the last good pool
                      size, tightens admission and flags stale-snapshot
                      serving
===================  ======================================================

Sans-io and deterministic under a seed: the same governor instance runs
against the asyncio server's wall clock and inside the discrete-time
:class:`~repro.serve.simulation.ServingSimulation` that E14 scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional

import numpy as np

from ..core.goals import Constraint, Goal, Objective
from ..core.levels import CapabilityProfile, SelfAwarenessLevel
from ..core.models import PredictiveModel
from ..core.node import SelfAwareNode
from ..core.reasoner import UtilityReasoner
from ..core.sensors import Sensor, SensorSuite
from ..core.spans import private
from ..faults.degrade import HOLD_LAST_GOOD, DegradationMonitor
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .gossip import GossipBoard, NodeSelfView, budget_shares

#: The telemetry phenomena the governor senses each tick.
STAT_KEYS = ("queue_depth", "arrival_rate", "p95_latency", "utilisation",
             "shed_fraction", "pool_size", "completion_rate")


def make_serve_goal(*, slo_p95: float, max_workers: int,
                    goodput_scale: float,
                    goodput_weight: float = 0.6,
                    latency_weight: float = 0.2,
                    cost_weight: float = 0.2) -> Goal:
    """The serving goal: goodput up, latency and pool cost down, SLO hard.

    The p95 SLO is a :class:`Constraint`, not a weighted objective --
    candidates predicted to violate it are infeasible outright, and when
    *every* candidate violates it the reasoner's least-violation fallback
    pushes toward the largest capacity (violation shrinks with pool
    size), which is exactly the recovery direction.
    """
    return Goal(
        objectives=[
            Objective("goodput", maximise=True, lo=0.0, hi=goodput_scale),
            Objective("latency", maximise=False, lo=0.0, hi=4.0 * slo_p95),
            Objective("pool", maximise=False, lo=0.0, hi=float(max_workers)),
        ],
        weights={"goodput": goodput_weight, "latency": latency_weight,
                 "pool": cost_weight},
        constraints=[Constraint("latency", "max", slo_p95)],
        name="serve")


class ServeSelfModel(PredictiveModel):
    """Learned capacity model of the serving system itself.

    Holds two online estimates -- the offered arrival rate and the
    per-worker service rate -- and predicts, for a candidate pool size
    ``n``, the goodput and p95 latency the system would realise.  The
    latency prediction is the M/M/1-flavoured sojourn time
    ``(1 / service_rate) / (1 - rho)`` (clipped), with amortised backlog
    drain folded into the offered work.  Scaling the blow-up by the
    learned mean service time keeps the prediction in whatever unit the
    telemetry and ``slo_p95`` use -- ticks in the discrete simulation,
    seconds on the live server -- so the SLO constraint stays feasible
    and prediction error stays meaningful in both.  It is deliberately
    coarse -- what matters is that it is *monotone and learned*, so the
    reasoner's choices track reality as the estimates converge.

    Confidence is earned, not assumed: it grows with observation count
    and is discounted by the model's recent relative prediction error.
    Under telemetry corruption (sensor-noise faults) predictions diverge
    from realised outcomes, confidence collapses, and the
    :class:`~repro.faults.degrade.DegradationMonitor` trips -- the
    meta-level noticing that the self-model has gone stale.
    """

    def __init__(self, *, service_rate_guess: float, slo_p95: float,
                 drain_horizon: float = 4.0, ewma: float = 0.25,
                 warmup_observations: int = 8) -> None:
        if service_rate_guess <= 0:
            raise ValueError("service_rate_guess must be positive")
        self._service_guess = service_rate_guess
        self._slo = slo_p95
        self._horizon = drain_horizon
        self._ewma = ewma
        self._warmup = max(1, warmup_observations)
        self.reset()

    def reset(self) -> None:
        self.arrival_estimate: Optional[float] = None
        self.service_estimate = self._service_guess
        self._observations = 0
        self._error_ewma = 0.0
        self._last_prediction: Optional[Dict[str, float]] = None

    # -- online learning ---------------------------------------------------

    def observe(self, *, arrival_rate: float, utilisation: float,
                completion_rate: float, pool_size: float) -> None:
        """Fold one tick of telemetry into the estimates.

        The per-worker service rate is only learnable from *saturated*
        ticks (idle workers reveal nothing about their ceiling) -- the
        same principle the cloud scaler's capacity self-model uses.
        """
        self._observations += 1
        if math.isfinite(arrival_rate) and arrival_rate >= 0.0:
            if self.arrival_estimate is None:
                self.arrival_estimate = arrival_rate
            else:
                self.arrival_estimate += self._ewma * (
                    arrival_rate - self.arrival_estimate)
        if (pool_size >= 1.0 and utilisation >= 0.95
                and math.isfinite(completion_rate) and completion_rate > 0.0):
            observed = completion_rate / pool_size
            self.service_estimate += self._ewma * (
                observed - self.service_estimate)

    # -- PredictiveModel ---------------------------------------------------

    def predict(self, context: Mapping[str, float],
                action: Hashable) -> Dict[str, float]:
        n = max(1, int(action))
        arrival = context.get("arrival_rate",
                              self.arrival_estimate
                              if self.arrival_estimate is not None else 0.0)
        queue = max(0.0, context.get("queue_depth", 0.0))
        capacity = n * max(1e-9, self.service_estimate)
        # Offered work per tick: fresh arrivals plus the backlog amortised
        # over the drain horizon.
        offered = max(0.0, arrival) + queue / self._horizon
        rho = offered / capacity
        # Mean service time carries the unit (ticks or seconds): the
        # sojourn prediction must be commensurable with the measured
        # p95 and the SLO, or the constraint can never be satisfied.
        service_time = 1.0 / max(1e-9, self.service_estimate)
        if rho < 1.0:
            latency = min(4.0 * self._slo,
                          service_time / max(1e-9, 1.0 - rho))
        else:
            latency = 4.0 * self._slo
        goodput = min(offered, capacity)
        prediction = {"goodput": goodput, "latency": latency,
                      "pool": float(n)}
        self._last_prediction = prediction
        return prediction

    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        """Track realised-vs-predicted error (the confidence signal)."""
        predicted = self.predict(context, action)
        error = 0.0
        terms = 0
        for key, scale in (("goodput", max(1.0, predicted["goodput"])),
                           ("latency", self._slo)):
            actual = outcome.get(key)
            if actual is None or not math.isfinite(actual):
                continue
            error += abs(actual - predicted[key]) / scale
            terms += 1
        if terms:
            self._error_ewma += self._ewma * (error / terms - self._error_ewma)

    def confidence(self, context: Mapping[str, float],
                   action: Hashable) -> float:
        maturity = min(1.0, self._observations / self._warmup)
        accuracy = 1.0 / (1.0 + 2.0 * self._error_ewma)
        return maturity * accuracy


@dataclass(frozen=True)
class GovernorDecision:
    """One act of self-expression: the settings the serving layer should adopt."""

    pool_target: int
    admission_rate: float
    admission_burst: float
    max_queue: float
    serve_stale: bool
    degraded: bool
    reason: str


class ServeGovernor:
    """Self-aware controller for pool size and admission settings.

    Call :meth:`tick` periodically with fresh telemetry (the
    :data:`STAT_KEYS` readings); it closes the previous decision's
    feedback loop, deliberates, passes the choice through the
    degradation monitor and returns a :class:`GovernorDecision`.
    """

    def __init__(self, *, slo_p95: float = 8.0, min_workers: int = 1,
                 max_workers: int = 16, service_rate_guess: float = 4.0,
                 admit_headroom: float = 1.25,
                 degraded_admission: float = 0.5,
                 queue_ticks: Optional[float] = None,
                 epsilon: float = 0.02, seed: int = 0) -> None:
        if not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if admit_headroom < 1.0:
            raise ValueError("admit_headroom must be >= 1")
        if not 0.0 < degraded_admission <= 1.0:
            raise ValueError("degraded_admission must be in (0, 1]")
        self.slo_p95 = slo_p95
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.admit_headroom = admit_headroom
        self.degraded_admission = degraded_admission
        # Queue bound in ticks of drain time: a queue no deeper than
        # (slo - 2) ticks of capacity keeps waiting time inside the SLO
        # by construction, whatever the self-model currently believes.
        self.queue_ticks = (max(1.0, slo_p95 - 2.0) if queue_ticks is None
                            else queue_ticks)
        self._stats: Dict[str, float] = dict.fromkeys(STAT_KEYS, 0.0)
        self.model = ServeSelfModel(service_rate_guess=service_rate_guess,
                                    slo_p95=slo_p95)
        self.goal = make_serve_goal(
            slo_p95=slo_p95, max_workers=max_workers,
            goodput_scale=max_workers * service_rate_guess)
        rng = np.random.default_rng(seed)
        self.node = SelfAwareNode(
            name="serve.governor",
            profile=CapabilityProfile.of(SelfAwarenessLevel.STIMULUS,
                                         SelfAwarenessLevel.TIME,
                                         SelfAwarenessLevel.GOAL),
            sensors=SensorSuite([
                Sensor(private(key), read_fn=self._reader(key))
                for key in STAT_KEYS]),
            reasoner=UtilityReasoner(goal=self.goal, model=self.model,
                                     epsilon=epsilon,
                                     confidence_floor=0.25, rng=rng))
        self.monitor = DegradationMonitor(HOLD_LAST_GOOD, threshold=0.30,
                                          recover_threshold=0.45, window=3)
        self._actions = tuple(range(min_workers, max_workers + 1))
        self._pool = min_workers
        self._decided_once = False
        #: Seq of the most recent ``serve.scale`` event -- the handle the
        #: server's ``explain`` op resolves into a causal chain.
        self.last_decision_seq: Optional[int] = None

    def _reader(self, key: str):
        return lambda: self._stats[key]

    @property
    def pool_target(self) -> int:
        return self._pool

    @property
    def degraded(self) -> bool:
        return self.monitor.degraded

    # ------------------------------------------------------------------

    def tick(self, now: float, stats: Mapping[str, float]) -> GovernorDecision:
        """One governance cycle over fresh telemetry."""
        for key in STAT_KEYS:
            value = float(stats.get(key, 0.0))
            self._stats[key] = value if math.isfinite(value) else 0.0

        # The telemetry window this cycle deliberates over is itself an
        # event; everything decided inside the scope below -- the node's
        # step, any degradation transition, the scale decision -- is
        # causally downstream of it (see repro.explain).
        telemetry_event = None
        if obs_events.enabled():
            telemetry_event = obs_events.emit(
                "serve.telemetry", time=now,
                **{key: self._stats[key] for key in STAT_KEYS})
        with obs_events.causal_scope(telemetry_event):
            # 1. Close the loop on the previous decision: what actually
            #    happened.
            if self._decided_once:
                self.node.feedback({
                    "goodput": self._stats["completion_rate"],
                    "latency": self._stats["p95_latency"],
                    "pool": float(self._pool)})

            # 2. Refresh the self-model's online estimates.
            self.model.observe(
                arrival_rate=self._stats["arrival_rate"],
                utilisation=self._stats["utilisation"],
                completion_rate=self._stats["completion_rate"],
                pool_size=self._stats["pool_size"])

            # 3. Deliberate, then let the meta level veto a low-confidence
            #    choice.
            result = self.node.step(now, self._actions)
            self._decided_once = True
            predict_event = None
            if obs_events.enabled():
                chosen = result.decision.action
                predicted = self.model.predict(result.context, chosen)
                predict_event = obs_events.emit(
                    "serve.predict", time=now, pool=int(chosen),
                    goodput=predicted["goodput"],
                    latency=predicted["latency"],
                    confidence=self.model.confidence(result.context, chosen))
            applied = self.monitor.filter_action(
                now, self.node, result.context, result.decision.action)
            pool = int(applied)
            resized = pool != self._pool
            self._pool = pool

            # 4. Express: derive admission settings from the chosen
            #    capacity.
            capacity = pool * self.model.service_estimate
            admission_rate = capacity * self.admit_headroom
            degraded = self.monitor.degraded
            if degraded:
                admission_rate *= self.degraded_admission
            decision = GovernorDecision(
                pool_target=pool,
                admission_rate=max(1e-6, admission_rate),
                admission_burst=max(1.0, capacity),
                max_queue=max(1.0, math.ceil(capacity * self.queue_ticks)),
                serve_stale=degraded,
                degraded=degraded,
                reason=result.decision.reason,
            )
            if obs_events.enabled():
                obs_metrics.gauge("serve.pool_target").set(float(pool))
                if resized:
                    obs_metrics.counter("serve.scale").increment()
                # The decision cites its evidence: the model's prediction
                # and (via the scope) the telemetry window, plus the open
                # degradation episode when the monitor shaped the choice.
                scale_event = obs_events.emit(
                    "serve.scale", time=now, pool=pool,
                    resized=resized, degraded=degraded,
                    admission_rate=decision.admission_rate,
                    max_queue=decision.max_queue,
                    confidence=self.monitor.last_confidence,
                    causes=(predict_event, self.monitor.cause_seq))
                if scale_event is not None:
                    self.last_decision_seq = scale_event.seq
        return decision

    def explain(self) -> str:
        """Why the governor just did what it did (self-explanation)."""
        base = self.node.explain()
        state = ("degraded: holding last good pool size and shedding harder"
                 if self.degraded else "healthy")
        return (f"{base} Governor state: {state}; pool target {self._pool}; "
                f"learned service rate "
                f"{self.model.service_estimate:.2f} req/worker per unit time.")

    def self_view(self, now: float, node_id: str, *,
                  sessions: int = 0) -> NodeSelfView:
        """This governor's learned self-model, packaged for gossip.

        Every number is learned or sensed -- the arrival and service
        rates are the :class:`ServeSelfModel` online estimates, the
        confidence is its earned prediction accuracy -- so what peers
        receive is genuinely this node's *model of itself*.
        """
        arrival = (self.model.arrival_estimate
                   if self.model.arrival_estimate is not None
                   else self._stats["arrival_rate"])
        return NodeSelfView(
            node=node_id, time=now,
            arrival_rate=float(max(0.0, arrival)),
            service_rate=float(self.model.service_estimate),
            pool=int(self._pool),
            queue_depth=float(self._stats["queue_depth"]),
            utilisation=float(self._stats["utilisation"]),
            confidence=float(self.model.confidence(self._stats, self._pool)),
            degraded=bool(self.degraded),
            sessions=int(sessions))


class StaticGovernor:
    """Design-time baseline: fixed pool, fixed admission, never degrades.

    The E14 comparison arm.  It still *returns* decisions so the serving
    machinery is identical across arms; the decisions just never change.
    """

    def __init__(self, *, pool_size: int, service_rate_guess: float = 4.0,
                 admit_headroom: float = 1.25, slo_p95: float = 8.0,
                 queue_ticks: Optional[float] = None) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        capacity = pool_size * service_rate_guess
        ticks = max(1.0, slo_p95 - 2.0) if queue_ticks is None else queue_ticks
        self._decision = GovernorDecision(
            pool_target=pool_size,
            admission_rate=capacity * admit_headroom,
            admission_burst=max(1.0, capacity),
            max_queue=max(1.0, math.ceil(capacity * ticks)),
            serve_stale=False, degraded=False,
            reason="static design-time configuration")
        self._pool = pool_size
        self._service_rate_guess = service_rate_guess
        self._last_stats: Dict[str, float] = {}

    @property
    def pool_target(self) -> int:
        return self._pool

    @property
    def degraded(self) -> bool:
        return False

    def tick(self, now: float, stats: Mapping[str, float]) -> GovernorDecision:
        self._last_stats = dict(stats)
        return self._decision

    def explain(self) -> str:
        return (f"Static governor: pool fixed at {self._pool} at design "
                f"time; telemetry is collected but never consulted.")

    def self_view(self, now: float, node_id: str, *,
                  sessions: int = 0) -> NodeSelfView:
        """A design-time self-view: measured stats, spec-sheet capacity."""
        stats = getattr(self, "_last_stats", {})
        return NodeSelfView(
            node=node_id, time=now,
            arrival_rate=float(stats.get("arrival_rate", 0.0)),
            service_rate=float(self._service_rate_guess),
            pool=int(self._pool),
            queue_depth=float(stats.get("queue_depth", 0.0)),
            utilisation=float(stats.get("utilisation", 0.0)),
            confidence=1.0, degraded=False, sessions=int(sessions))


class CollectiveGovernor:
    """A per-node governor made collectively self-aware through gossip.

    Wraps a :class:`ServeGovernor` (the node's learned self-model and
    deliberation stay untouched) and closes the paper's collective
    level over it:

    * after every base tick, the node's *learned* self-view is
      published to the cluster's :class:`~repro.serve.gossip.GossipBoard`;
    * the cluster-wide worker budget is split by gossiped load share
      (:func:`~repro.serve.gossip.budget_shares` -- every node computes
      the same split from the same board, no coordinator), and this
      node's pool choice is clamped to its share;
    * admission rate, burst and queue bound are re-derived from the
      clamped capacity, so admission thresholds follow the collective
      decision too;
    * **fallback**: when gossip is stale (fewer than two fresh views on
      the board), the node caps itself at ``fallback_share`` -- the
      fair static split -- i.e. exactly the per-node behaviour.  Gossip
      sharpens decisions; it is never a correctness dependency.
    """

    def __init__(self, base: ServeGovernor, *, node_id: str,
                 board: GossipBoard, worker_budget: int,
                 fallback_share: int, min_workers: int = 1,
                 sessions_fn: Optional[Callable[[], int]] = None) -> None:
        if worker_budget < 1:
            raise ValueError("worker_budget must be >= 1")
        if not 1 <= min_workers <= fallback_share <= worker_budget:
            raise ValueError(
                "need 1 <= min_workers <= fallback_share <= worker_budget")
        self.base = base
        self.node_id = node_id
        self.board = board
        self.worker_budget = worker_budget
        self.fallback_share = fallback_share
        self.min_workers = min_workers
        self._sessions_fn = sessions_fn
        #: Whether the last tick ran on fresh gossip (False = fallback).
        self.collective = False
        #: This node's last budget share.
        self.share = fallback_share

    @property
    def pool_target(self) -> int:
        return self.base.pool_target

    @property
    def degraded(self) -> bool:
        return self.base.degraded

    @property
    def model(self) -> ServeSelfModel:
        return self.base.model

    @property
    def monitor(self) -> DegradationMonitor:
        return self.base.monitor

    @property
    def last_decision_seq(self) -> Optional[int]:
        return self.base.last_decision_seq

    def tick(self, now: float, stats: Mapping[str, float]) -> GovernorDecision:
        decision = self.base.tick(now, stats)
        sessions = self._sessions_fn() if self._sessions_fn is not None else 0
        self.board.publish(
            self.base.self_view(now, self.node_id, sessions=sessions))
        views = self.board.fresh(now)
        if len(views) >= 2 and self.node_id in views:
            shares = budget_shares(views, budget=self.worker_budget,
                                   min_workers=self.min_workers)
            share = shares[self.node_id]
            self.collective = True
        else:
            share = self.fallback_share
            self.collective = False
        self.share = share
        pool = max(self.min_workers, min(decision.pool_target, share))
        capacity = pool * self.base.model.service_estimate
        rate = capacity * self.base.admit_headroom
        if decision.degraded:
            rate *= self.base.degraded_admission
        clamped = GovernorDecision(
            pool_target=pool,
            admission_rate=max(1e-6, rate),
            admission_burst=max(1.0, capacity),
            max_queue=max(1.0, math.ceil(capacity * self.base.queue_ticks)),
            serve_stale=decision.serve_stale,
            degraded=decision.degraded,
            reason=(f"{decision.reason}; collective budget share {share}"
                    f"/{self.worker_budget}"
                    if self.collective else
                    f"{decision.reason}; gossip stale, per-node fallback "
                    f"cap {share}"))
        self.base._pool = pool  # the clamp is the pool the node realises
        if obs_events.enabled():
            obs_events.emit("cluster.share", time=now, node=self.node_id,
                            share=share, pool=pool,
                            collective=self.collective,
                            budget=self.worker_budget)
        return clamped

    def self_view(self, now: float, node_id: Optional[str] = None, *,
                  sessions: int = 0) -> NodeSelfView:
        return self.base.self_view(now, node_id or self.node_id,
                                   sessions=sessions)

    def explain(self) -> str:
        mode = (f"collective: budget share {self.share}/{self.worker_budget} "
                f"from {len(self.board)} gossiped self-models"
                if self.collective else
                f"fallback: gossip stale, per-node cap {self.fallback_share}")
        return f"{self.base.explain()} Cluster state: {mode}."
