"""Serve-layer configuration: frozen keyword-only dataclasses.

The live server and the cluster fabric follow the same config
conventions as the :mod:`repro.api` substrate configs (frozen --
a config is a shareable value; keyword-only -- call sites read as
documentation; JSON-safe fields -- configs travel through engines and
wire protocols untouched).  ``SimulationServer(workers=2, ...)`` style
keyword construction still works through a deprecation shim that packs
the kwargs into a :class:`ServerConfig` and warns.

(:class:`~repro.api.configs.ClusterConfig`, the *simulated* cluster's
config, lives with the other substrate configs in ``repro.api``; this
module configures the live asyncio deployment.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, kw_only=True)
class ServerConfig:
    """One serving node (:class:`~repro.serve.server.SimulationServer`).

    The former ``SimulationServer(**kwargs)`` surface, as a value."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Batch-dispatcher pool size; ``0`` steps in-process.
    workers: int = 0
    max_batch: int = 8
    #: ``"self_aware"``, ``"static"`` or ``"none"``.
    governor: str = "self_aware"
    min_workers: int = 1
    max_workers: int = 4
    #: Session idle TTL, seconds.
    ttl: float = 300.0
    max_sessions: int = 256
    admission_rate: float = 200.0
    admission_burst: float = 400.0
    max_queue: float = 512.0
    #: p95 latency SLO handed to the governor, seconds.
    slo_p95: float = 0.25
    #: Initial belief about requests/second one worker sustains.
    service_rate_guess: float = 200.0
    govern_interval: float = 1.0
    seed: int = 0
    #: Cluster identity; single servers keep the default.
    node_id: str = "n0"


#: Field names accepted by the legacy keyword constructor shim.
SERVER_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ServerConfig))


def coerce_server_config(config: Any,
                         legacy_kwargs: Dict[str, Any]) -> ServerConfig:
    """Resolve the (config, **legacy-kwargs) constructor surface.

    Exactly one spelling may be used; mixing them would make precedence
    ambiguous, so it is rejected.  Unknown legacy kwargs raise the same
    ``TypeError`` a dataclass constructor would.
    """
    if config is not None and legacy_kwargs:
        raise TypeError("pass either a ServerConfig or legacy keyword "
                        "arguments, not both")
    if config is not None:
        if not isinstance(config, ServerConfig):
            raise TypeError(f"config must be a ServerConfig, "
                            f"got {type(config).__name__}")
        return config
    if legacy_kwargs:
        import warnings
        warnings.warn(
            "constructing SimulationServer from bare keyword arguments is "
            "deprecated; pass ServerConfig(...) instead",
            DeprecationWarning, stacklevel=3)
        unknown = sorted(set(legacy_kwargs) - SERVER_CONFIG_FIELDS)
        if unknown:
            raise TypeError(
                f"unknown server option(s): {', '.join(unknown)}")
        return ServerConfig(**legacy_kwargs)
    return ServerConfig()
