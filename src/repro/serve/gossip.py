"""Gossiped self-models: the cluster's collective self-awareness substrate.

Each serving node runs a :class:`~repro.serve.governor.ServeGovernor`
whose self-model *learns* the node's load and capacity from telemetry.
Collective self-awareness -- the paper's last level -- is those learned
self-models shared: every node periodically publishes a compact
:class:`NodeSelfView` of what it currently believes about itself, and
every node reads the others' views back, so cluster-wide decisions
(worker-budget split, admission headroom, session rebalancing) can be
taken *decentrally*, each node computing the same answer from the same
gossiped state.

The sharing idiom follows the swarm substrate
(:mod:`repro.swarm.robots`): peers exchange small observations, each
keeps a bounded, staleness-pruned memory of what it heard, and every
consumer falls back to purely local behaviour when its view of a peer
has gone stale -- gossip improves decisions, it must never become a
correctness dependency.  :meth:`GossipBoard.fresh` is that staleness
gate, and :func:`budget_shares` the collective decision the governors
derive from it.

Sans-io and deterministic: views are plain frozen data, the board is a
dict, and all iteration orders are fixed by node name.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping, Optional

from ..obs import events as obs_events

#: Gossip-era schema version, carried by every view (envelope parity
#: with the wire protocol's ``"v"``).
GOSSIP_VERSION = 1


@dataclass(frozen=True)
class NodeSelfView:
    """One node's published self-model summary.

    All fields are *learned or measured by the node about itself* --
    this is a self-model travelling the wire, not a spec sheet: the
    arrival and per-worker service rates come from the governor's
    :class:`~repro.serve.governor.ServeSelfModel` online estimates, and
    ``confidence`` is that model's earned prediction accuracy.
    """

    node: str
    time: float
    #: Learned offered load at this node (requests per unit time).
    arrival_rate: float
    #: Learned per-worker service rate (requests per unit time).
    service_rate: float
    #: Current worker pool size.
    pool: int
    queue_depth: float
    utilisation: float
    #: Self-model confidence in [0, 1] (earned, never assumed).
    confidence: float
    degraded: bool
    #: Sessions currently placed on this node (migration bookkeeping).
    sessions: int = 0
    v: int = GOSSIP_VERSION

    @property
    def capacity(self) -> float:
        """Believed service capacity: pool x learned per-worker rate."""
        return self.pool * max(1e-9, self.service_rate)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class GossipBoard:
    """The cluster's shared gossip state: latest view per node.

    In-process transport (the cluster's nodes share an event loop /
    simulation step); the board still models the *distributed* failure
    mode that matters -- staleness: a node that stops publishing simply
    ages out of :meth:`fresh` and collective decisions degrade to the
    per-node fallback.  ``ttl`` is the staleness bound in whatever time
    unit the callers use (ticks in the simulation, seconds live).
    """

    def __init__(self, *, ttl: float = 10.0) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self._views: Dict[str, NodeSelfView] = {}
        self.published = 0

    def __len__(self) -> int:
        return len(self._views)

    def publish(self, view: NodeSelfView) -> None:
        """Post a node's current self-view (latest wins)."""
        self._views[view.node] = view
        self.published += 1
        if obs_events.enabled():
            obs_events.emit("cluster.gossip", time=view.time, node=view.node,
                            arrival_rate=view.arrival_rate,
                            service_rate=view.service_rate, pool=view.pool,
                            queue_depth=view.queue_depth,
                            confidence=view.confidence,
                            degraded=view.degraded)

    def view_of(self, node: str) -> Optional[NodeSelfView]:
        return self._views.get(node)

    def fresh(self, now: float,
              ttl: Optional[float] = None) -> Dict[str, NodeSelfView]:
        """Views no older than the staleness bound, keyed and ordered by
        node name (deterministic consumers need a fixed order)."""
        bound = self.ttl if ttl is None else ttl
        return {node: view
                for node, view in sorted(self._views.items())
                if now - view.time <= bound}

    def drop(self, node: str) -> None:
        self._views.pop(node, None)


def cluster_load(views: Mapping[str, NodeSelfView]) -> float:
    """Total believed offered load across the gossiped views."""
    return sum(max(0.0, v.arrival_rate) for v in views.values())


def budget_shares(views: Mapping[str, NodeSelfView], *, budget: int,
                  min_workers: int = 1) -> Dict[str, int]:
    """Split a cluster-wide worker budget by gossiped load share.

    The collective pool-sizing decision: every node computes this from
    the same board state and takes its own entry, so no coordinator is
    needed and the split always sums to ``budget`` (largest-remainder
    apportionment after a ``min_workers`` floor, ties broken by node
    name).  With one view -- gossip entirely stale -- the caller's own
    node simply receives the whole budget it can see, which collapses
    to per-node behaviour.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if not views:
        return {}
    nodes = sorted(views)
    floor_total = min_workers * len(nodes)
    if floor_total >= budget:
        # Budget cannot honour the floor for everyone: even split.
        shares = {node: budget // len(nodes) for node in nodes}
        for node in nodes[: budget % len(nodes)]:
            shares[node] += 1
        return shares
    load = cluster_load(views)
    flexible = budget - floor_total
    if load <= 1e-12:
        quotas = {node: flexible / len(nodes) for node in nodes}
    else:
        quotas = {node: flexible * max(0.0, views[node].arrival_rate) / load
                  for node in nodes}
    shares = {node: min_workers + int(quotas[node]) for node in nodes}
    remainder = budget - sum(shares.values())
    # Largest fractional remainders first; node name breaks ties.
    order = sorted(nodes, key=lambda n: (-(quotas[n] - int(quotas[n])), n))
    for node in order[:remainder]:
        shares[node] += 1
    return shares
