"""The named kernels: one per substrate hot path, plus retained baselines.

Every factory builds an isolated simulation (fixed seeds, no shared
state) and returns a runner ``run(n)`` advancing it ``n`` steps.  Where
this PR's optimisation pass kept the naive reference implementation
(module flags or constructor parameters), the kernel also carries a
``baseline_setup`` so the speedup is measured inside the same run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .harness import KernelSpec, StepRunner


def _camera_setup(optimised: bool, rows: int = 7, cols: int = 7,
                  radius: float = 0.28, n_objects: int = 48) -> StepRunner:
    from ..learning import bandits
    from ..smartcamera.controller import SelfAwareStrategyController
    from ..smartcamera.sim import CameraSimConfig, CameraSimulation

    # A larger deployment than the E2 table (49 cameras, 48 objects at
    # the default tier): the index-vs-scan gap is an asymptotic one, so
    # the kernel measures it at the scale where camera networks actually
    # hurt.  The large tier scales the radius with the grid pitch so the
    # coverage *density* stays constant -- otherwise every camera sees
    # every point and the candidate index has nothing to prune.
    config = CameraSimConfig(rows=rows, cols=cols, radius=radius,
                             n_objects=n_objects,
                             object_speed=0.035, detection_rate=0.08,
                             random_placement=True, seed=0)
    # Bandits capture the fast/numpy flag at construction; pin it so the
    # baseline run really is the pre-optimisation controller stack.
    prev = bandits.USE_FAST_BANDIT
    bandits.USE_FAST_BANDIT = optimised
    try:
        sim = CameraSimulation(
            config,
            controller_factory=lambda cid, rng: SelfAwareStrategyController(
                cid, epsilon=0.05, rng=rng),
            fast=optimised)
    finally:
        bandits.USE_FAST_BANDIT = prev
    if not optimised:
        # Rebuild the network's index-free, columns-free variant over
        # the same cameras.
        from ..smartcamera.network import CameraNetwork
        sim.network = CameraNetwork(list(sim.network.cameras.values()),
                                    use_grid=False, fast=False)
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for _ in range(int(n)):
            sim.step(t)
            t += 1.0

    return run


def _observers_setup(optimised: bool) -> StepRunner:
    from ..smartcamera.network import CameraNetwork
    from ..smartcamera.objects import ObjectPopulation

    # The pure observer sweep: who sees each object right now?  This is
    # the O(cameras x objects) visibility scan the indexed scans replace,
    # measured without the auction/learning machinery around it.
    network = CameraNetwork.random(64, radius=0.2, seed=11,
                                   use_grid=optimised, fast=optimised)
    population = ObjectPopulation(48, speed=0.02,
                                  rng=np.random.default_rng(11))
    observers = network.observers

    def run(n: int) -> None:
        for _ in range(int(n)):
            population.step()
            for obj in population.objects:
                observers(obj)

    return run


def _swarm_setup(fast: bool, n_robots: int = 32,
                 events_per_step: float = 8.0) -> StepRunner:
    from ..swarm.robots import SelfAwareSwarm
    from ..swarm.sim import SwarmMission, SwarmMissionConfig

    # Larger than the E12 mission (32 robots, 8 events/step) so the
    # O(robots x memory x alive) attribution cost is the dominant term,
    # as it is on long real missions.
    controller = SelfAwareSwarm(rng=np.random.default_rng(7), fast=fast)
    config = SwarmMissionConfig(n_robots=n_robots, steps=300,
                                events_per_step=events_per_step, seed=0)
    mission = SwarmMission(controller, config, use_grid=fast)
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for _ in range(int(n)):
            mission.step(t)
            t += 1.0

    return run


def _cpn_setup(gated: bool, n: int = 30) -> StepRunner:
    from ..cpn.routing import OracleRouter
    from ..cpn.sim import default_flows, routing_step
    from ..cpn.topology import CPNetwork

    network = CPNetwork.random_geometric(n=n, seed=3)
    network.schedule_random_disturbances(horizon=10_000.0, count=12)
    # Keep the disturbance *population* (the router still scans the
    # schedule every step) but displace every window far past the timed
    # run: each step then takes the same code path -- the change-gated
    # fast path vs the unconditional re-route -- instead of mixing
    # cheap quiet steps with expensive in-window ones, which made the
    # kernel's measured spread ~1.9x and impossible to gate on.
    for disturbance in network.disturbances:
        disturbance.start += 1e9
    router = OracleRouter(network, gated=gated)
    flows = default_flows(network, n_flows=6, seed=3)
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for _ in range(int(n)):
            routing_step(network, router, flows, t)
            t += 1.0

    return run


def _multicore_setup() -> StepRunner:
    from ..multicore import make_multicore_goal
    from ..multicore.governor import SelfAwareGovernor
    from ..multicore.sim import make_platform, make_workload

    governor = SelfAwareGovernor(make_multicore_goal(),
                                 rng=np.random.default_rng(4))
    workload = make_workload(seed=4)
    platform = make_platform()
    metrics = None
    t = 0.0

    def run(n: int) -> None:
        nonlocal t, metrics
        for _ in range(int(n)):
            platform.submit(workload.arrivals(t))
            governor.manage(t, platform, metrics)
            metrics = platform.step(t)
            governor.feedback(metrics)
            t += 1.0

    return run


def _cloud_setup(base_rate: float = 60.0, max_servers: int = 40,
                 initial_servers: int = 4) -> StepRunner:
    from ..cloud.autoscaler import SelfAwareScaler, make_cloud_goal
    from ..cloud.cluster import ServiceCluster
    from ..envgen.workloads import RequestRateWorkload

    goal = make_cloud_goal()
    scaler = SelfAwareScaler(goal, boot_delay=5, max_servers=max_servers)
    cluster = ServiceCluster(capacity_per_server=10.0, boot_delay=5,
                             max_servers=max_servers,
                             initial_servers=initial_servers)
    workload = RequestRateWorkload(base_rate=base_rate,
                                   seasonal_amplitude=0.5,
                                   period=200.0, noise_std=0.05,
                                   rng=np.random.default_rng(6))
    metrics = None
    t = 0.0

    def run(n: int) -> None:
        nonlocal t, metrics
        for _ in range(int(n)):
            target = scaler.decide(t, metrics)
            cluster.request_scale(target)
            metrics = cluster.step(t, max(0.0, workload.rate(t)))
            t += 1.0

    return run


def _sensornet_setup(fast: bool = True, n_channels: int = 8,
                     budget: float = 3.0) -> StepRunner:
    from ..core.attention import SalienceAttention
    from ..sensornet.field import ChannelField, mixed_channel_specs
    from ..sensornet.node import SensingNode

    field = ChannelField(mixed_channel_specs(n_channels, seed=5),
                         rng=np.random.default_rng(5), fast=fast)
    node = SensingNode(field, SalienceAttention(staleness_scale=1.0),
                       budget=budget, rng=np.random.default_rng(15),
                       fast=fast)
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for _ in range(int(n)):
            node.step(t)
            t += 1.0

    return run


def _node_setup(fast_stats: bool) -> StepRunner:
    from ..core import knowledge
    from ..core.levels import ladder
    from ..core.patterns import build_node
    from ..experiments.e1_levels import (ResourceAllocationEnvironment,
                                         make_e1_goal, make_e1_sensors)

    env = ResourceAllocationEnvironment(seed=0)
    goal = make_e1_goal()
    sensors = make_e1_sensors(env, np.random.default_rng(2000))
    profile = list(ladder())[-1]
    node = build_node("bench", profile, sensors, goal,
                      epsilon=0.08, forgetting=0.98,
                      rng=np.random.default_rng(1000))
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        # The window-statistics toggle is module-global; pin it for the
        # duration of this runner only so both variants can share one
        # process.
        prev = knowledge.USE_FAST_WINDOW_STATS
        knowledge.set_fast_window_stats(fast_stats)
        try:
            for _ in range(int(n)):
                t += 1.0
                for entity, name, value in env.peer_reports(t):
                    node.receive_report(entity, name, t, value)
                result = node.step(t, list(env.candidate_actions(t)))
                metrics = env.apply(result.decision.action, t)
                node.feedback(metrics, utility=goal.utility(metrics))
        finally:
            knowledge.set_fast_window_stats(prev)

    return run


def _fault_hooks_setup(active: bool) -> StepRunner:
    from ..faults.injector import FaultInjector
    from ..faults.plan import (CLOCK_SKEW, CRASH, LINK_DEGRADE,
                               SENSOR_DROPOUT, SENSOR_NOISE, WORKLOAD_SPIKE,
                               FaultPlan, FaultSpec)

    # One spec of every kind.  The *optimised* leg (``active=False``)
    # schedules every window after the run ends, so each hook takes its
    # identity short-circuit -- the retained fast path substrates pay on
    # every step of an unfaulted window, which is what the dormant-hook
    # optimisation bought.  The *baseline* keeps every window open for
    # the whole run: the full per-kind sampling cost the short-circuit
    # avoids.  (Earlier reports had this pairing inverted, reporting the
    # intended relationship as a 0.24x "slowdown".)
    start = 0.0 if active else 1e9
    plan = FaultPlan(specs=tuple(
        FaultSpec(kind=kind, start=start, end=start + 1e9, intensity=0.3)
        for kind in (SENSOR_NOISE, SENSOR_DROPOUT, CRASH, LINK_DEGRADE,
                     WORKLOAD_SPIKE, CLOCK_SKEW)), seed=9)
    injector = FaultInjector(plan, run_seed=1)
    population = tuple(range(16))
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for _ in range(int(n)):
            injector.begin_step(t)
            injector.perturb(1.0, target="qos")
            injector.dropped(target="qos")
            injector.crashed_targets(population)
            injector.link_factor()
            injector.demand_factor()
            injector.perceived_time(t)
            t += 1.0

    # Exposed for the pairing test: which leg really holds the dormant
    # (optimised) injector is structural, not a timing accident.
    run.injector = injector
    return run


def _fault_cloud_setup(faulted: bool) -> StepRunner:
    from ..api import CloudConfig, CloudSimulator
    from ..faults.plan import (CRASH, SENSOR_NOISE, WORKLOAD_SPIKE,
                               FaultPlan, FaultSpec)

    # The full injection overhead in situ: the cloud decide/scale/serve
    # step with a permanently-open fault window versus the clean run.
    plan = None
    if faulted:
        plan = FaultPlan(specs=(
            FaultSpec(kind=CRASH, start=0.0, end=1e9, intensity=0.3),
            FaultSpec(kind=WORKLOAD_SPIKE, start=0.0, end=1e9,
                      intensity=0.5),
            FaultSpec(kind=SENSOR_NOISE, start=0.0, end=1e9, intensity=2.0,
                      target="demand"),
        ), seed=9)
    sim = CloudSimulator(CloudConfig(steps=10 ** 9, seed=6), faults=plan)

    def run(n: int) -> None:
        for _ in range(int(n)):
            sim.step()

    return run


def _emit_setup(enabled: bool) -> StepRunner:
    from ..obs.events import EventBus

    bus = EventBus(maxlen=4096, enabled=enabled)

    if enabled:
        def run(n: int) -> None:
            emit = bus.emit
            for i in range(int(n)):
                emit("bench.step", time=float(i), value=1.0, phase="hot")
    else:
        def run(n: int) -> None:
            # The guarded fast path every substrate uses: when the bus is
            # disabled the kwargs dict is never even built.
            for i in range(int(n)):
                if bus.enabled:
                    bus.emit("bench.step", time=float(i), value=1.0,
                             phase="hot")

    return run


def _cluster_route_setup(n_nodes: int = 3, n_sessions: int = 9) -> StepRunner:
    """Cluster-client round-trip per step: version check -> placement
    cache / ring guess -> moved-redirect handling -> node dispatch.
    Measures the sharding layer's overhead over plain serve.dispatch."""
    import asyncio
    import atexit

    from ..serve.cluster import ServeCluster
    from ..serve.config import ServerConfig

    loop = asyncio.new_event_loop()
    cluster = ServeCluster(
        nodes=n_nodes, governor="none",
        base=ServerConfig(workers=0, governor="none", admission_rate=1e9,
                          admission_burst=1e9, max_queue=10 ** 9,
                          govern_interval=3600.0))
    loop.run_until_complete(cluster.start(listen=False))

    def _cleanup() -> None:
        if not loop.is_closed():
            loop.run_until_complete(cluster.stop())
            loop.close()

    atexit.register(_cleanup)
    client = cluster.cluster_client()

    async def _seed_sessions() -> List[str]:
        sessions = []
        for i in range(n_sessions):
            created = await client.create(
                "sensornet", steps=10, n_channels=4, seed=i)
            sessions.append(created["session"])
        return sessions

    sessions = loop.run_until_complete(_seed_sessions())

    def run(n: int) -> None:
        async def burst() -> None:
            for i in range(int(n)):
                await client.step(sessions[i % n_sessions], n=1)
        loop.run_until_complete(burst())

    return run


def _cluster_gossip_setup(n_nodes: int = 8) -> StepRunner:
    """The collective-governance hot loop, one node's tick per step:
    publish the local self-view, read the fresh board, recompute the
    cluster-wide budget split.  Pure gossip arithmetic, no serving."""
    from ..serve.gossip import GossipBoard, NodeSelfView, budget_shares

    board = GossipBoard(ttl=1e9)
    for i in range(n_nodes):
        board.publish(NodeSelfView(
            node=f"n{i}", time=0.0, arrival_rate=5.0 + 3.0 * i,
            service_rate=4.0, pool=2, queue_depth=float(i),
            utilisation=0.6, confidence=0.9, degraded=False, sessions=4))
    t = 0.0

    def run(n: int) -> None:
        nonlocal t
        for i in range(int(n)):
            t += 1.0
            node = f"n{i % n_nodes}"
            board.publish(NodeSelfView(
                node=node, time=t, arrival_rate=5.0 + (i % 17),
                service_rate=4.0, pool=2, queue_depth=float(i % 5),
                utilisation=0.6, confidence=0.9, degraded=False,
                sessions=4))
            views = board.fresh(t)
            budget_shares(views, budget=4 * n_nodes, min_workers=1)

    return run


def _explain_ingest_setup() -> StepRunner:
    """Explanation-store ingestion: governor-shaped causal chains
    (telemetry -> prediction -> decision) folded into the bounded index
    and rollups, one event per counted step."""
    from ..experiments.e15_explain_scale import synthesize_stream
    from ..explain import ExplanationStore

    store = ExplanationStore()
    shard = 0

    def run(n: int) -> None:
        nonlocal shard
        # Vary the seed per burst so repeated timing runs do not replay
        # byte-identical latencies into the P2 estimators.
        synthesize_stream(store, int(n), seed=shard)
        shard += 1

    return run


def _serve_dispatch_setup() -> StepRunner:
    """Full in-process server round-trip per step: admission -> session
    lookup -> batch queue -> dispatcher -> response.  Measures the
    serving layer's overhead on top of a deliberately light substrate."""
    import asyncio
    import atexit

    from ..serve.config import ServerConfig
    from ..serve.server import InProcessClient, SimulationServer

    loop = asyncio.new_event_loop()
    server = SimulationServer(ServerConfig(
        workers=0, governor="self_aware", admission_rate=1e9,
        admission_burst=1e9, max_queue=10 ** 9, govern_interval=3600.0))
    loop.run_until_complete(server.start(listen=False))

    def _cleanup() -> None:
        if not loop.is_closed():
            loop.run_until_complete(server.stop())
            loop.close()

    atexit.register(_cleanup)
    client = InProcessClient(server)
    created = loop.run_until_complete(
        client.request({"op": "create", "substrate": "sensornet",
                        "config": {"steps": 10, "n_channels": 4,
                                   "seed": 0}}))
    session = created["session"]

    def run(n: int) -> None:
        async def burst() -> None:
            for _ in range(int(n)):
                await client.step(session, n=1)
        loop.run_until_complete(burst())

    return run


def _serve_batch_setup() -> StepRunner:
    """Batch dispatcher throughput: 8 sessions stepped in coalesced
    batches through the worker cache (one step counted per request)."""
    from ..api.configs import SensornetConfig
    from ..serve.batching import BatchDispatcher, StepRequest

    n_sessions = 8
    configs = [SensornetConfig(steps=10, n_channels=4, seed=i)
               for i in range(n_sessions)]
    bases = [0] * n_sessions
    dispatcher = BatchDispatcher(workers=0, max_batch=n_sessions)

    def run(n: int) -> None:
        done = 0
        while done < int(n):
            take = min(n_sessions, int(n) - done)
            requests = [StepRequest(f"bench{i}", "sensornet", configs[i],
                                    bases[i], 1) for i in range(take)]
            for i, result in enumerate(dispatcher.submit(requests)):
                bases[i] = result["steps_taken"]
            done += take

    return run


def _scenario_render_setup(chunk: int = 256) -> StepRunner:
    """Scenario-algebra rendering: one composite-tree render of ``chunk``
    ticks per counted step.  The composite exercises every node kind the
    presets use -- superposition, modulation, the per-node rng spawning
    -- so the kernel tracks the cost of arming a simulation with a
    scenario, not one primitive in isolation."""
    from ..envgen.scenario import Diurnal, HeavyTail, MarkovChurn

    scenario = (HeavyTail() + Diurnal()) * MarkovChurn()
    burst = 0

    def run(n: int) -> None:
        nonlocal burst
        for _ in range(int(n)):
            # A fresh seed per render: repeated timing runs must not
            # hand the rng a warmed allocation pattern.
            scenario.render(chunk, seed=burst, sessions=8)
            burst += 1

    return run


def _twin_replay_setup(ticks: int = 65_536) -> StepRunner:
    """Digital-twin replay: one ServingSimulation tick per counted step,
    arrivals drawn from an in-memory synthetic trace instead of the
    Poisson stream.  Measures the full replay path -- workload lookup,
    admission, queue drain, governor -- i.e. what ``twin evaluate`` pays
    per candidate per tick."""
    from ..api.configs import ServeConfig
    from ..serve.simulation import ServingSimulation
    from ..twin import SCHEMA, TraceWorkload

    rng = np.random.default_rng([0x7717, 0])
    offered = rng.poisson(9.0, size=ticks)
    header = {"schema": SCHEMA, "substrate": "serve", "source": "bench",
              "tick_seconds": 1.0, "ticks": ticks,
              "total_offered": int(offered.sum()), "total_ok": 0}
    records = [{"t": t, "offered": int(offered[t])} for t in range(ticks)]
    workload = TraceWorkload(header, records)
    sim = ServingSimulation(ServeConfig(steps=ticks, seed=0),
                            workload=workload)

    def run(n: int) -> None:
        for _ in range(int(n)):
            if sim._t >= ticks:  # trace exhausted: rewind, keep timing
                sim.reset(0)
            sim.step()

    return run


KERNELS: List[KernelSpec] = [
    KernelSpec(
        name="camera.step",
        setup=lambda: _camera_setup(True),
        baseline_setup=lambda: _camera_setup(False),
        # Longer windows than most kernels: per-step cost rides the
        # auction/handover waves (+-10% over ~100-step stretches), so
        # short windows sample the waves instead of averaging them.
        steps=600, quick_steps=120,
        description="Smart-camera network step (struct-of-arrays "
                    "auction and observer scans vs object-graph walk)"),
    KernelSpec(
        name="camera.observers",
        setup=lambda: _observers_setup(True),
        baseline_setup=lambda: _observers_setup(False),
        steps=400, quick_steps=80,
        description="Observer sweep over the whole population (spatial "
                    "grid vs O(cameras x objects) scan)"),
    KernelSpec(
        name="swarm.step",
        setup=lambda: _swarm_setup(True),
        baseline_setup=lambda: _swarm_setup(False),
        steps=300, quick_steps=60,
        description="Swarm coverage step (witness grid + bounded "
                    "attribution vs full pairwise scans)"),
    KernelSpec(
        name="cpn.step",
        setup=lambda: _cpn_setup(True),
        baseline_setup=lambda: _cpn_setup(False),
        steps=600, quick_steps=120,
        description="CPN routing step under the oracle router "
                    "(change-gated vs per-step Dijkstra)"),
    KernelSpec(
        name="multicore.step",
        setup=_multicore_setup,
        steps=400, quick_steps=80,
        description="Multicore governor step (submit / manage / "
                    "platform step / feedback)"),
    KernelSpec(
        name="cloud.step",
        setup=_cloud_setup,
        steps=400, quick_steps=80,
        description="Cloud autoscaler step (decide / scale / serve)"),
    KernelSpec(
        name="sensornet.step",
        setup=lambda: _sensornet_setup(True),
        baseline_setup=lambda: _sensornet_setup(False),
        steps=600, quick_steps=120,
        description="Sensing node step (batched field + column salience "
                    "vs per-scope dict walks)"),
    KernelSpec(
        name="node.step",
        setup=lambda: _node_setup(True),
        baseline_setup=lambda: _node_setup(False),
        steps=300, quick_steps=60,
        description="Core SelfAwareNode control step on the E1 task "
                    "(memoised vs full-copy window statistics)"),
    KernelSpec(
        name="faults.hooks",
        setup=lambda: _fault_hooks_setup(False),
        baseline_setup=lambda: _fault_hooks_setup(True),
        steps=20_000, quick_steps=4_000,
        description="Injector hook battery, dormant identity "
                    "short-circuits vs every kind active"),
    KernelSpec(
        name="faults.cloud.step",
        setup=lambda: _fault_cloud_setup(True),
        baseline_setup=lambda: _fault_cloud_setup(False),
        steps=400, quick_steps=80,
        description="Cloud autoscaler step inside an open fault window "
                    "vs the clean run"),
    KernelSpec(
        name="serve.dispatch",
        setup=_serve_dispatch_setup,
        steps=1_600, quick_steps=320,
        description="In-process server dispatch round-trip (admission, "
                    "session table, batch queue, dispatcher)"),
    KernelSpec(
        name="serve.batch",
        setup=_serve_batch_setup,
        steps=800, quick_steps=160,
        description="Batch dispatcher throughput over 8 cached sessions "
                    "(coalesce + incremental worker-cache stepping)"),
    KernelSpec(
        name="cluster.route",
        setup=_cluster_route_setup,
        steps=1_200, quick_steps=240,
        description="Cluster-client dispatch round-trip over 3 nodes "
                    "(placement cache, ring, versioned envelopes)"),
    KernelSpec(
        name="cluster.gossip",
        setup=_cluster_gossip_setup,
        steps=50_000, quick_steps=10_000,
        description="Gossip tick: publish self-view, read fresh board, "
                    "recompute the 8-node budget split"),
    KernelSpec(
        name="explain.ingest",
        setup=_explain_ingest_setup,
        steps=100_000, quick_steps=20_000,
        description="Explanation-store streaming ingest (provenance "
                    "index + cause-class rollups + P2 histograms)"),
    KernelSpec(
        name="obs.emit",
        setup=lambda: _emit_setup(True),
        steps=200_000, quick_steps=40_000,
        description="Telemetry event emission on an enabled bus"),
    KernelSpec(
        name="obs.emit.disabled",
        setup=lambda: _emit_setup(False),
        steps=1_000_000, quick_steps=200_000,
        description="Guarded emit fast path on a disabled bus "
                    "(the zero-allocation hot path)"),
    KernelSpec(
        name="envgen.scenario",
        setup=_scenario_render_setup,
        steps=150, quick_steps=30,
        description="Scenario-algebra render of a 256-tick composite "
                    "((heavy_tail + diurnal) * markov_churn) per step"),
    KernelSpec(
        name="twin.replay",
        setup=_twin_replay_setup,
        steps=2_000, quick_steps=400,
        description="Digital-twin serve tick replaying a recorded trace "
                    "(workload lookup, admission, drain, governor)"),
    # -- large tier: the same kernels at ~10x the work per step, where
    # the index-vs-scan asymptotics actually separate the paths.  Step
    # counts shrink to keep per-repeat wall time comparable.
    KernelSpec(
        name="camera.step.large",
        setup=lambda: _camera_setup(True, rows=14, cols=14, radius=0.14,
                                    n_objects=120),
        baseline_setup=lambda: _camera_setup(False, rows=14, cols=14,
                                             radius=0.14, n_objects=120),
        steps=120, quick_steps=24, tier="large",
        description="Smart-camera step at 196 cameras x 120 objects "
                    "(constant coverage density: radius 0.14)"),
    KernelSpec(
        name="sensornet.step.large",
        setup=lambda: _sensornet_setup(True, n_channels=64, budget=24.0),
        baseline_setup=lambda: _sensornet_setup(False, n_channels=64,
                                                budget=24.0),
        steps=300, quick_steps=60, tier="large",
        description="Sensing node step at 64 channels, budget 24"),
    KernelSpec(
        name="swarm.step.large",
        setup=lambda: _swarm_setup(True, n_robots=64, events_per_step=12.0),
        baseline_setup=lambda: _swarm_setup(False, n_robots=64,
                                            events_per_step=12.0),
        steps=60, quick_steps=12, tier="large",
        description="Swarm coverage step at 64 robots, 12 events/step"),
    KernelSpec(
        name="cpn.step.large",
        setup=lambda: _cpn_setup(True, n=120),
        baseline_setup=lambda: _cpn_setup(False, n=120),
        steps=60, quick_steps=12, tier="large",
        description="CPN routing step on a 120-node geometric network"),
    KernelSpec(
        name="cloud.step.large",
        setup=lambda: _cloud_setup(base_rate=600.0, max_servers=400,
                                   initial_servers=40),
        steps=400, quick_steps=80, tier="large",
        description="Cloud autoscaler step at 10x demand and fleet size"),
]


def get_kernels(names: Optional[List[str]] = None,
                size: str = "all") -> List[KernelSpec]:
    """Kernels by name and/or size tier (order preserved, names checked).

    ``size`` keeps every kernel (``"all"``) or only one tier
    (``"default"`` / ``"large"``); an explicit name list bypasses the
    tier filter for the named kernels.
    """
    if size not in ("all", "default", "large"):
        raise KeyError(f"unknown size tier: {size!r}; "
                       "known: all, default, large")
    if names is None:
        return [k for k in KERNELS if size == "all" or k.tier == size]
    by_name: Dict[str, KernelSpec] = {k.name: k for k in KERNELS}
    missing = [n for n in names if n not in by_name]
    if missing:
        known = ", ".join(sorted(by_name))
        raise KeyError(f"unknown kernels: {missing}; known: {known}")
    return [by_name[n] for n in names]
