"""Timing core: kernel specs, warmup/repeat measurement, percentile rates.

A *kernel* is a per-step function of one substrate simulation.  Its
:class:`KernelSpec` carries a ``setup`` factory returning a fresh runner
``run(n)`` that advances the simulation ``n`` steps; the harness warms
the runner up (filling caches, histories and learned state, exactly as a
long experiment run would) and then times ``repeats`` back-to-back
blocks of ``steps`` steps on the same live state, reporting step *rates*
(steps per second) so that bigger is always better.

Specs may also carry a ``baseline_setup`` building the retained naive
reference implementation of the same kernel; both are measured in the
same process and the ratio of median rates is the kernel's measured
speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: A runner advances its simulation ``n`` steps.
StepRunner = Callable[[int], None]
#: A setup builds a fresh runner (fresh simulation state).
Setup = Callable[[], StepRunner]


@dataclass
class KernelSpec:
    """One benchmarkable simulation kernel."""

    name: str
    setup: Setup
    #: Naive reference implementation of the same kernel, when the
    #: optimisation kept one; timed alongside for the speedup column.
    baseline_setup: Optional[Setup] = None
    #: Steps per timed repeat in full / quick mode.
    steps: int = 400
    quick_steps: int = 80
    description: str = ""
    #: Size tier: ``"default"`` kernels measure the everyday experiment
    #: scale; ``"large"`` kernels re-measure the same hot path at ~10x
    #: the work per step, where the asymptotic optimisation gap (index
    #: vs scan, batch vs loop) actually opens up.  ``--size`` filters.
    tier: str = "default"


@dataclass
class KernelResult:
    """Measured rates for one kernel in one mode."""

    steps: int
    repeats: int
    warmup: int
    seconds: List[float]

    @property
    def rates(self) -> List[float]:
        """Steps per second of each repeat."""
        return [self.steps / s if s > 0 else float("inf")
                for s in self.seconds]

    def as_dict(self) -> Dict:
        rates = sorted(self.rates)
        return {
            "steps": self.steps,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "seconds": [round(s, 6) for s in self.seconds],
            "median_rate": round(percentile(rates, 50.0), 3),
            "p10_rate": round(percentile(rates, 10.0), 3),
            "p90_rate": round(percentile(rates, 90.0), 3),
            "median_ms_per_step": round(
                1000.0 / percentile(rates, 50.0), 6) if rates else None,
        }


def percentile(sorted_vals: List[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted list."""
    if not sorted_vals:
        raise ValueError("need at least one value")
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = (q / 100.0) * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


#: Iterations of the fixed calibration loop per timed repeat -- sized
#: for ~10-20ms windows, long enough to ride over scheduler ticks.
CALIBRATION_ITERS = 200_000


def _calibration_workload(n: int) -> int:
    """A fixed, allocation-light, pure-Python integer loop.

    Nothing in the repository's simulation code can change its speed:
    it measures only how fast the interpreter runs on this host right
    now.  The regression gate uses its rate to tell "the runner is
    slow today" (calibration slows down with everything else) apart
    from "the code got slower" (calibration is unmoved).
    """
    acc = 0
    for i in range(n):
        acc = (acc + i * i) & 0xFFFFFF
    return acc


def measure_calibration(repeats: int = 5) -> float:
    """Median rate of the calibration loop, in iterations per second."""
    _calibration_workload(CALIBRATION_ITERS // 4)  # warm the code object
    rates: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        _calibration_workload(CALIBRATION_ITERS)
        rates.append(CALIBRATION_ITERS / (time.perf_counter() - t0))
    rates.sort()
    return rates[len(rates) // 2]


def _measure(setup: Setup, steps: int, repeats: int,
             warmup: int) -> KernelResult:
    runner = setup()
    if warmup > 0:
        runner(warmup)
    seconds: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        runner(steps)
        seconds.append(time.perf_counter() - t0)
    return KernelResult(steps=steps, repeats=repeats, warmup=warmup,
                        seconds=seconds)


def run_spec(spec: KernelSpec, quick: bool = False,
             steps: Optional[int] = None, repeats: int = 5,
             warmup: Optional[int] = None,
             with_baseline: bool = True) -> Dict:
    """Measure one kernel (and its naive baseline, when retained).

    Returns the kernel's report entry: rate percentiles for the
    optimised path, the same for the baseline when present, the measured
    ``speedup_vs_naive`` ratio of median rates, and a ``spread`` noise
    indicator (p90/p10 of the optimised rates -- large values mean the
    machine was too noisy to gate on).
    """
    n_steps = steps if steps is not None else (
        spec.quick_steps if quick else spec.steps)
    n_warmup = warmup if warmup is not None else max(1, n_steps // 4)
    result = _measure(spec.setup, n_steps, repeats, n_warmup)
    entry = result.as_dict()
    if spec.description:
        entry["description"] = spec.description
    rates = sorted(result.rates)
    p10 = percentile(rates, 10.0)
    entry["spread"] = round(percentile(rates, 90.0) / p10, 4) \
        if p10 > 0 else None
    if with_baseline and spec.baseline_setup is not None:
        baseline = _measure(spec.baseline_setup, n_steps, repeats, n_warmup)
        entry["baseline"] = baseline.as_dict()
        base_median = percentile(sorted(baseline.rates), 50.0)
        if base_median > 0:
            entry["speedup_vs_naive"] = round(
                entry["median_rate"] / base_median, 3)
    # Host-speed sample adjacent in time to this kernel's windows:
    # co-tenant noise storms last seconds, long enough to slow every
    # repeat of one kernel while leaving the rest of the run (and a
    # single end-of-run calibration) untouched.  The gate compares this
    # per-kernel sample against the baseline's to tell such storms
    # apart from real code regressions.
    entry["calibration_rate"] = round(measure_calibration(repeats=3), 1)
    return entry
