"""CLI: ``python -m repro.bench`` -- run, report and gate the kernels.

Examples
--------
Full run, canonical output::

    python -m repro.bench --out BENCH_10.json

Quick CI pass with a regression gate against the committed baseline::

    python -m repro.bench --quick --out bench-ci.json \
        --compare BENCH_10.json --max-regress 10% --skip-on-noise \
        --summary-path "$GITHUB_STEP_SUMMARY"

Only the large-tier kernels (the ~10x-scale re-measurements)::

    python -m repro.bench --size large --out bench-large.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness import measure_calibration, run_spec
from .kernels import get_kernels
from .report import (build_report, main_compare, parse_percent,
                     summary_lines, write_report)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the per-step simulation kernels.")
    parser.add_argument("--quick", action="store_true",
                        help="fewer steps per repeat (CI mode)")
    parser.add_argument("--out", default="BENCH_10.json",
                        help="output JSON path (default: BENCH_10.json)")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated kernel subset")
    parser.add_argument("--size", default="all",
                        choices=("default", "large", "all"),
                        help="size tier to run (default: all); --kernels "
                             "names bypass the filter")
    parser.add_argument("--steps", type=int, default=None,
                        help="override steps per repeat for every kernel")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repeats per kernel (default: 5)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup steps (default: steps // 4)")
    parser.add_argument("--no-baselines", action="store_true",
                        help="skip the retained naive reference paths")
    parser.add_argument("--compare", metavar="OLD.json", default=None,
                        help="gate against a previous report")
    parser.add_argument("--max-regress", default="10%",
                        help="allowed median-rate loss (default: 10%%)")
    parser.add_argument("--skip-on-noise", action="store_true",
                        help="do not fail the gate on noisy kernels")
    parser.add_argument("--summary-path", metavar="FILE", default=None,
                        help="append a markdown report (and gate verdicts, "
                             "including noise skips) to FILE -- pass "
                             "$GITHUB_STEP_SUMMARY in CI")
    parser.add_argument("--list", action="store_true",
                        help="list kernels and exit")
    args = parser.parse_args(argv)

    names = ([n.strip() for n in args.kernels.split(",") if n.strip()]
             if args.kernels else None)
    try:
        specs = get_kernels(names, size=args.size)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.list:
        for spec in specs:
            pair = " [paired with naive baseline]" \
                if spec.baseline_setup is not None else ""
            print(f"{spec.name:<20} {spec.description}{pair}")
        return 0

    try:
        max_regress = parse_percent(args.max_regress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    kernels = {}
    for spec in specs:
        print(f"timing {spec.name} ...", flush=True)
        kernels[spec.name] = run_spec(
            spec, quick=args.quick, steps=args.steps,
            repeats=args.repeats, warmup=args.warmup,
            with_baseline=not args.no_baselines)
    calibration = measure_calibration(repeats=args.repeats)
    report = build_report(kernels, quick=args.quick, repeats=args.repeats,
                          calibration_rate=calibration)
    write_report(report, args.out)
    print(f"\nwrote {args.out} "
          f"(host calibration {calibration:.0f} loop-iters/s)")
    for line in summary_lines(report):
        print("  " + line)

    if args.compare:
        return main_compare(args.compare, report, max_regress,
                            skip_on_noise=args.skip_on_noise,
                            summary_path=args.summary_path)
    if args.summary_path:
        from .report import markdown_summary
        with open(args.summary_path, "a", encoding="utf-8") as fh:
            fh.write(markdown_summary(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
