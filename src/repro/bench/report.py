"""Bench report: ``repro.bench/v1`` JSON, writing and regression gating.

Report layout::

    {
      "schema": "repro.bench/v1",
      "quick": false,
      "python": "3.12.3",
      "platform": "Linux-...",
      "params": {"repeats": 5},
      "calibration_rate": ...,   # fixed pure-Python loop, iters/s
                                 # (host-speed reference for the gate)
      "kernels": {
        "camera.step": {
          "steps": 300, "repeats": 5, "warmup": 75,
          "seconds": [...],
          "median_rate": ..., "p10_rate": ..., "p90_rate": ...,
          "median_ms_per_step": ..., "spread": ...,
          "calibration_rate": ...,  # host-speed sample taken next to
                                    # this kernel's timed windows

          "baseline": { ...same rate fields for the naive path... },
          "speedup_vs_naive": ...
        }, ...
      }
    }

Rates are steps per second (bigger is better).  ``spread`` is p90/p10
of the optimised rates within the run -- the noise indicator the CI gate
consults before trusting a comparison.
"""

from __future__ import annotations

import json
import platform as platform_mod
import sys
from typing import Dict, List, Tuple

SCHEMA = "repro.bench/v1"

#: A kernel whose within-run p90/p10 rate spread exceeds this is too
#: noisy to gate on (co-tenant CI runners routinely produce 2x swings).
NOISE_SPREAD = 1.5


def build_report(kernels: Dict[str, Dict], quick: bool,
                 repeats: int,
                 calibration_rate: float = None) -> Dict:
    """Assemble the full report document."""
    report = {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform_mod.python_version(),
        "platform": platform_mod.platform(),
        "params": {"repeats": repeats},
        "kernels": kernels,
    }
    if calibration_rate is not None:
        report["calibration_rate"] = round(calibration_rate, 1)
    return report


def write_report(report: Dict, path: str) -> None:
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Read a report, validating the schema marker."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {schema!r}")
    return report


def parse_percent(text: str) -> float:
    """Parse a regression budget: ``"10%"`` -> 0.10, ``"0.1"`` -> 0.1."""
    text = text.strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if not 0.0 <= value < 1.0:
        raise ValueError(f"max-regress must be in [0%, 100%), got {text!r}")
    return value


def compare_reports(old: Dict, new: Dict, max_regress: float,
                    skip_on_noise: bool = False) -> Tuple[bool, List[str]]:
    """Gate ``new`` against ``old``: no kernel may lose more than
    ``max_regress`` of its median step rate.

    Returns ``(ok, lines)`` where ``lines`` is a human-readable verdict
    per kernel.  With ``skip_on_noise``, kernels whose within-run spread
    (in either report) exceeds :data:`NOISE_SPREAD` are reported but do
    not fail the gate -- a noisy runner must not turn timing jitter into
    a red build.

    When both reports carry ``calibration_rate`` samples (the fixed
    pure-Python loop :func:`~repro.bench.harness.measure_calibration`
    times next to every kernel and once per run), regression thresholds
    are scaled by the measured host slowdown: a co-tenant runner that
    drags the calibration loop down 15% is allowed to drag a kernel
    down the same 15% without going red, because no code change can
    slow the calibration loop.  Per-kernel samples are preferred over
    the run-level one -- noise storms last seconds, long enough to slow
    one kernel's every repeat while leaving the rest of the run calm.
    A *faster* host never relaxes the gate (factors clamp at 1.0).
    """
    ok = True
    lines: List[str] = []
    old_kernels = old.get("kernels", {})
    new_kernels = new.get("kernels", {})
    cal_old = old.get("calibration_rate")
    cal_new = new.get("calibration_rate")
    host_scale = 1.0
    if cal_old and cal_new:
        host_scale = min(1.0, cal_new / cal_old)
        if host_scale < 1.0:
            lines.append(
                f"host calibration: {cal_old:.0f} -> {cal_new:.0f} "
                f"loop-iters/s ({cal_new / cal_old:.2f}x) -- "
                f"regression thresholds scaled to match")
    for name in sorted(old_kernels):
        if name not in new_kernels:
            lines.append(f"{name}: MISSING from new run")
            ok = False
            continue
        old_rate = old_kernels[name].get("median_rate")
        new_rate = new_kernels[name].get("median_rate")
        if not old_rate or not new_rate:
            lines.append(f"{name}: no comparable median_rate, skipped")
            continue
        change = new_rate / old_rate - 1.0
        cal_o = old_kernels[name].get("calibration_rate") or cal_old
        cal_n = new_kernels[name].get("calibration_rate") or cal_new
        scale = (min(1.0, cal_n / cal_o) if cal_o and cal_n
                 else host_scale)
        adjusted = new_rate / (old_rate * scale) - 1.0
        noisy = any(
            (entry.get("spread") or 0.0) > NOISE_SPREAD
            for entry in (old_kernels[name], new_kernels[name]))
        regressed = adjusted < -max_regress
        verdict = "ok"
        if regressed and noisy and skip_on_noise:
            verdict = "SKIPPED (noisy runner)"
        elif regressed:
            verdict = "REGRESSION"
            ok = False
        elif noisy:
            verdict = "ok (noisy)"
        elif change < -max_regress:
            verdict = f"ok (host-adjusted {adjusted:+.1%})"
        lines.append(
            f"{name}: {old_rate:.1f} -> {new_rate:.1f} steps/s "
            f"({change:+.1%}) {verdict}")
    for name in sorted(set(new_kernels) - set(old_kernels)):
        # A kernel the baseline has never seen must not slip through the
        # gate silently: fail until the committed baseline is regenerated
        # to cover it, so new kernels can't ship ungated.
        lines.append(f"{name}: UNGATED new kernel missing from baseline "
                     "(regenerate the committed baseline to cover it)")
        ok = False
    return ok, lines


def summary_lines(report: Dict) -> List[str]:
    """One line per kernel for terminal output."""
    lines: List[str] = []
    for name in sorted(report.get("kernels", {})):
        entry = report["kernels"][name]
        line = (f"{name:<20} {entry['median_rate']:>12.1f} steps/s "
                f"(p10 {entry['p10_rate']:.1f}, p90 {entry['p90_rate']:.1f})")
        speedup = entry.get("speedup_vs_naive")
        if speedup is not None:
            line += f"  {speedup:.2f}x vs naive"
        lines.append(line)
    return lines


def markdown_summary(report: Dict, gate: Tuple[bool, List[str]] = None,
                     baseline_path: str = None,
                     max_regress: float = None) -> str:
    """Render the report (and optional gate verdicts) as markdown.

    Written to ``$GITHUB_STEP_SUMMARY`` by CI so the per-kernel rates
    and every gate verdict -- including ``--skip-on-noise`` skips,
    otherwise invisible in a green build -- appear on the run page.
    """
    out: List[str] = ["## Benchmark report", ""]
    out.append("| kernel | median steps/s | p10 | p90 | vs naive |")
    out.append("|---|---:|---:|---:|---:|")
    for name in sorted(report.get("kernels", {})):
        entry = report["kernels"][name]
        speedup = entry.get("speedup_vs_naive")
        out.append(
            f"| {name} | {entry['median_rate']:.1f} "
            f"| {entry['p10_rate']:.1f} | {entry['p90_rate']:.1f} "
            f"| {f'{speedup:.2f}x' if speedup is not None else '-'} |")
    if gate is not None:
        ok, lines = gate
        out.append("")
        out.append(f"### Gate vs `{baseline_path}` "
                   f"(max regress {max_regress:.0%}): "
                   f"{'PASS' if ok else 'FAIL'}")
        out.append("")
        for line in lines:
            marker = ("⚠️ " if ("SKIPPED" in line or "noisy" in line
                               or "host" in line)
                      else "❌ " if ("REGRESSION" in line
                                    or "MISSING" in line
                                    or "UNGATED" in line)
                      else "")
            out.append(f"- {marker}{line}")
    out.append("")
    return "\n".join(out)


def main_compare(old_path: str, new_report: Dict, max_regress: float,
                 skip_on_noise: bool,
                 summary_path: str = None) -> int:
    """Load ``old_path``, compare, print verdicts; returns an exit code."""
    old = load_report(old_path)
    ok, lines = compare_reports(old, new_report, max_regress,
                                skip_on_noise=skip_on_noise)
    print(f"comparison vs {old_path} (max regress "
          f"{max_regress:.0%}):")
    for line in lines:
        print("  " + line)
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(markdown_summary(new_report, gate=(ok, lines),
                                      baseline_path=old_path,
                                      max_regress=max_regress))
    if not ok:
        print("FAIL: benchmark regression detected", file=sys.stderr)
        return 1
    print("PASS: no benchmark regression")
    return 0
