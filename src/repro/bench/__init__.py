"""Continuous benchmark harness for the hot simulation kernels.

``python -m repro.bench`` times the per-step kernels of every substrate
(camera network, CPN routing, swarm coverage, multicore governor, cloud
autoscaler, sensor network, the core ``SelfAwareNode.step`` and the
observability emit path), each with warmup and repeated timed runs, and
reports median / p10 / p90 step rates as machine-readable JSON
(``repro.bench/v1`` schema).

Where an optimised code path retains its naive reference implementation
(spatial grid vs full scan, gated vs per-step oracle recomputation,
memoised vs full-copy window statistics, ...), the harness times both in
the same run and records the speedup -- so "N x faster than the
pre-optimisation baseline" is always measured, never remembered.

``--compare OLD.json --max-regress 10%`` turns the harness into a CI
regression gate.
"""

from .harness import KernelResult, KernelSpec, run_spec
from .kernels import KERNELS, get_kernels
from .report import (SCHEMA, build_report, compare_reports, parse_percent,
                     write_report)

__all__ = [
    "KernelResult", "KernelSpec", "run_spec",
    "KERNELS", "get_kernels",
    "SCHEMA", "build_report", "compare_reports", "parse_percent",
    "write_report",
]
