"""pyselfaware: computational self-awareness, from psychology to engineering.

A full reproduction of the framework described in Peter R. Lewis,
*"Self-aware Computing Systems: From Psychology to Engineering"*
(DATE 2017), together with simulators for every case-study substrate the
paper grounds the framework in, and a benchmark suite testing the paper's
central hypothesis: systems that engage in self-awareness can better
manage trade-offs between goals at run time in complex, uncertain and
dynamic environments.

Subpackages
-----------
``repro.core``
    The framework: levels, spans, knowledge, self-models, goals,
    reasoners, self-expression, meta-self-awareness, self-explanation,
    attention, collective self-awareness.
``repro.learning``
    Common learning techniques (bandits, Q-learning, RLS, forecasting,
    drift detection, learning automata, ensembles).
``repro.envgen``
    Synthetic environment and workload generators (drift, shocks,
    seasonality, Markov modulation).
``repro.metrics``
    Multi-objective evaluation: Pareto fronts, hypervolume, regret,
    adaptation metrics, summary statistics.
``repro.smartcamera`` / ``repro.cloud`` / ``repro.multicore`` /
``repro.cpn`` / ``repro.sensornet`` / ``repro.swarm``
    The case-study substrates, each with self-aware and baseline
    controllers.
``repro.experiments``
    The experiment harness and one module per experiment in DESIGN.md.
``repro.obs``
    Observability: structured events, metrics (streaming percentiles),
    phase timers and JSONL trace export, wired through the core loop,
    every simulator and the experiment harness.  Off by default.
"""

from . import core, learning, obs

__version__ = "1.2.0"

__all__ = ["core", "learning", "obs", "__version__"]
