"""Deterministic fault injection and graceful degradation.

The resilience layer: declarative :class:`FaultPlan` schedules
(:mod:`repro.faults.plan`), the :class:`FaultInjector` that interprets
them against the core loop and every substrate simulator
(:mod:`repro.faults.injector`), and the :class:`DegradationMonitor`
fallback machinery that keeps a node useful while its self-model is
degraded (:mod:`repro.faults.degrade`).

Everything is seed-driven and provably inert when disabled: a ``None``
or all-zero-intensity plan leaves each run byte-identical to the
unfaulted code path.
"""

from .degrade import (CHEAPER_LEVEL, DEGRADATION_POLICIES, HOLD_LAST_GOOD,
                      WIDEN_ATTENTION, DegradationMonitor, model_confidence)
from .injector import FaultInjector, make_injector
from .plan import (CLOCK_SKEW, CRASH, FAULT_KINDS, LINK_DEGRADE,
                   SENSOR_DROPOUT, SENSOR_NOISE, WORKLOAD_SPIKE, FaultPlan,
                   FaultSpec)

__all__ = [
    "FaultPlan", "FaultSpec", "FAULT_KINDS",
    "SENSOR_NOISE", "SENSOR_DROPOUT", "CRASH", "LINK_DEGRADE",
    "WORKLOAD_SPIKE", "CLOCK_SKEW",
    "FaultInjector", "make_injector",
    "DegradationMonitor", "model_confidence", "DEGRADATION_POLICIES",
    "HOLD_LAST_GOOD", "CHEAPER_LEVEL", "WIDEN_ATTENTION",
]
