"""The fault injector: a deterministic interpreter for fault plans.

One :class:`FaultInjector` is attached per run (to a core control loop
or to a substrate simulation).  Every step the host calls
:meth:`FaultInjector.begin_step` -- which emits ``fault.start`` /
``fault.end`` transition events on the observability bus -- and then
queries the hooks that match its physics (``perturb``, ``dropped``,
``crashed_targets``, ``link_factor``, ...).

Two properties are load-bearing for the rest of the repo:

* **Isolation.**  The injector owns its own random generator, seeded
  from ``(plan.seed, run_seed)``.  It never draws from the simulator's
  stream, so attaching a plan perturbs *what happens*, not the
  substrate's own randomness.
* **Inertness at zero.**  Every hook short-circuits to an exact
  identity (no RNG draw, no float arithmetic) when no non-zero spec is
  active.  An all-zero-intensity plan therefore reproduces the
  unfaulted run byte-for-byte -- the acceptance criterion the
  zero-plan tests pin down.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import events as obs_events
from .plan import (CLOCK_SKEW, CRASH, LINK_DEGRADE, SENSOR_DROPOUT,
                   SENSOR_NOISE, WORKLOAD_SPIKE, FaultPlan, FaultSpec)


class FaultInjector:
    """Interprets a :class:`FaultPlan` over a stepped simulation.

    Parameters
    ----------
    plan:
        The disturbance schedule.  ``None`` behaves as the empty plan.
    run_seed:
        The host run's seed, folded into the injector's generator so
        different shards of one experiment draw different noise while
        remaining individually reproducible.
    """

    def __init__(self, plan: Optional[FaultPlan],
                 run_seed: int = 0) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.run_seed = int(run_seed)
        self._rng = np.random.default_rng(
            [0xFA17, self.plan.seed & 0xFFFFFFFF, self.run_seed & 0xFFFFFFFF])
        self._now: float = float("-inf")
        self._active: Tuple[FaultSpec, ...] = ()
        self._was_active: FrozenSet[FaultSpec] = frozenset()
        self._started: Dict[str, bool] = {}
        #: Per-spec crash cohorts, resolved lazily and cached so the
        #: same spec downs the same entities every time it is queried
        #: (and across the whole window).
        self._crash_cohorts: Dict[int, Tuple[Any, ...]] = {}
        self.events_emitted = 0
        #: Active spec -> seq of its ``fault.start`` event, so decisions
        #: made under a fault can cite the fault as a cause and a
        #: ``fault.end`` cites the window it closes.
        self._fault_seqs: Dict[FaultSpec, int] = {}

    # ------------------------------------------------------------------
    # Stepping

    def begin_step(self, t: float) -> None:
        """Advance the injector's clock; emit window transition events."""
        self._now = float(t)
        active = tuple(self.plan.active(t))
        active_set = frozenset(active)
        if active_set != self._was_active:
            if obs_events.enabled():
                for spec in sorted(active_set - self._was_active,
                                   key=lambda s: (s.kind, s.start)):
                    started = obs_events.emit(
                        "fault.start", time=t, kind=spec.kind,
                        intensity=spec.intensity,
                        start=spec.start, end=spec.end,
                        target=spec.target)
                    if started is not None:
                        self._fault_seqs[spec] = started.seq
                    self.events_emitted += 1
                for spec in sorted(self._was_active - active_set,
                                   key=lambda s: (s.kind, s.start)):
                    obs_events.emit("fault.end", time=t, kind=spec.kind,
                                    intensity=spec.intensity,
                                    start=spec.start, end=spec.end,
                                    target=spec.target,
                                    causes=(self._fault_seqs.pop(spec, None),))
                    self.events_emitted += 1
            self._started = {
                spec.kind: True for spec in (active_set - self._was_active)}
            self._was_active = active_set
        else:
            self._started = {}
        self._active = active

    @property
    def now(self) -> float:
        """The time of the last :meth:`begin_step`."""
        return self._now

    def active(self, kind: Optional[str] = None) -> List[FaultSpec]:
        """Specs active at the current step (optionally filtered by kind)."""
        if kind is None:
            return list(self._active)
        return [s for s in self._active if s.kind == kind]

    def just_started(self, kind: str) -> bool:
        """Whether a window of ``kind`` opened on the current step."""
        return self._started.get(kind, False)

    def active_fault_seqs(self) -> Tuple[int, ...]:
        """Seq ids of the ``fault.start`` events of currently active specs.

        The provenance hook hosts feed into their step's causal scope:
        any decision made while these windows are open is (potentially)
        downstream of them.  Empty when telemetry was off at the
        transitions.
        """
        return tuple(sorted(
            self._fault_seqs[spec] for spec in self._active
            if spec in self._fault_seqs))

    # ------------------------------------------------------------------
    # Sensor hooks

    def perturb(self, value: float, target: Optional[Any] = None) -> float:
        """Apply active sensor-noise specs to a sensed ``value``.

        Identity (no draw) when no matching spec is active.
        """
        out = value
        for spec in self._active:
            if spec.kind != SENSOR_NOISE:
                continue
            if spec.target is not None and spec.target != target:
                continue
            out = out + float(self._rng.normal(0.0, spec.intensity))
        return out

    def dropped(self, target: Optional[Any] = None) -> bool:
        """Whether a reading from ``target`` is lost this step.

        No draw -- and therefore ``False`` -- when no matching
        sensor-dropout spec is active.
        """
        for spec in self._active:
            if spec.kind != SENSOR_DROPOUT:
                continue
            if spec.target is not None and spec.target != target:
                continue
            if self._rng.random() < spec.intensity:
                return True
        return False

    # ------------------------------------------------------------------
    # Crash-and-recover hooks

    def _cohort(self, spec: FaultSpec,
                population: Sequence[Any]) -> Tuple[Any, ...]:
        """The deterministic set of entities a crash spec takes down."""
        key = self.plan.specs.index(spec)
        cached = self._crash_cohorts.get(key)
        if cached is not None:
            return cached
        if spec.target is not None:
            cohort: Tuple[Any, ...] = (spec.target,)
        else:
            n = len(population)
            k = min(n, int(round(spec.intensity * n)))
            if k <= 0 and spec.intensity > 0.0 and n > 0:
                k = 1  # a non-zero crash spec downs at least one entity
            # A dedicated stream keyed by (plan seed, spec index) so the
            # cohort is independent of when/how often hooks are queried.
            rng = np.random.default_rng(
                [0xC4A5, self.plan.seed & 0xFFFFFFFF, key])
            idx = rng.choice(n, size=k, replace=False)
            cohort = tuple(population[int(i)] for i in sorted(idx))
        self._crash_cohorts[key] = cohort
        return cohort

    def crashed_targets(self, population: Sequence[Any]) -> FrozenSet[Any]:
        """Entities (from ``population``) down at the current step.

        The cohort per spec is resolved once from a dedicated seed
        stream, so it is stable across the window and across repeated
        queries; recovery is implicit when the window closes.
        """
        down: set = set()
        for spec in self._active:
            if spec.kind != CRASH:
                continue
            down.update(self._cohort(spec, population))
        return frozenset(down)

    def is_crashed(self, target: Any, population: Sequence[Any]) -> bool:
        """Whether one specific entity is down at the current step."""
        return target in self.crashed_targets(population)

    # ------------------------------------------------------------------
    # Link / load / clock hooks (pure functions of the active windows)

    def link_factor(self, target: Optional[Any] = None) -> float:
        """Multiplier on link delay; exactly ``1.0`` when inactive."""
        factor = 1.0
        for spec in self._active:
            if spec.kind != LINK_DEGRADE:
                continue
            if spec.target is not None and spec.target != target:
                continue
            factor *= (1.0 + spec.intensity)
        return factor

    def link_loss_prob(self, target: Optional[Any] = None) -> float:
        """Extra per-hop loss probability; exactly ``0.0`` when inactive."""
        keep = 1.0
        for spec in self._active:
            if spec.kind != LINK_DEGRADE:
                continue
            if spec.target is not None and spec.target != target:
                continue
            keep *= max(0.0, 1.0 - spec.intensity)
        return 1.0 - keep

    def link_lost(self, target: Optional[Any] = None) -> bool:
        """Sample a forced link loss (no draw when probability is zero)."""
        prob = self.link_loss_prob(target)
        if prob <= 0.0:
            return False
        return bool(self._rng.random() < prob)

    def demand_factor(self) -> float:
        """Multiplier on offered load; exactly ``1.0`` when inactive."""
        factor = 1.0
        for spec in self._active:
            if spec.kind == WORKLOAD_SPIKE:
                factor *= (1.0 + spec.intensity)
        return factor

    def spiked_count(self, base: int = 1) -> int:
        """``base`` discrete work batches scaled by active workload spikes.

        Whole multiples replicate deterministically; the fractional
        remainder is resolved by one injector draw.  Exactly ``base``
        (no draw) when no spike is active.
        """
        factor = self.demand_factor()
        if factor == 1.0:
            return base
        scaled = base * factor
        whole = int(scaled)
        frac = scaled - whole
        if frac > 0.0 and self._rng.random() < frac:
            whole += 1
        return max(0, whole)

    def clock_offset(self, target: Optional[Any] = None) -> float:
        """Perceived-time lead over true time; exactly ``0.0`` when inactive."""
        offset = 0.0
        for spec in self._active:
            if spec.kind != CLOCK_SKEW:
                continue
            if spec.target is not None and spec.target != target:
                continue
            offset += spec.intensity
        return offset

    def perceived_time(self, t: float, target: Optional[Any] = None) -> float:
        """``t`` as seen through any active clock skew (identity when none)."""
        offset = self.clock_offset(target)
        if offset == 0.0:
            return t
        return t + offset


def make_injector(plan: Optional[FaultPlan],
                  run_seed: int = 0) -> Optional[FaultInjector]:
    """An injector for ``plan``, or ``None`` for a missing/inert plan.

    Substrates guard every hook with ``if faults is not None``; routing
    inert plans to ``None`` here makes the disabled path not just
    value-identical but *instruction*-identical to the pre-fault code.
    """
    if plan is None or plan.is_inert():
        return None
    return FaultInjector(plan, run_seed=run_seed)
