"""Graceful degradation: act sensibly when the self-model goes stale.

Injected faults do not only hurt through the substrate -- they corrupt
the node's *self-model*: under sensor noise or a regime shift the
learned action model's confidence collapses, and a purely greedy
reasoner happily exploits garbage.  The paper's answer is
meta-self-awareness: notice that your own models have degraded and fall
back to something safer.

:class:`DegradationMonitor` implements that notice-and-fallback loop for
the generic control loop in :mod:`repro.core.loop`:

* it reads the reasoner's model confidence for each chosen action
  (any reasoner exposing ``.model.confidence(context, action)``, e.g.
  :class:`~repro.core.reasoner.UtilityReasoner`);
* hysteresis turns the noisy confidence series into a degraded /
  healthy state (``window`` consecutive readings below ``threshold``
  enter degradation, the same count at or above ``recover_threshold``
  exits);
* while degraded, one of three fallback policies applies:

  ``hold_last_good``
      Keep expressing the last action chosen while healthy instead of
      trusting fresh low-confidence decisions.
  ``cheaper_level``
      Temporarily drop the node's highest self-awareness level (META,
      then GOAL, then TIME, then INTERACTION) so decisions rest on the
      simpler -- better-supported -- context.
  ``widen_attention``
      Lift the attention budget and attend to everything, buying the
      model more evidence per step so confidence recovers faster.

Entering and leaving degradation emits ``degrade.enter`` /
``degrade.exit`` events, so traces and self-explanations cite the
fallback alongside the faults that provoked it.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, List, Mapping, Optional, Tuple

from ..core.attention import FullAttention
from ..core.levels import SelfAwarenessLevel
from ..obs import events as obs_events

HOLD_LAST_GOOD = "hold_last_good"
CHEAPER_LEVEL = "cheaper_level"
WIDEN_ATTENTION = "widen_attention"

DEGRADATION_POLICIES: Tuple[str, ...] = (
    HOLD_LAST_GOOD, CHEAPER_LEVEL, WIDEN_ATTENTION)

#: Drop order for ``cheaper_level``: shed the most sophisticated --
#: most model-hungry -- capability first, never stimulus awareness.
_SHED_ORDER = (SelfAwarenessLevel.META, SelfAwarenessLevel.GOAL,
               SelfAwarenessLevel.TIME, SelfAwarenessLevel.INTERACTION)


def model_confidence(node: Any, context: Mapping[str, float],
                     action: Hashable) -> Optional[float]:
    """The reasoner's confidence in its model of ``action``, if it has one.

    Returns ``None`` for reasoners without an inspectable model (static
    or reactive policies), which the monitor treats as "nothing to
    degrade from".
    """
    model = getattr(node.reasoner, "model", None)
    confidence = getattr(model, "confidence", None)
    if confidence is None:
        return None
    try:
        value = float(confidence(context, action))
    except (TypeError, ValueError):
        return None
    if math.isnan(value):
        return None
    return value


class DegradationMonitor:
    """Hysteresis detector over self-model confidence, with fallbacks.

    Parameters
    ----------
    policy:
        One of :data:`DEGRADATION_POLICIES`.
    threshold:
        Confidence below this counts as a degraded reading.
    recover_threshold:
        Confidence at or above this counts toward recovery (defaults to
        ``threshold``; set higher for wider hysteresis).
    window:
        Consecutive readings required to change state, both ways.
    budget_factor:
        For ``widen_attention``: multiplier on the attention budget
        (unbounded budgets stay unbounded).
    """

    def __init__(self, policy: str = HOLD_LAST_GOOD, *,
                 threshold: float = 0.35,
                 recover_threshold: Optional[float] = None,
                 window: int = 4,
                 budget_factor: float = 4.0) -> None:
        if policy not in DEGRADATION_POLICIES:
            raise ValueError(f"unknown degradation policy {policy!r}; "
                             f"known: {DEGRADATION_POLICIES}")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.policy = policy
        self.threshold = threshold
        self.recover_threshold = (threshold if recover_threshold is None
                                  else recover_threshold)
        self.window = window
        self.budget_factor = budget_factor
        self.degraded = False
        self.episodes: List[Tuple[float, Optional[float]]] = []
        self._low_run = 0
        self._high_run = 0
        self._last_good_action: Optional[Hashable] = None
        self._saved_profile: Any = None
        self._saved_attention: Any = None
        self._saved_budget: Optional[float] = None
        self._last_confidence: Optional[float] = None
        self._enter_seq: Optional[int] = None

    @property
    def last_confidence(self) -> Optional[float]:
        """The confidence reading from the most recent ``filter_action``."""
        return self._last_confidence

    @property
    def cause_seq(self) -> Optional[int]:
        """Seq of the current episode's ``degrade.enter`` event.

        ``None`` while healthy (or when telemetry was off at entry).
        While degraded, every action the fallback policy shapes is
        causally downstream of this event; the control loop cites it in
        the step's causal scope so explanations link fallback behaviour
        to the degradation that provoked it.
        """
        return self._enter_seq if self.degraded else None

    # ------------------------------------------------------------------

    def filter_action(self, now: float, node: Any,
                      context: Mapping[str, float],
                      action: Hashable) -> Hashable:
        """Observe one decision; return the action that should be applied.

        Call once per loop step with the node's chosen ``action``.  The
        return value equals ``action`` except under ``hold_last_good``
        while degraded, when the last healthy choice is repeated.
        """
        confidence = model_confidence(node, context, action)
        self._last_confidence = confidence
        if confidence is None:
            # No inspectable model: record the action as good and pass it
            # through -- static policies cannot degrade.
            self._last_good_action = action
            return action

        if confidence < self.threshold:
            self._low_run += 1
            self._high_run = 0
        else:
            self._low_run = 0
            if confidence >= self.recover_threshold:
                self._high_run += 1

        if not self.degraded:
            if self._low_run >= self.window:
                self._enter(now, node, confidence)
            else:
                self._last_good_action = action
        elif self._high_run >= self.window:
            self._exit(now, node, confidence)

        if self.degraded and self.policy == HOLD_LAST_GOOD \
                and self._last_good_action is not None:
            return self._last_good_action
        if not self.degraded:
            self._last_good_action = action
        return action

    # ------------------------------------------------------------------

    def _enter(self, now: float, node: Any, confidence: float) -> None:
        self.degraded = True
        self._high_run = 0
        self.episodes.append((now, None))
        if self.policy == CHEAPER_LEVEL:
            self._saved_profile = node.profile
            profile = node.profile
            for level in _SHED_ORDER:
                if profile.has(level):
                    profile = profile.without_level(level)
                    break
            node.profile = profile
        elif self.policy == WIDEN_ATTENTION:
            self._saved_attention = node.attention
            self._saved_budget = node.attention_budget
            node.attention = FullAttention()
            if math.isfinite(node.attention_budget):
                node.attention_budget = node.attention_budget * self.budget_factor
        if obs_events.enabled():
            entered = obs_events.emit(
                "degrade.enter", node=node.name, time=now,
                policy=self.policy, confidence=confidence,
                threshold=self.threshold)
            self._enter_seq = entered.seq if entered is not None else None

    def _exit(self, now: float, node: Any, confidence: float) -> None:
        self.degraded = False
        self._low_run = 0
        self._high_run = 0
        if self.episodes and self.episodes[-1][1] is None:
            start, _ = self.episodes[-1]
            self.episodes[-1] = (start, now)
        if self.policy == CHEAPER_LEVEL and self._saved_profile is not None:
            node.profile = self._saved_profile
            self._saved_profile = None
        elif self.policy == WIDEN_ATTENTION:
            if self._saved_attention is not None:
                node.attention = self._saved_attention
                self._saved_attention = None
            if self._saved_budget is not None:
                node.attention_budget = self._saved_budget
                self._saved_budget = None
        if obs_events.enabled():
            # Leaving degradation is a consequence of having entered it.
            obs_events.emit("degrade.exit", node=node.name, time=now,
                            policy=self.policy, confidence=confidence,
                            threshold=self.recover_threshold,
                            causes=(self._enter_seq,))
        self._enter_seq = None

    def degraded_steps(self, final_time: Optional[float] = None) -> float:
        """Total simulated time spent degraded (open episodes use
        ``final_time``; open episodes with no ``final_time`` count zero)."""
        total = 0.0
        for start, end in self.episodes:
            if end is None:
                if final_time is not None:
                    total += max(0.0, final_time - start)
            else:
                total += end - start
        return total
