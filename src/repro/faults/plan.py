"""Fault plans: declarative, seed-driven disturbance schedules.

The paper's central claim is that computational self-awareness pays off
precisely when the environment misbehaves -- cameras fail, volunteer
nodes churn, links drop.  A :class:`FaultPlan` makes that misbehaviour a
first-class, *reproducible* experimental input: a schedule of
:class:`FaultSpec` windows, each naming a kind of disturbance, when it
is active, how strong it is, and (optionally) which entity it targets.

Plans are data, not behaviour: they are frozen, hashable, picklable and
JSON-round-trippable, so they can ride through the parallel engine's
shard cache keys unchanged.  The interpreter lives in
:mod:`repro.faults.injector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: The recognised fault kinds.  Substrates consume the subset that makes
#: sense for their physics (see the hook table in DESIGN.md):
#:
#: ``sensor_noise``
#:     Additive Gaussian noise on sensed values; ``intensity`` is the
#:     noise standard deviation (in the sensed unit).
#: ``sensor_dropout``
#:     Readings are lost with probability ``intensity``.
#: ``crash``
#:     Crash-and-recover: the targeted entity (camera, robot, node) is
#:     dead for the window and comes back afterwards.  With no explicit
#:     ``target``, ``intensity`` is the *fraction* of the population
#:     taken down (chosen deterministically from the plan seed).
#: ``link_degrade``
#:     Link quality loss: delays scale by ``1 + intensity`` and packets
#:     are additionally lost with probability ``intensity`` per hop.
#: ``workload_spike``
#:     Offered load scales by ``1 + intensity`` for the window.
#: ``clock_skew``
#:     The entity's *perceived* time leads true time by ``intensity``
#:     time units (the world itself is unaffected).
SENSOR_NOISE = "sensor_noise"
SENSOR_DROPOUT = "sensor_dropout"
CRASH = "crash"
LINK_DEGRADE = "link_degrade"
WORKLOAD_SPIKE = "workload_spike"
CLOCK_SKEW = "clock_skew"

FAULT_KINDS: Tuple[str, ...] = (
    SENSOR_NOISE, SENSOR_DROPOUT, CRASH, LINK_DEGRADE, WORKLOAD_SPIKE,
    CLOCK_SKEW)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled disturbance window.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start, end:
        Active window ``[start, end)`` in simulated time.
    intensity:
        Kind-specific strength (see the kind table above).  An intensity
        of exactly ``0.0`` makes the spec inert: interpreters must treat
        it as absent.
    target:
        Optional entity selector (an integer index or a name).  ``None``
        means "kind-default": the whole population for ``crash`` (scaled
        by intensity), every sensor/link otherwise.
    """

    kind: str
    start: float
    end: float
    intensity: float
    target: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not self.end > self.start:
            raise ValueError("fault window needs end > start")
        if self.intensity < 0.0:
            raise ValueError("intensity must be non-negative")

    def active(self, t: float) -> bool:
        """Whether the window covers time ``t``."""
        return self.start <= t < self.end

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form (used in shard payloads and trace headers)."""
        return {"kind": self.kind, "start": self.start, "end": self.end,
                "intensity": self.intensity, "target": self.target}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(kind=record["kind"], start=record["start"],
                   end=record["end"], intensity=record["intensity"],
                   target=record.get("target"))


@dataclass(frozen=True)
class FaultPlan:
    """A full disturbance schedule plus the seed that resolves its draws.

    The seed governs *every* random choice the injector makes (which
    entities crash, which readings drop, the noise samples), and the
    injector draws from its own generator -- never the simulator's -- so
    a plan perturbs a run without perturbing the substrate's random
    stream.  Same plan + same seed therefore replays byte-identically,
    and the empty (or all-zero-intensity) plan is provably inert.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of specs but store a tuple (hashability).
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def is_inert(self) -> bool:
        """True when no spec can ever perturb anything."""
        return all(spec.intensity == 0.0 for spec in self.specs)

    def active(self, t: float, kind: Optional[str] = None) -> List[FaultSpec]:
        """Non-inert specs whose window covers ``t`` (optionally by kind)."""
        return [spec for spec in self.specs
                if spec.intensity > 0.0 and spec.active(t)
                and (kind is None or spec.kind == kind)]

    def scaled(self, factor: float) -> "FaultPlan":
        """The same schedule with every intensity multiplied by ``factor``.

        The resilience sweep (E13) runs one schedule at several
        intensities; scaling the plan rather than rebuilding it keeps
        the windows -- and therefore the recovery-time measurement
        points -- aligned across arms.
        """
        if factor < 0.0:
            raise ValueError("factor must be non-negative")
        return FaultPlan(
            specs=tuple(replace(spec, intensity=spec.intensity * factor)
                        for spec in self.specs),
            seed=self.seed)

    def window(self, kind: Optional[str] = None) -> Tuple[float, float]:
        """The (earliest start, latest end) over non-inert specs.

        Returns ``(nan, nan)`` when nothing matches; E13 uses this to
        locate the recovery measurement window.
        """
        import math
        matching = [s for s in self.specs if s.intensity > 0.0
                    and (kind is None or s.kind == kind)]
        if not matching:
            return (math.nan, math.nan)
        return (min(s.start for s in matching), max(s.end for s in matching))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {"seed": self.seed,
                "specs": [spec.as_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict`."""
        return cls(specs=tuple(FaultSpec.from_dict(s)
                               for s in record.get("specs", ())),
                   seed=int(record.get("seed", 0)))

    @classmethod
    def build(cls, specs: Iterable[FaultSpec], seed: int = 0) -> "FaultPlan":
        """Convenience constructor from any iterable of specs."""
        return cls(specs=tuple(specs), seed=seed)
