"""The handover market: auction-based object trading between cameras.

Following the published smart-camera handover mechanism, ownership of a
tracked object is traded in single-item auctions: the current owner
advertises the object; cameras that can see it bid their visibility; the
best bidder wins and pays a (second-price, Vickrey) amount.  Payments are
virtual currency -- they matter for per-camera accounting, not for the
network-level utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True, slots=True)
class Bid:
    """One camera's bid for an advertised object."""

    cam_id: int
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("bid amount must be non-negative")


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of a single handover auction."""

    object_id: int
    seller: int
    winner: Optional[int]
    price: float
    n_bids: int

    @property
    def sold(self) -> bool:
        """Whether ownership changed hands."""
        return self.winner is not None and self.winner != self.seller


class HandoverMarket:
    """Runs Vickrey auctions and keeps trading statistics.

    ``reserve`` is the minimum bid the seller accepts -- typically its own
    current visibility of the object, so trades only happen when someone
    can genuinely track better.
    """

    def __init__(self) -> None:
        self.auctions_run = 0
        self.trades = 0
        self.volume = 0.0

    def run_auction(self, object_id: int, seller: int, bids: Sequence[Bid],
                    reserve: float = 0.0) -> AuctionOutcome:
        """Second-price auction among ``bids`` with a seller ``reserve``.

        The winner pays the larger of the reserve and the second-highest
        bid.  Bids below the reserve are discarded.  Ties break toward the
        lowest camera id (determinism for experiments).
        """
        if reserve < 0:
            raise ValueError("reserve must be non-negative")
        self.auctions_run += 1
        valid = sorted((b for b in bids if b.amount >= reserve and b.cam_id != seller),
                       key=lambda b: (-b.amount, b.cam_id))
        if not valid:
            return AuctionOutcome(object_id=object_id, seller=seller,
                                  winner=None, price=0.0, n_bids=len(bids))
        winner = valid[0]
        second = valid[1].amount if len(valid) > 1 else reserve
        price = max(second, reserve)
        self.trades += 1
        self.volume += price
        return AuctionOutcome(object_id=object_id, seller=seller,
                              winner=winner.cam_id, price=price,
                              n_bids=len(bids))

    @property
    def trade_rate(self) -> float:
        """Fraction of auctions that resulted in a handover."""
        if self.auctions_run == 0:
            return 0.0
        return self.trades / self.auctions_run
