"""Camera geometry and the vision graph.

Cameras are fixed sensors with circular fields of view in the unit
square.  The *vision graph* connects cameras whose fields of view overlap
-- the natural neighbourhood for handover advertisement, and the
substrate over which interaction-awareness operates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from ..geom import SpatialGrid
from ..geom.exact import HAVE_NUMPY
from .objects import MovingObject
from .soa import best_observer_row_scalar, seeing_ids_scalar

#: Default for :class:`CameraNetwork`'s spatial index.  The naive scans
#: are retained (``use_grid=False``) as the reference implementation for
#: the equivalence tests and the ``repro.bench`` baselines; both paths
#: apply the same exact predicates, so results are identical either way.
USE_SPATIAL_GRID = True

#: Default for the struct-of-arrays observer scans (see
#: :mod:`repro.smartcamera.soa`).  The scalar per-candidate loops are
#: retained as the reference; the batched scans prefilter with banded
#: squared distances and re-decide every ambiguous candidate with the
#: exact scalar predicate, so both paths return identical results.
#: Forced off (with the other fast paths) by ``REPRO_FORCE_NAIVE=1`` in
#: the test harness.
USE_FAST_SCANS = True


@dataclass(frozen=True)
class Camera:
    """One fixed camera with a circular field of view."""

    cam_id: int
    x: float
    y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def distance_to(self, obj: MovingObject) -> float:
        """Euclidean distance from the camera to the object."""
        return math.hypot(obj.x - self.x, obj.y - self.y)

    def sees(self, obj: MovingObject) -> bool:
        """Whether the object is inside this camera's field of view."""
        return math.hypot(obj.x - self.x, obj.y - self.y) <= self.radius

    def visibility(self, obj: MovingObject) -> float:
        """Tracking confidence in ``[0, 1]``: 1 at centre, 0 at the rim.

        The published camera studies use exactly this distance-based
        confidence as the per-step tracking utility of an owned object.
        """
        dist = math.hypot(obj.x - self.x, obj.y - self.y)
        if dist > self.radius:
            return 0.0
        return 1.0 - dist / self.radius


class CameraNetwork:
    """A set of cameras plus their vision graph.

    Parameters
    ----------
    cameras:
        The camera set; ids must be unique.
    use_grid:
        Spatial index for the observer queries; ``None`` follows the
        module default :data:`USE_SPATIAL_GRID`.  Results are identical
        either way (the grid only prunes non-matching candidates).
    fast:
        Struct-of-arrays observer scans; ``None`` follows the module
        default :data:`USE_FAST_SCANS` (and stays off without numpy).
        Results are identical either way.
    """

    def __init__(self, cameras: List[Camera],
                 use_grid: Optional[bool] = None,
                 fast: Optional[bool] = None) -> None:
        if not cameras:
            raise ValueError("need at least one camera")
        ids = [c.cam_id for c in cameras]
        if len(set(ids)) != len(ids):
            raise ValueError("camera ids must be unique")
        self.cameras: Dict[int, Camera] = {c.cam_id: c for c in cameras}
        self.vision_graph = nx.Graph()
        self.vision_graph.add_nodes_from(ids)
        for a, b in itertools.combinations(cameras, 2):
            overlap = math.hypot(a.x - b.x, a.y - b.y) <= (a.radius + b.radius)
            if overlap:
                self.vision_graph.add_edge(a.cam_id, b.cam_id)
        self._ids = sorted(self.cameras)
        self._neighbours: Dict[int, List[int]] = {
            cid: sorted(self.vision_graph.neighbors(cid)) for cid in ids}
        self._grid: Optional[SpatialGrid] = None
        if use_grid if use_grid is not None else USE_SPATIAL_GRID:
            self._grid = SpatialGrid(max(c.radius for c in cameras))
            for cam in cameras:
                self._grid.insert_disc(cam.cam_id, cam.x, cam.y, cam.radius)
            self._grid.finalise()
        self._fast = ((fast if fast is not None else USE_FAST_SCANS)
                      and HAVE_NUMPY)
        self._columns = None  # built lazily on first fast query

    @property
    def fast(self) -> bool:
        """Whether the struct-of-arrays scans are enabled."""
        return self._fast

    def columns(self):
        """The :class:`~repro.smartcamera.soa.CameraColumns` for this
        network, built lazily (the camera set is immutable)."""
        if self._columns is None:
            from .soa import CameraColumns
            self._columns = CameraColumns(self)
        return self._columns

    @classmethod
    def grid(cls, rows: int, cols: int, radius: float = 0.25,
             use_grid: Optional[bool] = None,
             fast: Optional[bool] = None) -> "CameraNetwork":
        """Regular rows x cols grid covering the unit square."""
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        cameras = []
        cam_id = 0
        for r in range(rows):
            for c in range(cols):
                x = (c + 0.5) / cols
                y = (r + 0.5) / rows
                cameras.append(Camera(cam_id=cam_id, x=x, y=y, radius=radius))
                cam_id += 1
        return cls(cameras, use_grid=use_grid, fast=fast)

    @classmethod
    def random(cls, n: int, radius: float = 0.25, seed: int = 0,
               use_grid: Optional[bool] = None,
               fast: Optional[bool] = None) -> "CameraNetwork":
        """Uniformly random placement of ``n`` cameras."""
        rng = np.random.default_rng(seed)
        cameras = [Camera(cam_id=i, x=float(rng.uniform(0, 1)),
                          y=float(rng.uniform(0, 1)), radius=radius)
                   for i in range(n)]
        return cls(cameras, use_grid=use_grid, fast=fast)

    def __len__(self) -> int:
        return len(self.cameras)

    def ids(self) -> List[int]:
        """All camera ids, sorted."""
        return list(self._ids)

    def neighbours(self, cam_id: int) -> List[int]:
        """Vision-graph neighbours of ``cam_id``."""
        return list(self._neighbours[cam_id])

    def candidate_ids_at(self, x: float, y: float) -> Optional[frozenset]:
        """Superset of camera ids whose field of view could cover a point.

        ``None`` when the network has no spatial index (callers then scan
        everything).  A camera outside this set has zero visibility at
        ``(x, y)`` by construction, so filtering any candidate list
        through it cannot change which cameras actually match.
        """
        grid = self._grid
        if grid is None:
            return None
        return grid.candidate_set_at(x, y)

    def observers(self, obj: MovingObject) -> List[int]:
        """Ids of all cameras currently seeing ``obj``."""
        if self._fast:
            return seeing_ids_scalar(self.columns(), obj.x, obj.y)
        grid = self._grid
        if grid is None:
            return [cid for cid, cam in sorted(self.cameras.items())
                    if cam.sees(obj)]
        cameras = self.cameras
        return [cid for cid in grid.candidates_at(obj.x, obj.y)
                if cameras[cid].sees(obj)]

    def best_observer(self, obj: MovingObject) -> Optional[int]:
        """Camera with the highest visibility of ``obj`` (None if unseen)."""
        if self._fast:
            cols = self.columns()
            row = best_observer_row_scalar(cols, obj.x, obj.y)
            return None if row < 0 else cols.id_list[row]
        grid = self._grid
        if grid is None:
            candidates = sorted(self.cameras.items())
        else:
            cameras = self.cameras
            candidates = [(cid, cameras[cid])
                          for cid in grid.candidates_at(obj.x, obj.y)]
        best_id, best_vis = None, 0.0
        for cid, cam in candidates:
            vis = cam.visibility(obj)
            if vis > best_vis:
                best_id, best_vis = cid, vis
        return best_id

    def coverage_fraction(self, samples: int = 400, seed: int = 0) -> float:
        """Monte-Carlo fraction of the unit square inside any field of view."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(samples, 2))
        grid = self._grid
        covered = 0
        for x, y in pts:
            if grid is not None:
                cams = (self.cameras[cid] for cid in grid.candidates_at(x, y))
            else:
                cams = self.cameras.values()
            for cam in cams:
                if math.hypot(x - cam.x, y - cam.y) <= cam.radius:
                    covered += 1
                    break
        return covered / samples
