"""Mobile objects tracked by the smart-camera network.

Objects follow random-waypoint mobility in the unit square: pick a target,
move toward it at constant speed, pick a new target on arrival.  This is
the standard mobility model of the published smart-camera studies the
paper draws on (refs [11], [13], [48]).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np


class MovingObject:
    """One trackable object with random-waypoint mobility."""

    def __init__(self, object_id: int, x: float, y: float, speed: float = 0.01,
                 rng: Optional[np.random.Generator] = None) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.object_id = object_id
        self.x = float(x)
        self.y = float(y)
        self.speed = speed
        self._rng = rng if rng is not None else np.random.default_rng()
        self._target = self._pick_target()

    def _pick_target(self) -> Tuple[float, float]:
        return (float(self._rng.uniform(0, 1)), float(self._rng.uniform(0, 1)))

    @property
    def position(self) -> Tuple[float, float]:
        """Current (x, y) position."""
        return (self.x, self.y)

    def step(self, dt: float = 1.0) -> None:
        """Advance toward the current waypoint; re-target on arrival."""
        tx, ty = self._target
        dx, dy = tx - self.x, ty - self.y
        dist = math.hypot(dx, dy)
        travel = self.speed * dt
        if dist <= travel:
            self.x, self.y = tx, ty
            self._target = self._pick_target()
            return
        self.x += dx / dist * travel
        self.y += dy / dist * travel


class ObjectPopulation:
    """The set of objects in the scene, with optional churn.

    ``churn_rate`` is the per-step probability that one random object is
    replaced by a fresh one somewhere else -- modelling objects leaving
    and entering the scene (ongoing change, paper Section II).
    """

    def __init__(self, n_objects: int, speed: float = 0.01,
                 churn_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if not 0.0 <= churn_rate <= 1.0:
            raise ValueError("churn_rate must be in [0, 1]")
        self._rng = rng if rng is not None else np.random.default_rng()
        self.churn_rate = churn_rate
        self.speed = speed
        self._next_id = 0
        self.objects: List[MovingObject] = [
            self._spawn() for _ in range(n_objects)]
        self.replacements = 0

    def _spawn(self) -> MovingObject:
        obj = MovingObject(
            object_id=self._next_id,
            x=float(self._rng.uniform(0, 1)), y=float(self._rng.uniform(0, 1)),
            speed=self.speed, rng=self._rng)
        self._next_id += 1
        return obj

    def step(self, dt: float = 1.0) -> List[int]:
        """Move every object; returns ids of objects replaced by churn."""
        for obj in self.objects:
            obj.step(dt)
        replaced: List[int] = []
        if self.churn_rate > 0 and self._rng.random() < self.churn_rate:
            victim = int(self._rng.integers(len(self.objects)))
            replaced.append(self.objects[victim].object_id)
            self.objects[victim] = self._spawn()
            self.replacements += 1
        return replaced

    def by_id(self, object_id: int) -> Optional[MovingObject]:
        """The object with ``object_id``, or ``None`` when churned away."""
        for obj in self.objects:
            if obj.object_id == object_id:
                return obj
        return None

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)
