"""Struct-of-arrays working set for the smart-camera substrate.

The camera hot loops used to walk Python object graphs: every camera a
frozen dataclass, every visibility a ``math.hypot`` call behind two
attribute loads, every candidate set a frozenset of ids.  This module
holds the same state in flat columns so the per-step kernels (observer
sweep, best-observer claim, ownership drop, auction bid scan) can run
as a handful of array operations:

- :class:`CameraColumns` -- stable-id camera position / radius columns
  over a :class:`~repro.smartcamera.network.CameraNetwork`, plus the
  precomputed row sets the auction loop gathers per owner (broadcast
  targets, vision-graph neighbours) and a cell -> candidate-row index
  mirroring the :class:`~repro.geom.SpatialGrid` bounding-box inserts.
- :class:`ObjectColumns` -- per-step object position columns refreshed
  from the :class:`~repro.smartcamera.objects.MovingObject` instances
  (which remain the mutable API surface for mobility and churn).
- :func:`seeing_rows` / :func:`best_observer_row` /
  :func:`possible_rows` -- the vectorised scans, each bracketing
  its batched squared distances with the shared
  :data:`~repro.geom.exact.EXACT_REL` band and re-deciding every
  ambiguous (and every *escaping*) float with the exact scalar
  predicate, so accepted sets, winners and bid amounts are
  byte-identical to the naive object-graph reference.

Byte-identity discipline (see :mod:`repro.geom.exact`): batched
distances only prefilter and bracket; every float that escapes into
records, rewards or auction prices is produced by the same
``math.hypot`` expression the naive path evaluates.  When numpy is
unavailable the fast paths simply stay off (``HAVE_NUMPY`` is false and
the dispatchers keep the retained naive path), so the package gains no
hard dependency.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..geom.exact import EXACT_REL, HAVE_NUMPY, _np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import CameraNetwork
    from .objects import ObjectPopulation

#: Absolute band on batched visibilities around the running maximum
#: within which candidate winners are re-decided by the exact scalar
#: expression.  ``1 - sqrt(d2)/r`` carries at most a few ulp of *absolute*
#: error (~1e-15 on unit-square scales; relative error is unbounded near
#: the rim where the value itself vanishes), so 1e-12 leaves three
#: orders of margin while making re-checks astronomically rare.
BEST_VIS_BAND = 1e-12

#: Upper bound on the exact visibility of a camera whose squared
#: distance fell inside the ``EXACT_REL`` rim band: ``d`` within
#: ``r * (1 +- 5e-10)`` implies ``1 - d/r`` below ~1e-9.  When the best
#: in-band candidate sits above this, no rim camera can win and the rim
#: set needs no exact recheck at all.
RIM_VIS_BOUND = 1e-9


class CameraColumns:
    """Flat columns plus candidate indices over one camera network.

    Built once per (immutable) :class:`CameraNetwork`; rows are ordered
    by ascending camera id, matching the id-sorted candidate order of
    every naive scan, so boolean-mask selections of ascending row arrays
    reproduce the reference iteration order for free.
    """

    __slots__ = ("network", "n", "ids", "xs", "ys", "radii", "lo_sq",
                 "hi_sq", "id_list", "x_list", "y_list", "radius_list",
                 "row_of", "broadcast_rows", "neighbour_rows",
                 "neighbour_masks", "_inv", "_cell_rows",
                 "_cell_row_lists", "_empty_rows")

    def __init__(self, network: "CameraNetwork") -> None:
        if not HAVE_NUMPY:  # pragma: no cover - numpy ships with the repo
            raise RuntimeError("CameraColumns requires numpy; the naive "
                               "path is the no-numpy fallback")
        self.network = network
        ids = network.ids()
        cams = [network.cameras[cid] for cid in ids]
        self.n = len(cams)
        self.ids = _np.asarray(ids, dtype=_np.int64)
        self.xs = _np.fromiter((c.x for c in cams), dtype=_np.float64,
                               count=self.n)
        self.ys = _np.fromiter((c.y for c in cams), dtype=_np.float64,
                               count=self.n)
        self.radii = _np.fromiter((c.radius for c in cams),
                                  dtype=_np.float64, count=self.n)
        r_sq = self.radii * self.radii
        # Certainly-inside / certainly-outside thresholds on the batched
        # squared distance; between them sits the rim band that the
        # exact predicate re-decides.
        self.lo_sq = r_sq * (1.0 - EXACT_REL)
        self.hi_sq = r_sq * (1.0 + EXACT_REL)
        # Python-list mirrors: scalar indexing of numpy arrays is slow,
        # and the exact re-checks are scalar by design.
        self.id_list: List[int] = list(ids)
        self.x_list: List[float] = [c.x for c in cams]
        self.y_list: List[float] = [c.y for c in cams]
        self.radius_list: List[float] = [c.radius for c in cams]
        self.row_of: Dict[int, int] = {cid: row
                                       for row, cid in enumerate(ids)}
        # Advertisement target rows per owner row, precomputed in the
        # ascending-id order advertisement_targets() produces.
        all_rows = _np.arange(self.n, dtype=_np.intp)
        self.broadcast_rows: List = [
            _np.delete(all_rows, row) for row in range(self.n)]
        self.neighbour_rows: List = [
            _np.asarray([self.row_of[nid]
                         for nid in network.neighbours(cid)],
                        dtype=_np.intp)
            for cid in ids]
        # Row-indexed membership masks for the vision-graph
        # neighbourhoods (the graph has no self-loops, so a row's own
        # mask entry is always false).
        self.neighbour_masks: List = []
        for rows in self.neighbour_rows:
            mask = _np.zeros(self.n, dtype=bool)
            mask[rows] = True
            self.neighbour_masks.append(mask)
        # Cell -> candidate rows, mirroring SpatialGrid.insert_disc's
        # bounding-box registration (any true superset works: every
        # candidate is re-decided by the exact predicate, and
        # non-candidates provably cannot see the query point).
        cell_size = max(self.radius_list)
        self._inv = 1.0 / cell_size
        buckets: Dict[Tuple[int, int], List[int]] = {}
        inv = self._inv
        for row, cam in enumerate(cams):
            x0 = math.floor((cam.x - cam.radius) * inv)
            x1 = math.floor((cam.x + cam.radius) * inv)
            y0 = math.floor((cam.y - cam.radius) * inv)
            y1 = math.floor((cam.y + cam.radius) * inv)
            for ix in range(x0, x1 + 1):
                for iy in range(y0, y1 + 1):
                    buckets.setdefault((ix, iy), []).append(row)
        self._cell_rows = {cell: _np.asarray(rows, dtype=_np.intp)
                           for cell, rows in buckets.items()}
        # Plain-list twins for the scalar scans: per-query numpy costs
        # more than it saves below a few dozen candidates, and the
        # standalone network queries live exactly there.
        self._cell_row_lists = buckets
        self._empty_rows = _np.empty(0, dtype=_np.intp)

    def rows_at(self, x: float, y: float):
        """Candidate rows whose disc could cover ``(x, y)``, ascending."""
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        return self._cell_rows.get(cell, self._empty_rows)

    def row_list_at(self, x: float, y: float) -> List[int]:
        """The same candidate rows as :meth:`rows_at`, as a plain list."""
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        return self._cell_row_lists.get(cell, [])


class ObjectColumns:
    """Per-step position columns over the mobile object population."""

    __slots__ = ("xs", "ys", "object_ids")

    def __init__(self) -> None:
        self.xs = None
        self.ys = None
        self.object_ids: List[int] = []

    def refresh(self, population: "ObjectPopulation") -> None:
        """Re-read every object's position after the mobility step."""
        objs = population.objects
        m = len(objs)
        self.xs = _np.fromiter((o.x for o in objs), dtype=_np.float64,
                               count=m)
        self.ys = _np.fromiter((o.y for o in objs), dtype=_np.float64,
                               count=m)
        self.object_ids = [o.object_id for o in objs]


def classify_disc_hits(cols: CameraColumns, x: float, y: float, rows):
    """Partition candidate ``rows`` by the banded squared distance.

    Returns ``(inside, rim)`` boolean masks over ``rows``: *inside* rows
    certainly satisfy the exact ``sees`` predicate, rows outside both
    masks certainly do not, and *rim* rows must be re-decided by the
    exact scalar expression.
    """
    dx = cols.xs[rows] - x
    dy = cols.ys[rows] - y
    d2 = dx * dx + dy * dy
    inside = d2 <= cols.lo_sq[rows]
    rim = (~inside) & (d2 <= cols.hi_sq[rows])
    return inside, rim, d2


def seeing_rows(cols: CameraColumns, x: float, y: float) -> List[int]:
    """Rows of cameras exactly seeing ``(x, y)``, ascending."""
    rows = cols.rows_at(x, y)
    if len(rows) == 0:
        return []
    inside, rim, _ = classify_disc_hits(cols, x, y, rows)
    out = rows[inside].tolist()
    if rim.any():
        xs, ys, rads = cols.x_list, cols.y_list, cols.radius_list
        for r in rows[rim].tolist():
            if math.hypot(x - xs[r], y - ys[r]) <= rads[r]:
                out.append(r)
        out.sort()
    return out


def best_observer_row(cols: CameraColumns, x: float, y: float) -> int:
    """Row of the first strict-max-visibility camera at ``(x, y)``.

    Replicates the naive ascending-id scan with its strict ``>`` update
    (ties keep the earliest row).  The batched visibilities only locate
    the contenders: every row whose approximate visibility lies within
    :data:`BEST_VIS_BAND` of the batched maximum -- plus the whole rim
    band when the maximum itself is small enough
    (:data:`RIM_VIS_BOUND`) for a rim camera to matter -- is re-scored
    with the exact scalar expression, and the winner is decided entirely
    among those.  Rows excluded by the band sit provably below the
    winner's exact visibility, so they can neither win nor tie.

    Returns ``-1`` when no camera sees the point.
    """
    rows = cols.rows_at(x, y)
    if len(rows) == 0:
        return -1
    inside, rim, d2 = classify_disc_hits(cols, x, y, rows)
    has_rim = bool(rim.any())
    if inside.any():
        in_rows = rows[inside]
        vis = 1.0 - _np.sqrt(d2[inside]) / cols.radii[in_rows]
        m = float(vis.max())
        check = in_rows[vis >= m - BEST_VIS_BAND]
        if has_rim and m <= RIM_VIS_BOUND:
            check = _np.sort(_np.concatenate([check, rows[rim]]))
    elif has_rim:
        check = rows[rim]
    else:
        return -1
    best_row, best_vis = -1, 0.0
    xs, ys, rads = cols.x_list, cols.y_list, cols.radius_list
    for r in check.tolist():
        dist = math.hypot(x - xs[r], y - ys[r])
        if dist > rads[r]:
            continue  # exact visibility 0.0 never beats best_vis >= 0.0
        v = 1.0 - dist / rads[r]
        if v > best_vis:
            best_row, best_vis = r, v
    return best_row


def seeing_rows_scalar(cols: CameraColumns, x: float, y: float) -> List[int]:
    """Rows of cameras exactly seeing ``(x, y)``, ascending -- scalar.

    The exact ``sees`` predicate over the cell index's candidate list,
    no batching at all: below a few dozen candidates (the standalone
    network-query regime) per-call numpy overhead exceeds the whole
    scan, so this list walk is the fast path there.  Identical output
    to :func:`seeing_rows` by construction -- both apply the same exact
    predicate to the same ascending candidate set.
    """
    xs, ys, rads = cols.x_list, cols.y_list, cols.radius_list
    hyp = math.hypot
    return [r for r in cols.row_list_at(x, y)
            if hyp(x - xs[r], y - ys[r]) <= rads[r]]


def seeing_ids_scalar(cols: CameraColumns, x: float, y: float) -> List[int]:
    """Ids of cameras exactly seeing ``(x, y)``, in row order.

    :func:`seeing_rows_scalar` with the row -> id mapping fused into
    the same pass: the standalone :meth:`CameraNetwork.observers` query
    wants ids, and a second list comprehension just to translate rows
    costs as much as the scan itself at typical candidate counts.
    """
    xs, ys, rads = cols.x_list, cols.y_list, cols.radius_list
    ids = cols.id_list
    hyp = math.hypot
    return [ids[r] for r in cols.row_list_at(x, y)
            if hyp(x - xs[r], y - ys[r]) <= rads[r]]


def best_observer_row_scalar(cols: CameraColumns, x: float, y: float) -> int:
    """Row of the first strict-max-visibility camera at ``(x, y)``.

    The naive ascending-id scan itself (strict ``>``, ties keep the
    earliest row), run over the cell index's candidate list with the
    exact scalar visibility.  Returns ``-1`` when no camera sees the
    point.  See :func:`seeing_rows_scalar` for why this beats the
    batched variant on standalone queries.
    """
    best_row, best_vis = -1, 0.0
    xs, ys, rads = cols.x_list, cols.y_list, cols.radius_list
    hyp = math.hypot
    for r in cols.row_list_at(x, y):
        dist = hyp(x - xs[r], y - ys[r])
        radius = rads[r]
        if dist > radius:
            continue
        v = 1.0 - dist / radius
        if v > best_vis:
            best_row, best_vis = r, v
    return best_row


def possible_rows(cols: CameraColumns, x: float, y: float):
    """Rows that could possibly see ``(x, y)``, ascending -- a superset.

    Cell candidates whose banded squared distance is not *certainly*
    outside the radius.  Used to prune auction bidder scans: every
    returned row still goes through the exact scalar visibility (whose
    ``> 0`` test decides the bid), so over-inclusion is harmless and the
    pruning cannot change a single bid.
    """
    rows = cols.rows_at(x, y)
    if len(rows) == 0:
        return rows
    dx = cols.xs[rows] - x
    dy = cols.ys[rows] - y
    return rows[dx * dx + dy * dy <= cols.hi_sq[rows]]
