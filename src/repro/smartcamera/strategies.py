"""Sociality strategies: who to advertise handover auctions to, and when.

The heterogeneity studies behind the paper (refs [11], [13]) equip each
camera with a *marketing strategy* on two axes:

- **initiative**: *active* cameras auction every owned object every step
  (always seeking the best tracker, at high communication cost);
  *passive* cameras auction only when their own tracking confidence
  falls below a threshold (cheap, but objects linger on poor trackers);
- **audience**: *broadcast* advertises to every camera; *smooth*
  advertises only to vision-graph neighbours (cheap, but handover
  opportunities outside the neighbourhood are missed).

The four combinations span the tracking-utility/communication-cost
trade-off.  "Learning to be different" (ref [13]) is each camera choosing
its own strategy with a bandit over these options -- the self-awareness
experiment E2 reproduces exactly that design.
"""

from __future__ import annotations

import enum
from typing import List

from .network import CameraNetwork


class Strategy(enum.Enum):
    """The four sociality strategies on the initiative x audience axes."""

    ACTIVE_BROADCAST = "active_broadcast"
    ACTIVE_SMOOTH = "active_smooth"
    PASSIVE_BROADCAST = "passive_broadcast"
    PASSIVE_SMOOTH = "passive_smooth"

    @property
    def is_active(self) -> bool:
        """Whether the strategy auctions every step (vs. only when losing)."""
        return self in (Strategy.ACTIVE_BROADCAST, Strategy.ACTIVE_SMOOTH)

    @property
    def is_broadcast(self) -> bool:
        """Whether advertisements go to every camera (vs. neighbours only)."""
        return self in (Strategy.ACTIVE_BROADCAST, Strategy.PASSIVE_BROADCAST)


ALL_STRATEGIES = tuple(Strategy)


def should_auction(strategy: Strategy, visibility: float,
                   threshold: float = 0.3) -> bool:
    """Whether a camera running ``strategy`` auctions an object now.

    Active strategies always auction; passive ones only when their own
    visibility of the object has fallen below ``threshold``.
    """
    if strategy.is_active:
        return True
    return visibility < threshold


def advertisement_targets(strategy: Strategy, cam_id: int,
                          network: CameraNetwork) -> List[int]:
    """The cameras an advertisement is sent to under ``strategy``."""
    if strategy.is_broadcast:
        return [cid for cid in network.ids() if cid != cam_id]
    return [cid for cid in network.neighbours(cam_id) if cid != cam_id]
