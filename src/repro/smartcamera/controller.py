"""Per-camera strategy controllers: fixed baselines vs. self-aware learners.

The heterogeneity experiment (E2) compares cameras that all run one
design-time strategy against cameras that each *learn their own* -- the
"learning to be different" result (ref [13]).  The self-aware controller
is a discounted bandit over the sociality strategies whose reward is the
camera's own trade-off between tracking utility earned and communication
spent, i.e. a private, local view: no global coordinator exists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import List, Optional

import numpy as np

from ..learning.bandits import EpsilonGreedy
from .strategies import ALL_STRATEGIES, Strategy


class CameraController(ABC):
    """Chooses a sociality strategy for one camera each step."""

    def __init__(self, cam_id: int) -> None:
        self.cam_id = cam_id
        self.usage: Counter = Counter()

    @abstractmethod
    def choose(self, t: float) -> Strategy:
        """Strategy to run this step."""

    def feedback(self, reward: float) -> None:
        """Realised local reward of the step (default: ignored)."""

    def record_usage(self, strategy: Strategy) -> None:
        """Bookkeeping used by the diversity metrics."""
        self.usage[strategy] += 1


class FixedStrategyController(CameraController):
    """Design-time baseline: one strategy forever."""

    def __init__(self, cam_id: int, strategy: Strategy) -> None:
        super().__init__(cam_id)
        self.strategy = strategy

    def choose(self, t: float) -> Strategy:
        return self.strategy


class RandomStrategyController(CameraController):
    """Noise baseline: a uniformly random strategy each step."""

    def __init__(self, cam_id: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(cam_id)
        self._rng = rng if rng is not None else np.random.default_rng()

    def choose(self, t: float) -> Strategy:
        return ALL_STRATEGIES[int(self._rng.integers(len(ALL_STRATEGIES)))]


class SelfAwareStrategyController(CameraController):
    """Bandit learner over strategies, rewarded by the camera's own trade-off.

    Discounted ε-greedy so cameras keep adapting as the scene (and the
    other cameras' behaviour) changes -- each camera's environment
    includes its peers, so the collective co-adapts.
    """

    def __init__(self, cam_id: int, epsilon: float = 0.1,
                 discount: float = 0.995,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(cam_id)
        self._bandit = EpsilonGreedy(
            n_arms=len(ALL_STRATEGIES), epsilon=epsilon, discount=discount,
            rng=rng if rng is not None else np.random.default_rng())
        self._last_arm: Optional[int] = None

    def choose(self, t: float) -> Strategy:
        self._last_arm = self._bandit.select()
        return ALL_STRATEGIES[self._last_arm]

    def feedback(self, reward: float) -> None:
        if self._last_arm is not None:
            self._bandit.update(self._last_arm, reward)

    def preferred_strategy(self) -> Strategy:
        """The strategy with the best current value estimate."""
        values = [self._bandit.value(i) for i in range(len(ALL_STRATEGIES))]
        return ALL_STRATEGIES[int(np.argmax(values))]


def strategy_entropy(controllers: List[CameraController],
                     tail_fraction: float = 1.0) -> float:
    """Shannon entropy (bits) of strategy usage across cameras.

    Zero for a perfectly homogeneous network, up to 2 bits when all four
    strategies are used equally -- the paper's diversity claim is that
    self-aware networks settle at *non-zero* entropy (entities learn to
    be different from each other).
    """
    total: Counter = Counter()
    for ctrl in controllers:
        total.update(ctrl.usage)
    count = sum(total.values())
    if count == 0:
        return 0.0
    entropy = 0.0
    for strategy in ALL_STRATEGIES:
        p = total[strategy] / count
        if p > 0:
            entropy -= p * np.log2(p)
    return float(entropy)
