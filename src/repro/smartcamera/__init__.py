"""Distributed smart-camera network substrate (paper refs [11], [13], [48]).

A time-stepped simulator of decentralised object tracking: cameras with
circular fields of view trade ownership of mobile objects in handover
auctions, and each camera chooses a *sociality strategy* (who to
advertise to, and when) -- either fixed at design time or learned at run
time by a self-aware controller.  Experiment E2 reproduces the "learning
to be different" result: self-aware cameras become heterogeneous and
improve the network-wide tracking/communication trade-off.
"""

from .controller import (CameraController, FixedStrategyController,
                         RandomStrategyController,
                         SelfAwareStrategyController, strategy_entropy)
from .market import AuctionOutcome, Bid, HandoverMarket
from .network import Camera, CameraNetwork
from .objects import MovingObject, ObjectPopulation
from .sim import (CameraSimConfig, CameraSimResult, CameraSimulation,
                  CameraStepRecord, run_homogeneous, run_self_aware)
from .strategies import (ALL_STRATEGIES, Strategy, advertisement_targets,
                         should_auction)

__all__ = [
    "CameraController", "FixedStrategyController", "RandomStrategyController",
    "SelfAwareStrategyController", "strategy_entropy",
    "AuctionOutcome", "Bid", "HandoverMarket",
    "Camera", "CameraNetwork",
    "MovingObject", "ObjectPopulation",
    "CameraSimConfig", "CameraSimResult", "CameraSimulation",
    "CameraStepRecord", "run_homogeneous", "run_self_aware",
    "ALL_STRATEGIES", "Strategy", "advertisement_targets", "should_auction",
]
