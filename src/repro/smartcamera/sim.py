"""The smart-camera network simulation.

Time-stepped loop binding geometry, mobility, the handover market and the
per-camera controllers.  Each step:

1. objects move (and may churn);
2. every owned object earns its owner tracking utility equal to the
   owner's current visibility of it; unowned objects earn nothing
   (tracking is lost);
3. each camera picks a sociality strategy from its controller and, per
   owned object, may run a handover auction: advertisements and bids are
   counted as messages, the market clears second-price, ownership moves;
4. unowned objects seen by some camera are (re)claimed by the best
   observer;
5. each camera receives its local reward (utility earned minus the
   communication it spent, weighted) as learning feedback.

The network-level figure of merit is the same trade-off evaluated
globally -- exactly the multi-objective run-time trade-off of the paper's
hypothesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

import numpy as np

from ..geom.exact import HAVE_NUMPY
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .controller import (CameraController, FixedStrategyController,
                         SelfAwareStrategyController, strategy_entropy)
from .market import Bid, HandoverMarket
from .network import CameraNetwork
from .objects import ObjectPopulation
from .soa import best_observer_row_scalar, possible_rows
from .strategies import Strategy, advertisement_targets, should_auction

#: Default for the struct-of-arrays step (see
#: :mod:`repro.smartcamera.soa`).  The scalar object-graph step is
#: retained verbatim as :meth:`CameraSimulation._step_naive` -- it is
#: the reference for the equivalence tests and the ``repro.bench``
#: baselines, and the only path taken under fault injection or without
#: numpy.  Both paths produce byte-identical records and leave the
#: simulation RNG in the same stream position.  Forced off by
#: ``REPRO_FORCE_NAIVE=1`` in the test harness.
USE_FAST_CAMERA = True


@dataclass
class CameraSimConfig:
    """Parameters of one smart-camera run."""

    rows: int = 3
    cols: int = 3
    radius: float = 0.28
    n_objects: int = 8
    object_speed: float = 0.02
    churn_rate: float = 0.02
    steps: int = 500
    comm_cost_weight: float = 0.01
    auction_threshold: float = 0.3
    detection_rate: float = 0.15
    random_placement: bool = False
    seed: int = 0
    #: Optional run-time changes to the communication price: a list of
    #: ``(time, weight)`` breakpoints.  Models stakeholders re-pricing the
    #: bandwidth/utility trade-off after deployment; when ``None`` the
    #: constant ``comm_cost_weight`` applies throughout.
    comm_weight_breaks: Optional[List[tuple]] = None

    def __post_init__(self) -> None:
        # Sort the breakpoints once; ``comm_weight_at`` runs every step
        # and must not pay an O(n log n) sort per call.  Stored on a
        # private attribute so a caller-held reference to the original
        # list is never reordered under them.
        self._sorted_breaks = (sorted(self.comm_weight_breaks)
                               if self.comm_weight_breaks else None)

    def comm_weight_at(self, t: float) -> float:
        """The communication-cost weight in force at time ``t``."""
        breaks = self._sorted_breaks
        if not breaks:
            return self.comm_cost_weight
        weight = self.comm_cost_weight
        for start, value in breaks:
            if t >= start:
                weight = value
        return weight


@dataclass(slots=True)
class CameraStepRecord:
    """Network-level telemetry for one step."""

    time: float
    tracking_utility: float
    messages: int
    handovers: int
    owned_objects: int
    lost_objects: int
    comm_weight: float = 0.01


@dataclass
class CameraSimResult:
    """Outcome of a full run."""

    records: List[CameraStepRecord]
    controllers: List[CameraController]
    market: HandoverMarket
    comm_cost_weight: float

    def mean_tracking_utility(self) -> float:
        """Average per-step summed visibility of owned objects."""
        if not self.records:
            return math.nan
        return sum(r.tracking_utility for r in self.records) / len(self.records)

    def mean_messages(self) -> float:
        """Average messages per step."""
        if not self.records:
            return math.nan
        return sum(r.messages for r in self.records) / len(self.records)

    def efficiency(self) -> float:
        """Network trade-off score: utility minus weighted communication.

        Uses the communication price in force at each step, so runs with
        run-time re-pricing are scored against the price that actually
        applied.
        """
        if not self.records:
            return math.nan
        scores = [r.tracking_utility - r.comm_weight * r.messages
                  for r in self.records]
        return sum(scores) / len(scores)

    def efficiency_between(self, t0: float, t1: float) -> float:
        """Mean efficiency over steps with ``t0 <= time < t1``."""
        scores = [r.tracking_utility - r.comm_weight * r.messages
                  for r in self.records if t0 <= r.time < t1]
        if not scores:
            return math.nan
        return sum(scores) / len(scores)

    def diversity_bits(self) -> float:
        """Entropy of strategy usage across cameras (see controller module)."""
        return strategy_entropy(self.controllers)

    def lost_fraction(self) -> float:
        """Mean fraction of objects untracked per step."""
        if not self.records:
            return math.nan
        fractions = [r.lost_objects / max(1, r.lost_objects + r.owned_objects)
                     for r in self.records]
        return sum(fractions) / len(fractions)


class CameraSimulation:
    """One configured run of the camera network."""

    def __init__(
        self,
        config: CameraSimConfig,
        controller_factory: Callable[[int, np.random.Generator], CameraController],
        faults: Optional["FaultInjector"] = None,
        fast: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.faults = faults
        self._fast = ((fast if fast is not None else USE_FAST_CAMERA)
                      and HAVE_NUMPY)
        self._rng = np.random.default_rng(config.seed)
        if config.random_placement:
            self.network = CameraNetwork.random(
                config.rows * config.cols, radius=config.radius,
                seed=config.seed)
        else:
            self.network = CameraNetwork.grid(config.rows, config.cols,
                                              radius=config.radius)
        self.population = ObjectPopulation(
            n_objects=config.n_objects, speed=config.object_speed,
            churn_rate=config.churn_rate, rng=self._rng)
        self.market = HandoverMarket()
        self.controllers: Dict[int, CameraController] = {
            cid: controller_factory(cid, np.random.default_rng(
                self._rng.integers(2 ** 31)))
            for cid in self.network.ids()}
        self.ownership: Dict[int, int] = {}  # object_id -> cam_id
        self.records: List[CameraStepRecord] = []
        self._cam_ids = self.network.ids()  # hoisted: ids() copies per call

    def _claim_unowned(self, down=()) -> None:
        """Unowned objects are re-detected only slowly.

        Without a handover (which transfers the track directly), a lost
        object must be re-acquired from scratch: per step, the best
        observer re-detects it only with probability ``detection_rate``.
        This is the cost of losing a track that makes handover -- and the
        choice of sociality strategy -- consequential, mirroring the
        published model where lost objects forfeit tracking utility.
        Crashed cameras (``down``) cannot claim.
        """
        for obj in self.population:
            if obj.object_id in self.ownership:
                continue
            if self._rng.random() >= self.config.detection_rate:
                continue
            best = self.network.best_observer(obj)
            if best is not None and best not in down:
                self.ownership[obj.object_id] = best

    def step(self, t: float) -> CameraStepRecord:
        """Run one simulation step; returns the step record."""
        if self._fast and self.faults is None:
            return self._step_fast(t)
        return self._step_naive(t)

    def _step_naive(self, t: float) -> CameraStepRecord:
        """The retained scalar object-graph step (reference path).

        This is the original implementation, byte-for-byte the semantics
        the fast path must reproduce; it also remains the only path that
        understands fault injection (crashes, dropped replies, perturbed
        bids).
        """
        ownership = self.ownership
        cameras = self.network.cameras
        faults = self.faults
        down = ()
        if faults is not None:
            faults.begin_step(t)
            down = faults.crashed_targets(self._cam_ids)
        churned = self.population.step()
        for object_id in churned:
            ownership.pop(object_id, None)

        # Drop ownership of objects the owner can no longer see at all
        # (or whose owner has crashed: its tracks are simply lost).
        for obj in self.population:
            owner = ownership.get(obj.object_id)
            if owner is not None and (owner in down
                                      or not cameras[owner].sees(obj)):
                del ownership[obj.object_id]

        self._claim_unowned(down)

        # Tracking utility accrues to current owners.
        utility_by_camera: Dict[int, float] = dict.fromkeys(self._cam_ids, 0.0)
        messages_by_camera: Dict[int, int] = dict.fromkeys(self._cam_ids, 0)
        total_utility = 0.0
        # Owner visibility is reused verbatim as the auction reserve
        # below: positions don't move between the two loops, so caching
        # here removes a second identical visibility() per owned object.
        owner_vis: Dict[int, float] = {}
        for obj in self.population:
            owner = ownership.get(obj.object_id)
            if owner is None:
                continue
            vis = cameras[owner].visibility(obj)
            owner_vis[obj.object_id] = vis
            utility_by_camera[owner] += vis
            total_utility += vis

        # Strategy choice and handover auctions.  Crashed cameras neither
        # deliberate nor learn while they are down.
        strategies: Dict[int, Strategy] = {}
        for cid, controller in self.controllers.items():
            if cid in down:
                continue
            strategy = controller.choose(t)
            strategies[cid] = strategy
            controller.record_usage(strategy)

        handovers = 0
        network = self.network
        run_auction = self.market.run_auction
        auction_threshold = self.config.auction_threshold
        for obj in self.population:
            owner = ownership.get(obj.object_id)
            if owner is None:
                continue
            strategy = strategies[owner]
            own_vis = owner_vis[obj.object_id]
            if not should_auction(strategy, own_vis, auction_threshold):
                continue
            targets = advertisement_targets(strategy, owner, network)
            messages_by_camera[owner] += len(targets)
            # Grid-prune the bidder scan: a target outside the candidate
            # superset has zero visibility and so never bids or replies;
            # dropping it up front changes nothing but the work done.
            cand = network.candidate_ids_at(obj.x, obj.y)
            if cand is not None:
                targets = [cid for cid in targets if cid in cand]
            bids = []
            for cid in targets:
                if cid in down:
                    continue  # a crashed camera never replies
                bid_vis = cameras[cid].visibility(obj)
                if faults is not None and bid_vis > 0.0:
                    if faults.dropped(target=cid):
                        continue  # the bid reply is lost in transit
                    bid_vis = faults.perturb(bid_vis, target=cid)
                if bid_vis > 0.0:
                    messages_by_camera[cid] += 1  # the bid reply
                    bids.append(Bid(cam_id=cid, amount=bid_vis))
            outcome = run_auction(
                obj.object_id, seller=owner, bids=bids, reserve=own_vis)
            if outcome.sold:
                ownership[obj.object_id] = outcome.winner
                handovers += 1

        return self._finish_step(t, down, utility_by_camera,
                                 messages_by_camera, total_utility, handovers)

    def _finish_step(self, t, down, utility_by_camera, messages_by_camera,
                     total_utility, handovers) -> CameraStepRecord:
        """Shared step tail: reward feedback, record, observability."""
        # Local reward feedback: own utility minus own communication cost,
        # at the price currently in force (goal-awareness of re-pricing).
        comm_weight = self.config.comm_weight_at(t)
        for cid, controller in self.controllers.items():
            if cid in down:
                continue
            reward = (utility_by_camera[cid]
                      - comm_weight * messages_by_camera[cid])
            controller.feedback(reward)

        owned = len(self.ownership)
        messages = sum(messages_by_camera.values())
        record = CameraStepRecord(
            time=t, tracking_utility=total_utility,
            messages=messages, handovers=handovers,
            owned_objects=owned,
            lost_objects=len(self.population) - owned,
            comm_weight=comm_weight)
        self.records.append(record)
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="smartcamera").increment()
            obs_metrics.counter("camera.handovers").increment(handovers)
            obs_metrics.counter("camera.messages").increment(messages)
            obs_metrics.histogram("camera.tracking_utility").observe(total_utility)
            obs_events.emit("camera.step", time=t,
                            tracking_utility=total_utility, messages=messages,
                            handovers=handovers, owned=owned,
                            lost=record.lost_objects)
        return record

    def _step_fast(self, t: float) -> CameraStepRecord:
        """Struct-of-arrays step, byte-identical to :meth:`_step_naive`.

        Taken only when ``fast`` is enabled, numpy is importable and no
        fault injector is attached.  The discipline (see
        :mod:`repro.smartcamera.soa`): batched squared distances decide
        only the *certain* cases of each disc predicate; rim-band
        candidates and every escaping float (visibilities, bids,
        utilities) are produced by the exact scalar ``math.hypot``
        expressions of the naive path, in the same order.  The one RNG
        consumer in the step, the re-detection gate, draws its
        per-unowned-object uniforms as one batch -- numpy's Generator
        yields bit-identical values for ``random(k)`` and ``k``
        successive ``random()`` calls, so the stream position and every
        downstream draw match the naive path exactly.
        """
        ownership = self.ownership
        config = self.config
        cols = self.network.columns()
        churned = self.population.step()
        for object_id in churned:
            ownership.pop(object_id, None)

        objs = self.population.objects
        m = len(objs)
        x_list = [o.x for o in objs]
        y_list = [o.y for o in objs]
        obj_ids = [o.object_id for o in objs]
        xs = np.asarray(x_list)
        ys = np.asarray(y_list)
        row_of = cols.row_of
        cxl, cyl, crl = cols.x_list, cols.y_list, cols.radius_list
        id_list = cols.id_list

        # Drop ownership of objects the owner can no longer see: one
        # batched gather of owner-object squared distances, with the
        # rim band re-decided by the exact predicate.
        owned_idx: List[int] = []
        owned_rows: List[int] = []
        for j, oid in enumerate(obj_ids):
            owner = ownership.get(oid)
            if owner is not None:
                owned_idx.append(j)
                owned_rows.append(row_of[owner])
        if owned_idx:
            oi = np.asarray(owned_idx, dtype=np.intp)
            orows = np.asarray(owned_rows, dtype=np.intp)
            dx = cols.xs[orows] - xs[oi]
            dy = cols.ys[orows] - ys[oi]
            d2 = dx * dx + dy * dy
            drop = d2 > cols.hi_sq[orows]
            rim = (~drop) & (d2 > cols.lo_sq[orows])
            for k in np.nonzero(rim)[0].tolist():
                j, r = owned_idx[k], owned_rows[k]
                if math.hypot(x_list[j] - cxl[r],
                              y_list[j] - cyl[r]) > crl[r]:
                    drop[k] = True
            for k in np.nonzero(drop)[0].tolist():
                del ownership[obj_ids[owned_idx[k]]]

        # Re-detection of unowned objects: batch the per-object uniform
        # draws (bit-identical to the naive one-at-a-time stream), then
        # resolve the rare hits with the scalar best-observer scan (one
        # object at a time is the small-candidate regime where batching
        # loses).
        unowned = [j for j in range(m) if obj_ids[j] not in ownership]
        if unowned:
            draws = self._rng.random(len(unowned)).tolist()
            detection_rate = config.detection_rate
            for k, j in enumerate(unowned):
                if draws[k] >= detection_rate:
                    continue
                row = best_observer_row_scalar(cols, x_list[j], y_list[j])
                if row >= 0:
                    ownership[obj_ids[j]] = id_list[row]

        # Strategy choice (no crashes on this path: faults is None),
        # unpacked once per camera into row-indexed initiative/audience
        # flags so the per-object auction loop needs no enum dispatch.
        # The naive path chooses strategies *between* the utility and
        # auction loops, but choose() reads neither, so hoisting it
        # changes nothing.
        n = cols.n
        is_active = [False] * n
        is_broadcast = [False] * n
        for cid, controller in self.controllers.items():
            strategy = controller.choose(t)
            controller.record_usage(strategy)
            r = row_of[cid]
            is_active[r] = strategy.is_active
            is_broadcast[r] = strategy.is_broadcast

        # Tracking utility and handover auctions in one pass.  The naive
        # path runs two loops, but an auction only ever reassigns the
        # auctioned object's *own* ownership entry, so later objects see
        # exactly the ownership the naive utility loop saw, and every
        # accumulation (utilities, message counts, market volume)
        # happens in the same population order.  The auction itself is
        # the market's Vickrey rule inlined as a running top-two scan
        # over the ascending-id bids -- same floats, same tie-break
        # (first strict max = lowest camera id), same market statistics
        # -- without materialising Bid lists per auction.
        utility_by_camera: Dict[int, float] = dict.fromkeys(self._cam_ids, 0.0)
        messages_by_camera: Dict[int, int] = dict.fromkeys(self._cam_ids, 0)
        total_utility = 0.0
        handovers = 0
        market = self.market
        auction_threshold = config.auction_threshold
        neighbour_rows = cols.neighbour_rows
        neighbour_masks = cols.neighbour_masks
        for j in range(m):
            oid = obj_ids[j]
            owner = ownership.get(oid)
            if owner is None:
                continue
            orow = row_of[owner]
            x, y = x_list[j], y_list[j]
            dist = math.hypot(x - cxl[orow], y - cyl[orow])
            own_vis = 0.0 if dist > crl[orow] else 1.0 - dist / crl[orow]
            utility_by_camera[owner] += own_vis
            total_utility += own_vis
            if not (is_active[orow] or own_vis < auction_threshold):
                continue
            near = possible_rows(cols, x, y)
            if is_broadcast[orow]:
                messages_by_camera[owner] += n - 1
                near = near[near != orow]
            else:
                messages_by_camera[owner] += len(neighbour_rows[orow])
                near = near[neighbour_masks[orow][near]]
            best_amt = second_amt = -1.0
            best_row = -1
            for r in near.tolist():
                dist = math.hypot(x - cxl[r], y - cyl[r])
                if dist > crl[r]:
                    continue  # zero visibility: no bid reply either way
                bid_vis = 1.0 - dist / crl[r]
                if bid_vis > 0.0:
                    messages_by_camera[id_list[r]] += 1  # the bid reply
                    if bid_vis >= own_vis:  # reserve filter
                        if bid_vis > best_amt:
                            second_amt = best_amt
                            best_amt = bid_vis
                            best_row = r
                        elif bid_vis > second_amt:
                            second_amt = bid_vis
            market.auctions_run += 1
            if best_row < 0:
                continue  # no valid bid: unsold
            second = second_amt if second_amt >= 0.0 else own_vis
            price = second if second > own_vis else own_vis
            market.trades += 1
            market.volume += price
            ownership[oid] = id_list[best_row]
            handovers += 1

        return self._finish_step(t, (), utility_by_camera,
                                 messages_by_camera, total_utility, handovers)

    def run(self) -> CameraSimResult:
        """Run the configured number of steps and return the result."""
        for t in range(self.config.steps):
            self.step(float(t))
        return CameraSimResult(records=self.records,
                               controllers=list(self.controllers.values()),
                               market=self.market,
                               comm_cost_weight=self.config.comm_cost_weight)


def run_homogeneous(config: CameraSimConfig, strategy: Strategy) -> CameraSimResult:
    """Deprecated shim: use :class:`repro.api.CameraSimulator`."""
    import warnings
    warnings.warn(
        "run_homogeneous is deprecated; use repro.api.CameraSimulator "
        "with CameraConfig(controller='fixed', strategy=...)",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import CameraSimulator
    return CameraSimulator(
        sim_config=config,
        controller_factory=lambda cid, rng: FixedStrategyController(
            cid, strategy),
    ).run()


def run_self_aware(config: CameraSimConfig, epsilon: float = 0.1,
                   discount: float = 0.995) -> CameraSimResult:
    """Deprecated shim: use :class:`repro.api.CameraSimulator`."""
    import warnings
    warnings.warn(
        "run_self_aware is deprecated; use repro.api.CameraSimulator "
        "with CameraConfig(controller='self_aware')",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import CameraSimulator
    return CameraSimulator(
        sim_config=config,
        controller_factory=lambda cid, rng: SelfAwareStrategyController(
            cid, epsilon=epsilon, discount=discount, rng=rng),
    ).run()
