"""Concept-drift detectors.

The meta level's trigger mechanism: a meta-self-aware system watches
streams *about itself* (its own error rate, its own realised utility) and
reacts when their statistical character changes.  Three detectors with
the common protocol ``update(value) -> bool`` (True on detected change):

- :class:`PageHinkley` -- classic sequential change-point test on a mean.
- :class:`DDM` -- the Gama et al. drift detection method, for error-rate
  streams in ``[0, 1]``.
- :class:`WindowDriftDetector` -- ADWIN-flavoured two-window mean test;
  distribution-free and parameterised only by a significance threshold.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque


class PageHinkley:
    """Page-Hinkley test for an increase (or decrease) in the stream mean.

    Parameters
    ----------
    delta:
        Magnitude tolerance: changes smaller than ``delta`` are ignored.
    threshold:
        Detection threshold λ on the cumulative statistic.
    direction:
        ``"increase"`` flags upward shifts, ``"decrease"`` downward ones.
    min_samples:
        Observations required before detection is allowed.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 5.0,
                 direction: str = "increase", min_samples: int = 10) -> None:
        if direction not in ("increase", "decrease"):
            raise ValueError("direction must be 'increase' or 'decrease'")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.direction = direction
        self.min_samples = min_samples
        self._mean = 0.0
        self._count = 0
        self._cumulative = 0.0
        self._extremum = 0.0
        self.detections = 0

    def update(self, value: float) -> bool:
        """Feed one value; returns True when a change is detected.

        Detection resets the internal state so the detector can fire again
        on a subsequent change.
        """
        self._count += 1
        self._mean += (value - self._mean) / self._count
        if self.direction == "increase":
            self._cumulative += value - self._mean - self.delta
            self._extremum = min(self._extremum, self._cumulative)
            statistic = self._cumulative - self._extremum
        else:
            self._cumulative += value - self._mean + self.delta
            self._extremum = max(self._extremum, self._cumulative)
            statistic = self._extremum - self._cumulative
        if self._count >= self.min_samples and statistic > self.threshold:
            self.detections += 1
            self.reset()
            return True
        return False

    def reset(self) -> None:
        """Forget all state (detection count is preserved)."""
        self._mean = 0.0
        self._count = 0
        self._cumulative = 0.0
        self._extremum = 0.0


class DDM:
    """Drift Detection Method for Bernoulli error streams.

    Tracks the error rate ``p`` and its binomial standard deviation ``s``;
    drift is flagged when ``p + s`` exceeds the best-seen
    ``p_min + drift_level * s_min``.  Values must be in ``[0, 1]``
    (typically 0/1 error indicators).
    """

    def __init__(self, warning_level: float = 2.0, drift_level: float = 3.0,
                 min_samples: int = 30) -> None:
        if drift_level <= warning_level:
            raise ValueError("drift_level must exceed warning_level")
        self.warning_level = warning_level
        self.drift_level = drift_level
        self.min_samples = min_samples
        self.detections = 0
        self.in_warning = False
        self.reset()

    def reset(self) -> None:
        """Restart estimation (after drift, or externally)."""
        self._count = 0
        self._p = 1.0
        self._s = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self.in_warning = False

    def update(self, error: float) -> bool:
        """Feed one error indicator in ``[0, 1]``; True when drift fires."""
        if not 0.0 <= error <= 1.0:
            raise ValueError("DDM expects values in [0, 1]")
        self._count += 1
        self._p += (error - self._p) / self._count
        self._s = math.sqrt(self._p * (1.0 - self._p) / self._count)
        if self._count < self.min_samples:
            return False
        if self._p + self._s < self._p_min + self._s_min:
            self._p_min = self._p
            self._s_min = self._s
        level = self._p + self._s
        if level > self._p_min + self.drift_level * self._s_min:
            self.detections += 1
            self.reset()
            return True
        self.in_warning = level > self._p_min + self.warning_level * self._s_min
        return False


class WindowDriftDetector:
    """Two-window mean-shift test (lightweight ADWIN stand-in).

    Keeps a sliding window of the last ``window`` values, splits it in
    half, and flags drift when the two halves' means differ by more than
    ``threshold`` standard errors (Welch-style).
    """

    def __init__(self, window: int = 60, threshold: float = 3.0) -> None:
        if window < 10 or window % 2:
            raise ValueError("window must be an even number >= 10")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = window
        self.threshold = threshold
        self._buffer: Deque[float] = deque(maxlen=window)
        self.detections = 0

    def update(self, value: float) -> bool:
        """Feed one value; True when the window halves disagree."""
        self._buffer.append(value)
        if len(self._buffer) < self.window:
            return False
        half = self.window // 2
        values = list(self._buffer)
        old, new = values[:half], values[half:]
        mean_old = sum(old) / half
        mean_new = sum(new) / half
        var_old = sum((v - mean_old) ** 2 for v in old) / max(half - 1, 1)
        var_new = sum((v - mean_new) ** 2 for v in new) / max(half - 1, 1)
        se = math.sqrt(var_old / half + var_new / half)
        if se == 0.0:
            changed = mean_old != mean_new
        else:
            changed = abs(mean_new - mean_old) / se > self.threshold
        if changed:
            self.detections += 1
            self._buffer.clear()
            return True
        return False
