"""Multi-armed bandit policies.

Bandit learners are the workhorse "common technique" for self-awareness
at the stimulus/goal levels: a system repeatedly chooses among discrete
configurations and learns their value from realised reward alone.  All
policies here support non-stationary worlds via optional exponential
discounting, because the environments of interest exhibit *ongoing
change* (paper Section II).

API: ``select() -> arm index``; ``update(arm, reward)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

#: Default for the pure-python :class:`EpsilonGreedy` internals.  Arm
#: counts are tiny (a handful of strategies), where numpy's per-call
#: dispatch overhead dwarfs the arithmetic; plain lists are several
#: times faster.  Each instance captures the flag at construction; the
#: numpy reference path is retained (``fast=False``) for equivalence
#: tests and the ``repro.bench`` baselines.  Both paths perform the same
#: IEEE-double operations, draw from the RNG identically and break
#: argmax ties toward the first maximum, so decisions are identical.
USE_FAST_BANDIT = True


class BanditPolicy(ABC):
    """Chooses among ``n_arms`` discrete options from reward feedback."""

    def __init__(self, n_arms: int) -> None:
        if n_arms <= 0:
            raise ValueError("n_arms must be positive")
        self.n_arms = n_arms
        self.total_pulls = 0

    @abstractmethod
    def select(self) -> int:
        """Index of the arm to pull next."""

    @abstractmethod
    def update(self, arm: int, reward: float) -> None:
        """Feed back the reward of pulling ``arm``."""

    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")


class EpsilonGreedy(BanditPolicy):
    """ε-greedy with optional discounting for non-stationary rewards.

    Parameters
    ----------
    n_arms:
        Number of options.
    epsilon:
        Exploration probability.
    discount:
        Per-update multiplicative decay applied to accumulated counts and
        value estimates of *all* arms; ``1.0`` is the stationary estimator.
    """

    def __init__(self, n_arms: int, epsilon: float = 0.1, discount: float = 1.0,
                 rng: Optional[np.random.Generator] = None,
                 fast: Optional[bool] = None) -> None:
        super().__init__(n_arms)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.epsilon = epsilon
        self.discount = discount
        self._rng = rng if rng is not None else np.random.default_rng()
        self._fast = USE_FAST_BANDIT if fast is None else fast
        if self._fast:
            self._counts = [0.0] * n_arms
            self._values = [0.0] * n_arms
        else:
            self._counts = np.zeros(n_arms)
            self._values = np.zeros(n_arms)

    def select(self) -> int:
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(self.n_arms))
        if self._fast:
            counts = self._counts
            for i in range(self.n_arms):
                if counts[i] == 0.0:
                    return i
            values = self._values
            best, best_value = 0, values[0]
            for i in range(1, self.n_arms):
                if values[i] > best_value:
                    best, best_value = i, values[i]
            return best
        never_pulled = np.flatnonzero(self._counts == 0)
        if never_pulled.size:
            return int(never_pulled[0])
        return int(np.argmax(self._values))

    def update(self, arm: int, reward: float) -> None:
        self._check_arm(arm)
        self.total_pulls += 1
        if self._fast:
            if self.discount < 1.0:
                counts = self._counts
                discount = self.discount
                for i in range(self.n_arms):
                    counts[i] *= discount
        elif self.discount < 1.0:
            self._counts *= self.discount
        self._counts[arm] += 1.0
        step = 1.0 / self._counts[arm]
        self._values[arm] += step * (reward - self._values[arm])

    def value(self, arm: int) -> float:
        """Current value estimate of ``arm``."""
        self._check_arm(arm)
        return float(self._values[arm])


class UCB1(BanditPolicy):
    """UCB1: optimism in the face of uncertainty.

    ``discount < 1`` yields discounted-UCB, appropriate under drift.
    ``c`` scales the confidence bonus (classic value ``sqrt(2)``).
    """

    def __init__(self, n_arms: int, c: float = math.sqrt(2.0),
                 discount: float = 1.0) -> None:
        super().__init__(n_arms)
        if c < 0:
            raise ValueError("c must be non-negative")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.c = c
        self.discount = discount
        self._counts = np.zeros(n_arms)
        self._values = np.zeros(n_arms)

    def select(self) -> int:
        never_pulled = np.flatnonzero(self._counts == 0)
        if never_pulled.size:
            return int(never_pulled[0])
        total = float(self._counts.sum())
        bonus = self.c * np.sqrt(np.log(max(total, math.e)) / self._counts)
        return int(np.argmax(self._values + bonus))

    def update(self, arm: int, reward: float) -> None:
        self._check_arm(arm)
        self.total_pulls += 1
        if self.discount < 1.0:
            self._counts *= self.discount
        self._counts[arm] += 1.0
        step = 1.0 / self._counts[arm]
        self._values[arm] += step * (reward - self._values[arm])

    def value(self, arm: int) -> float:
        """Current value estimate of ``arm``."""
        self._check_arm(arm)
        return float(self._values[arm])


class ThompsonSampling(BanditPolicy):
    """Gaussian Thompson sampling with forgetting.

    Maintains a Normal posterior per arm over the mean reward (known-noise
    approximation).  ``forgetting < 1`` inflates posterior variance each
    update, keeping the sampler responsive to drift.
    """

    def __init__(self, n_arms: int, prior_mean: float = 0.0,
                 prior_var: float = 1.0, noise_var: float = 0.25,
                 forgetting: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_arms)
        if prior_var <= 0 or noise_var <= 0:
            raise ValueError("variances must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        self.noise_var = noise_var
        self.forgetting = forgetting
        self.prior_var = prior_var
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mean = np.full(n_arms, float(prior_mean))
        self._var = np.full(n_arms, float(prior_var))

    def select(self) -> int:
        samples = self._rng.normal(self._mean, np.sqrt(self._var))
        return int(np.argmax(samples))

    def update(self, arm: int, reward: float) -> None:
        self._check_arm(arm)
        self.total_pulls += 1
        if self.forgetting < 1.0:
            # Variance inflation toward (but capped at) the prior.
            self._var = np.minimum(self._var / self.forgetting, self.prior_var)
        var, mean = self._var[arm], self._mean[arm]
        precision = 1.0 / var + 1.0 / self.noise_var
        new_var = 1.0 / precision
        new_mean = new_var * (mean / var + reward / self.noise_var)
        self._var[arm] = new_var
        self._mean[arm] = new_mean

    def value(self, arm: int) -> float:
        """Posterior mean reward of ``arm``."""
        self._check_arm(arm)
        return float(self._mean[arm])
