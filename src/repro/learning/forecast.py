"""Time-series forecasters: the engine room of time-awareness.

A time-aware system does not merely remember its history; it anticipates
likely futures (Neisser's extended self; the swarm literature's "what
might happen" predictions).  Three classic online forecasters are
provided, in increasing sophistication, plus a naive baseline.  The
family choice is an explicit ablation knob (DESIGN.md design-choice 2).

All forecasters share the protocol ``update(value)`` /
``forecast(horizon=1)`` and may be queried before any data (they return
NaN until minimally primed).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque

from .regression import RecursiveLeastSquares


class Forecaster(ABC):
    """Online one-series forecaster."""

    def __init__(self) -> None:
        self.observations = 0

    def update(self, value: float) -> None:
        """Feed one observation (in time order)."""
        self.observations += 1
        self._update(value)

    @abstractmethod
    def _update(self, value: float) -> None: ...

    @abstractmethod
    def forecast(self, horizon: int = 1) -> float:
        """Predicted value ``horizon`` steps ahead (NaN when unprimed)."""


class NaiveForecaster(Forecaster):
    """Predicts the last observed value (the 'no model' baseline)."""

    def __init__(self) -> None:
        super().__init__()
        self._last = math.nan

    def _update(self, value: float) -> None:
        self._last = value

    def forecast(self, horizon: int = 1) -> float:
        return self._last


class EWMAForecaster(Forecaster):
    """Exponentially weighted moving average (level only).

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``; higher tracks faster.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level = math.nan

    def _update(self, value: float) -> None:
        if math.isnan(self._level):
            self._level = value
        else:
            self._level += self.alpha * (value - self._level)

    def forecast(self, horizon: int = 1) -> float:
        return self._level


class HoltForecaster(Forecaster):
    """Holt's linear trend method (level + trend).

    Extrapolates ``level + horizon * trend`` -- the minimal forecaster
    that anticipates *direction*, not just position.

    Parameters
    ----------
    alpha:
        Level smoothing in ``(0, 1]``.
    beta:
        Trend smoothing in ``(0, 1]``.
    damping:
        Trend damping φ in ``(0, 1]``; 1 is undamped Holt.
    """

    def __init__(self, alpha: float = 0.4, beta: float = 0.2,
                 damping: float = 0.98) -> None:
        super().__init__()
        for name, v in (("alpha", alpha), ("beta", beta), ("damping", damping)):
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.damping = damping
        self._level = math.nan
        self._trend = 0.0

    def _update(self, value: float) -> None:
        if math.isnan(self._level):
            self._level = value
            self._trend = 0.0
            return
        prev_level = self._level
        self._level = (self.alpha * value
                       + (1.0 - self.alpha) * (prev_level + self.damping * self._trend))
        self._trend = (self.beta * (self._level - prev_level)
                       + (1.0 - self.beta) * self.damping * self._trend)

    def forecast(self, horizon: int = 1) -> float:
        if math.isnan(self._level):
            return math.nan
        # Damped-trend sum: phi + phi^2 + ... + phi^horizon.
        phi = self.damping
        if phi == 1.0:
            steps = float(horizon)
        else:
            steps = phi * (1.0 - phi ** horizon) / (1.0 - phi)
        return self._level + steps * self._trend


class ARForecaster(Forecaster):
    """Autoregressive AR(p) forecaster fitted online with RLS.

    Richest of the family: captures oscillation/seasonality that
    level-trend methods cannot.  Needs ``order + 1`` observations before
    producing forecasts; until then it falls back to the last value.

    Parameters
    ----------
    order:
        Number of lags ``p``.
    forgetting:
        RLS forgetting factor (tracks drift in the dynamics themselves).
    """

    def __init__(self, order: int = 4, forgetting: float = 0.995) -> None:
        super().__init__()
        if order <= 0:
            raise ValueError("order must be positive")
        self.order = order
        self._rls = RecursiveLeastSquares(n_features=order, forgetting=forgetting)
        self._lags: Deque[float] = deque(maxlen=order)

    def _update(self, value: float) -> None:
        if len(self._lags) == self.order:
            # Newest lag first, matching the forecast-time feature layout.
            features = list(reversed(self._lags))
            self._rls.update(features, value)
        self._lags.append(value)

    def forecast(self, horizon: int = 1) -> float:
        if not self._lags:
            return math.nan
        if len(self._lags) < self.order or self._rls.updates == 0:
            return self._lags[-1]
        window: Deque[float] = deque(self._lags, maxlen=self.order)
        prediction = math.nan
        for _ in range(horizon):
            features = list(reversed(window))
            prediction = self._rls.predict(features)
            window.append(prediction)
        return prediction


def make_forecaster(kind: str, **kwargs) -> Forecaster:
    """Factory by name: ``naive``, ``ewma``, ``holt`` or ``ar``."""
    kinds = {
        "naive": NaiveForecaster,
        "ewma": EWMAForecaster,
        "holt": HoltForecaster,
        "ar": ARForecaster,
    }
    if kind not in kinds:
        raise ValueError(f"unknown forecaster {kind!r}; choose from {sorted(kinds)}")
    return kinds[kind](**kwargs)
