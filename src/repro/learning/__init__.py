"""Common learning techniques for realising self-awareness (paper ref [61]).

Standalone online-learning algorithms that the framework and the
substrates plug in: bandits, tabular Q-learning, recursive least squares,
time-series forecasters, concept-drift detectors, learning automata and
drift-robust ensembles.  This package has no dependency on
:mod:`repro.core`; the dependency points the other way.
"""

from .automata import LearningAutomaton
from .bandits import BanditPolicy, EpsilonGreedy, ThompsonSampling, UCB1
from .contextual import LinUCB
from .drift import DDM, PageHinkley, WindowDriftDetector
from .ensembles import DriftRobustEnsemble
from .forecast import (ARForecaster, EWMAForecaster, Forecaster,
                       HoltForecaster, NaiveForecaster, make_forecaster)
from .qlearning import QLearner
from .regression import RecursiveLeastSquares

__all__ = [
    "LearningAutomaton",
    "BanditPolicy", "EpsilonGreedy", "ThompsonSampling", "UCB1",
    "LinUCB",
    "DDM", "PageHinkley", "WindowDriftDetector",
    "DriftRobustEnsemble",
    "ARForecaster", "EWMAForecaster", "Forecaster", "HoltForecaster",
    "NaiveForecaster", "make_forecaster",
    "QLearner",
    "RecursiveLeastSquares",
]
