"""Contextual bandits: LinUCB.

Completes the common-techniques catalogue (paper ref [61]) with the
standard linear contextual bandit: per arm, a ridge-regression estimate
of reward from context features plus an upper-confidence exploration
bonus.  Useful wherever a self-aware component chooses among discrete
options whose value depends on observable context -- an alternative to
the binned :class:`~repro.core.models.ContextualActionModel` when the
context-to-reward map is roughly linear.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class LinUCB:
    """LinUCB with disjoint per-arm linear models.

    Parameters
    ----------
    n_arms:
        Number of options.
    n_features:
        Context dimensionality (a bias feature is appended internally).
    alpha:
        Width of the confidence bonus (exploration strength).
    ridge:
        Ridge regularisation of each arm's design matrix.
    forgetting:
        Exponential forgetting in ``(0, 1]`` applied to each arm's
        sufficient statistics per update of that arm; < 1 tracks
        non-stationary reward maps.
    """

    def __init__(self, n_arms: int, n_features: int, alpha: float = 1.0,
                 ridge: float = 1.0, forgetting: float = 1.0) -> None:
        if n_arms <= 0:
            raise ValueError("n_arms must be positive")
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        self.n_arms = n_arms
        self.n_features = n_features
        self.alpha = alpha
        self.ridge = ridge
        self.forgetting = forgetting
        dim = n_features + 1
        self._a = [np.eye(dim) * ridge for _ in range(n_arms)]
        self._b = [np.zeros(dim) for _ in range(n_arms)]
        self.total_updates = 0

    def _augment(self, context: Sequence[float]) -> np.ndarray:
        if len(context) != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {len(context)}")
        return np.concatenate(([1.0], np.asarray(context, dtype=float)))

    def weights(self, arm: int) -> np.ndarray:
        """Current ridge estimate of arm ``arm``'s reward weights."""
        self._check(arm)
        return np.linalg.solve(self._a[arm], self._b[arm])

    def expected_reward(self, context: Sequence[float], arm: int) -> float:
        """Point estimate of the reward of ``arm`` in ``context``."""
        return float(self._augment(context) @ self.weights(arm))

    def ucb(self, context: Sequence[float], arm: int) -> float:
        """Upper confidence bound of ``arm`` in ``context``."""
        self._check(arm)
        x = self._augment(context)
        theta = np.linalg.solve(self._a[arm], self._b[arm])
        bonus = self.alpha * math.sqrt(
            float(x @ np.linalg.solve(self._a[arm], x)))
        return float(x @ theta) + bonus

    def select(self, context: Sequence[float]) -> int:
        """Arm with the highest UCB (ties break to the lowest index)."""
        scores = [self.ucb(context, arm) for arm in range(self.n_arms)]
        return int(np.argmax(scores))

    def update(self, context: Sequence[float], arm: int,
               reward: float) -> None:
        """Feed back the observed reward of pulling ``arm`` in ``context``."""
        self._check(arm)
        x = self._augment(context)
        if self.forgetting < 1.0:
            dim = self.n_features + 1
            # Decay toward the ridge prior so the matrix stays invertible.
            self._a[arm] = (self.forgetting * self._a[arm]
                            + (1.0 - self.forgetting) * np.eye(dim) * self.ridge)
            self._b[arm] = self.forgetting * self._b[arm]
        self._a[arm] += np.outer(x, x)
        self._b[arm] += reward * x
        self.total_updates += 1

    def _check(self, arm: int) -> None:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
