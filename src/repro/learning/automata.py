"""Stochastic learning automata (the CPN-style "simple learning scheme").

Cognitive packet networks (paper Section III) adapt routes "based on a
simple learning scheme": each decision point keeps a probability vector
over its options and nudges it toward options that earned reward.  The
linear reward-inaction / reward-penalty family implemented here is that
scheme in its textbook form, and is what the CPN substrate's smart
packets carry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LearningAutomaton:
    """Linear reward-penalty learning automaton over ``n_actions`` options.

    Parameters
    ----------
    n_actions:
        Number of options.
    reward_step:
        Learning rate ``a`` applied on reward (probability mass moves
        toward the chosen action).
    penalty_step:
        Learning rate ``b`` applied on penalty (mass moves away).  ``0``
        gives the reward-inaction scheme (L_RI), equal to ``reward_step``
        gives L_RP.
    floor:
        Minimum probability retained per action, preserving exploration
        in non-stationary environments.
    """

    def __init__(self, n_actions: int, reward_step: float = 0.1,
                 penalty_step: float = 0.0, floor: float = 0.01,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_actions <= 0:
            raise ValueError("n_actions must be positive")
        if not 0.0 < reward_step <= 1.0:
            raise ValueError("reward_step must be in (0, 1]")
        if not 0.0 <= penalty_step <= 1.0:
            raise ValueError("penalty_step must be in [0, 1]")
        if not 0.0 <= floor < 1.0 / n_actions:
            raise ValueError("floor must be in [0, 1/n_actions)")
        self.n_actions = n_actions
        self.reward_step = reward_step
        self.penalty_step = penalty_step
        self.floor = floor
        self._rng = rng if rng is not None else np.random.default_rng()
        self._probs = np.full(n_actions, 1.0 / n_actions)

    @property
    def probabilities(self) -> np.ndarray:
        """Current action-probability vector (copy)."""
        return self._probs.copy()

    def select(self) -> int:
        """Sample an action from the current probability vector."""
        return int(self._rng.choice(self.n_actions, p=self._probs))

    def best(self) -> int:
        """The currently most probable action."""
        return int(np.argmax(self._probs))

    def reward(self, action: int) -> None:
        """Reinforce ``action``: move probability mass toward it."""
        self._check(action)
        a = self.reward_step
        self._probs = (1.0 - a) * self._probs
        self._probs[action] += a
        self._apply_floor()

    def penalise(self, action: int) -> None:
        """Punish ``action``: move probability mass away from it."""
        self._check(action)
        b = self.penalty_step
        if b == 0.0 or self.n_actions == 1:
            return
        spread = b / (self.n_actions - 1)
        self._probs = (1.0 - b) * self._probs + spread
        self._probs[action] -= spread
        self._apply_floor()

    def feedback(self, action: int, reward_signal: float) -> None:
        """Binary-ish convenience: signal > 0.5 rewards, otherwise penalises."""
        if reward_signal > 0.5:
            self.reward(action)
        else:
            self.penalise(action)

    def _apply_floor(self) -> None:
        if self.floor <= 0.0:
            self._probs = self._probs / self._probs.sum()
            return
        # Clamp to the floor, then renormalise only the above-floor mass so
        # clamped entries stay exactly at the floor.
        clamped = np.maximum(self._probs, self.floor)
        above = clamped - self.floor
        free_mass = 1.0 - self.n_actions * self.floor
        self._probs = self.floor + above * (free_mass / above.sum())

    def _check(self, action: int) -> None:
        if not 0 <= action < self.n_actions:
            raise IndexError(f"action {action} out of range [0, {self.n_actions})")
