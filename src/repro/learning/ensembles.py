"""Drift-robust forecasting ensembles (DDD-inspired).

Minku & Yao's DDD (paper ref [9]) keeps ensembles of old and new learners
and shifts weight between them around concept drift, exploiting the
*diversity* among members.  :class:`DriftRobustEnsemble` carries that
idea to the online-forecasting setting used throughout this repository:

- members are heterogeneous forecasters (diversity by construction);
- each member's weight tracks its recent inverse error;
- a drift detector watches the ensemble's own error stream; on drift a
  fresh member is spawned (a new learner untainted by the old concept)
  and given a head-start weight, while stale members are retired when the
  roster is full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from .drift import PageHinkley
from .forecast import Forecaster, HoltForecaster


@dataclass
class _Member:
    forecaster: Forecaster
    ewma_error: float = math.nan
    age: int = 0

    def record_error(self, error: float, alpha: float) -> None:
        if math.isnan(self.ewma_error):
            self.ewma_error = error
        else:
            self.ewma_error += alpha * (error - self.ewma_error)

    def weight(self) -> float:
        if math.isnan(self.ewma_error):
            return 0.5  # unproven member: middling trust
        return 1.0 / (self.ewma_error + 1e-6)


class DriftRobustEnsemble(Forecaster):
    """Weighted ensemble of forecasters with drift-triggered renewal.

    Parameters
    ----------
    member_factory:
        Zero-argument callable producing a fresh member forecaster.
    initial_members:
        Optional heterogeneous starting roster; when omitted, two members
        are built from ``member_factory``.
    max_members:
        Roster cap; the worst member is retired to make room.
    error_alpha:
        EWMA factor for member error tracking.
    detector:
        Change detector on the ensemble's own absolute error; default
        Page-Hinkley.
    """

    def __init__(
        self,
        member_factory: Callable[[], Forecaster] = HoltForecaster,
        initial_members: Optional[List[Forecaster]] = None,
        max_members: int = 4,
        error_alpha: float = 0.1,
        detector=None,
    ) -> None:
        super().__init__()
        if max_members < 2:
            raise ValueError("max_members must be at least 2")
        self._factory = member_factory
        roster = initial_members if initial_members else [member_factory(), member_factory()]
        self._members: List[_Member] = [_Member(f) for f in roster]
        self.max_members = max_members
        self.error_alpha = error_alpha
        self._detector = detector if detector is not None else PageHinkley(
            delta=0.01, threshold=8.0)
        self.drift_events = 0

    @property
    def n_members(self) -> int:
        """Current roster size."""
        return len(self._members)

    def _update(self, value: float) -> None:
        # Score the pre-update ensemble prediction against the new truth.
        prediction = self.forecast(1)
        if not math.isnan(prediction):
            error = abs(prediction - value)
            if self._detector.update(error):
                self.drift_events += 1
                self._renew()
        for member in self._members:
            member_pred = member.forecaster.forecast(1)
            if not math.isnan(member_pred):
                member.record_error(abs(member_pred - value), self.error_alpha)
            member.forecaster.update(value)
            member.age += 1

    def _renew(self) -> None:
        """Spawn a fresh member for the new concept; retire the worst."""
        if len(self._members) >= self.max_members:
            worst = max(self._members,
                        key=lambda m: m.ewma_error if not math.isnan(m.ewma_error) else -1.0)
            self._members.remove(worst)
        self._members.append(_Member(self._factory()))

    def forecast(self, horizon: int = 1) -> float:
        """Weight-averaged member forecast (NaN when nobody is primed)."""
        total_weight = 0.0
        weighted_sum = 0.0
        for member in self._members:
            prediction = member.forecaster.forecast(horizon)
            if math.isnan(prediction):
                continue
            w = member.weight()
            total_weight += w
            weighted_sum += w * prediction
        if total_weight == 0.0:
            return math.nan
        return weighted_sum / total_weight
