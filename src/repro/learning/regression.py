"""Online linear regression via recursive least squares (RLS).

Predictive self-models (Kounev's self-prediction) frequently take the
form "metric = f(configuration, environment features)".  RLS learns such
maps one sample at a time with an exponential forgetting factor, so the
model tracks non-stationary systems without storing the data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class RecursiveLeastSquares:
    """Exponentially weighted recursive least squares.

    Parameters
    ----------
    n_features:
        Input dimensionality (excluding the bias, which is always added).
    forgetting:
        Forgetting factor λ in ``(0, 1]``; ``1.0`` is ordinary RLS, lower
        values track drift at the cost of variance.
    delta:
        Initial covariance scale (larger = less confident prior).
    """

    def __init__(self, n_features: int, forgetting: float = 0.99,
                 delta: float = 100.0) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.n_features = n_features
        self.forgetting = forgetting
        dim = n_features + 1  # bias term
        self._weights = np.zeros(dim)
        self._p = np.eye(dim) * delta
        self.updates = 0

    @staticmethod
    def _augment(x: Sequence[float]) -> np.ndarray:
        return np.concatenate(([1.0], np.asarray(x, dtype=float)))

    @property
    def weights(self) -> np.ndarray:
        """Current weight vector ``[bias, w1, ..., wn]`` (copy)."""
        return self._weights.copy()

    def predict(self, x: Sequence[float]) -> float:
        """Predicted target for feature vector ``x``."""
        if len(x) != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {len(x)}")
        return float(self._augment(x) @ self._weights)

    def update(self, x: Sequence[float], y: float) -> float:
        """One RLS step on ``(x, y)``; returns the pre-update residual."""
        if len(x) != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {len(x)}")
        phi = self._augment(x)
        residual = float(y - phi @ self._weights)
        lam = self.forgetting
        p_phi = self._p @ phi
        gain = p_phi / (lam + float(phi @ p_phi))
        self._weights = self._weights + gain * residual
        self._p = (self._p - np.outer(gain, p_phi)) / lam
        # Symmetrise to fight numerical drift in long runs.
        self._p = 0.5 * (self._p + self._p.T)
        self.updates += 1
        return residual
