"""Tabular Q-learning over discrete (hashable) states.

Used where a self-aware controller's decision has delayed consequences --
e.g. the multi-core governor (heating up now costs later) and the CPN
routing nodes.  States are arbitrary hashables, so substrates discretise
however suits them.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np


class QLearner:
    """Standard tabular Q-learning with ε-greedy behaviour.

    Parameters
    ----------
    actions:
        The fixed action set.
    alpha:
        Learning rate in ``(0, 1]``.
    gamma:
        Discount factor in ``[0, 1)``.
    epsilon:
        Exploration probability.
    optimistic_init:
        Initial Q-value for unseen ``(state, action)`` pairs; a positive
        value encourages systematic early exploration.
    """

    def __init__(
        self,
        actions: Sequence[Hashable],
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: float = 0.1,
        optimistic_init: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not actions:
            raise ValueError("need at least one action")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.actions: List[Hashable] = list(actions)
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.optimistic_init = optimistic_init
        self._rng = rng if rng is not None else np.random.default_rng()
        self._q: Dict[Tuple[Hashable, Hashable], float] = {}
        self.updates = 0

    def q(self, state: Hashable, action: Hashable) -> float:
        """Current Q-value estimate for ``(state, action)``."""
        return self._q.get((state, action), self.optimistic_init)

    def best_action(self, state: Hashable) -> Hashable:
        """Greedy action for ``state`` (ties broken by action order)."""
        return max(self.actions, key=lambda a: self.q(state, a))

    def select(self, state: Hashable) -> Hashable:
        """ε-greedy action for ``state``."""
        if self._rng.random() < self.epsilon:
            return self.actions[int(self._rng.integers(len(self.actions)))]
        return self.best_action(state)

    def update(self, state: Hashable, action: Hashable, reward: float,
               next_state: Optional[Hashable]) -> float:
        """One Q-learning backup; ``next_state=None`` marks a terminal step.

        Returns the temporal-difference error (useful to the meta level as
        a signal of how surprised the learner was).
        """
        current = self.q(state, action)
        if next_state is None:
            target = reward
        else:
            target = reward + self.gamma * max(
                self.q(next_state, a) for a in self.actions)
        td_error = target - current
        self._q[(state, action)] = current + self.alpha * td_error
        self.updates += 1
        return td_error

    def states_seen(self) -> int:
        """Number of distinct states with any learned value."""
        return len({s for (s, _a) in self._q})

    def reset(self) -> None:
        """Forget everything (used when the meta level declares drift)."""
        self._q.clear()
        self.updates = 0
