"""Query recorded traces for causal explanations from the shell.

Examples::

    python -m repro.explain trace.jsonl --stats
    python -m repro.explain trace.jsonl --why 1234
    python -m repro.explain trace.jsonl --why-aggregate
    python -m repro.explain trace.jsonl --why-aggregate meta.switch \\
        --window 10 250 --axis time --json

The trace is streamed line by line through an :class:`ExplanationStore`;
memory stays bounded by the store's rollup caps regardless of file size,
and aggregate queries run on the rollups, not the raw events.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Optional

from .store import ExplanationStore


def _render_chain(node: Dict[str, Any], indent: int = 0) -> List[str]:
    pad = "  " * indent
    if node.get("event") is None:
        return [f"{pad}- seq {node['seq']}: (not retained; chain truncated)"]
    fields = node.get("fields", {})
    shown = ", ".join(f"{k}={v}" for k, v in list(fields.items())[:6])
    lines = [f"{pad}- seq {node['seq']}: {node['event']}"
             + (f" ({shown})" if shown else "")]
    for cause in node.get("causes", ()):
        lines.extend(_render_chain(cause, indent + 1))
    if node.get("causes_elided"):
        lines.append(f"{pad}  ... causes elided at depth limit: "
                     f"{node['causes_elided']}")
    return lines


def _render_aggregate(answer: Dict[str, Any]) -> List[str]:
    lines = [f"decisions: {answer['decisions']}"
             + (" [TRUNCATED STREAM]" if answer["truncated"] else "")]
    for kind in sorted(answer["kinds"]):
        agg = answer["kinds"][kind]
        mean = agg.get("mean_value", math.nan)
        value_note = (f", mean {agg['value_field']}={mean:.4g}"
                      if agg.get("value_field") and not math.isnan(mean)
                      else "")
        lines.append(f"  {kind}: {agg['decisions']} decision(s){value_note}")
        for cause_class, count in sorted(
                answer["causes"].get(kind, {}).items(),
                key=lambda item: -item[1]):
            lines.append(f"    caused by {cause_class}: {count}")
        for cause_class, summary in sorted(
                answer["distributions"].get(kind, {}).items()):
            p95 = summary.get("p95", math.nan)
            lines.append(
                f"    {cause_class}: n={summary.get('count', 0):g} "
                f"mean={summary.get('mean', math.nan):.4g} p95={p95:.4g}")
    lines.append(f"  ({answer['buckets_scanned']} rollup bucket(s) scanned)")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explain",
        description="Query a JSONL telemetry trace for causal explanations.")
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument("--why", type=int, metavar="SEQ",
                        help="print the causal chain behind event SEQ")
    parser.add_argument("--why-aggregate", nargs="?", const="", default=None,
                        metavar="KIND",
                        help="aggregate causes (optionally for one decision "
                             "kind, e.g. meta.switch)")
    parser.add_argument("--window", nargs=2, type=float, metavar=("LO", "HI"),
                        help="restrict --why-aggregate to this window")
    parser.add_argument("--axis", choices=("time", "seq"), default="time",
                        help="axis --window addresses (default: time)")
    parser.add_argument("--depth", type=int, default=6,
                        help="causal chain depth for --why (default: 6)")
    parser.add_argument("--stats", action="store_true",
                        help="print the store's own accounting")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    store = ExplanationStore()
    ingested = store.ingest_trace(args.trace)

    out: Dict[str, Any] = {}
    lines: List[str] = []
    if args.why is not None:
        chain = store.why(args.why, depth=args.depth)
        out["why"] = chain
        lines.append(f"why seq {args.why}:"
                     + (" [TRUNCATED STREAM]" if chain["store_truncated"]
                        else ""))
        lines.extend(_render_chain(chain, indent=1))
    if args.why_aggregate is not None:
        window = tuple(args.window) if args.window else None
        answer = store.why_aggregate(
            kind=args.why_aggregate or None, window=window, axis=args.axis)
        out["why_aggregate"] = answer
        kind_label = args.why_aggregate or "(all kinds)"
        lines.append(f"why-aggregate {kind_label}:")
        lines.extend("  " + line for line in _render_aggregate(answer))
    if args.stats or (args.why is None and args.why_aggregate is None):
        stats = store.stats()
        out["stats"] = stats
        lines.append(f"ingested {ingested} event(s) from {args.trace}")
        for key, value in stats.items():
            lines.append(f"  {key}: {value}")

    if args.json:
        json.dump(out, sys.stdout, indent=2, default=repr)
        sys.stdout.write("\n")
    else:
        print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
